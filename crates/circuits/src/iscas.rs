//! Embedded real ISCAS'89 circuits.

use glitchlock_netlist::{bench_format, Netlist};

/// The ISCAS'89 `s27` benchmark in `.bench` source form: 4 primary inputs,
/// 1 primary output, 3 flip-flops, 10 logic gates.
pub const S27_BENCH: &str = "\
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parses the embedded [`S27_BENCH`] netlist.
///
/// # Panics
///
/// Never panics in practice — the embedded text is covered by tests.
pub fn s27() -> Netlist {
    bench_format::parse_named(S27_BENCH, "s27").expect("embedded s27 parses")
}

/// The ISCAS'85 `c17` benchmark in `.bench` source form: the classic
/// 6-NAND combinational circuit (5 inputs, 2 outputs).
pub const C17_BENCH: &str = "\
# c17 (ISCAS'85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

/// Parses the embedded [`C17_BENCH`] netlist.
///
/// # Panics
///
/// Never panics in practice — the embedded text is covered by tests.
pub fn c17() -> Netlist {
    bench_format::parse_named(C17_BENCH, "c17").expect("embedded c17 parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::{Logic, SeqState};

    #[test]
    fn s27_has_expected_shape() {
        let nl = s27();
        let st = nl.stats();
        assert_eq!(st.inputs, 4);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.dffs, 3);
        assert_eq!(st.gates, 10);
        nl.validate().unwrap();
    }

    #[test]
    fn s27_known_trace_from_reset() {
        // With all flip-flops reset to 0 and inputs held at 0:
        //   G14 = NOT(0) = 1, G8 = AND(1, 0) = 0, G12 = NOR(0,0) = 1,
        //   G15 = OR(1, 0) = 1, G16 = OR(0,0) = 0, G9 = NAND(0,1) = 1,
        //   G11 = NOR(0,1) = 0, G17 = NOT(0) = 1.
        let nl = s27();
        let mut st = SeqState::reset(&nl);
        let out = st.step(&nl, &[Logic::Zero; 4]);
        assert_eq!(out, vec![Logic::One]);
        // Next state: G10 = NOR(G14=1, G11=0) = 0, G11 = 0, G13 = NOR(0, G12=1) = 0.
        assert_eq!(st.values(), &[Logic::Zero, Logic::Zero, Logic::Zero]);
        // Drive G0 = 1: G14 = 0, G10 = NOR(0, G11).
        let out = st.step(&nl, &[Logic::One, Logic::Zero, Logic::Zero, Logic::Zero]);
        assert_eq!(out, vec![Logic::One]);
        assert_eq!(st.values(), &[Logic::One, Logic::Zero, Logic::Zero]);
    }

    #[test]
    fn c17_truth_table_spot_checks() {
        use glitchlock_netlist::Logic::{One, Zero};
        let nl = c17();
        let st = nl.stats();
        assert_eq!(st.gates, 6);
        assert_eq!(st.dffs, 0);
        assert_eq!(st.inputs, 5);
        assert_eq!(st.outputs, 2);
        // Inputs in declaration order: G1 G2 G3 G6 G7.
        // All zeros: G10=1, G11=1, G16=1, G19=1 -> G22=NAND(1,1)=0,
        // G23=NAND(1,1)=0.
        assert_eq!(nl.eval_comb(&[Zero; 5]), vec![Zero, Zero]);
        // G3=1 only: G10=1, G11=1, G16=1, G19=1 -> 0, 0.
        assert_eq!(
            nl.eval_comb(&[Zero, Zero, One, Zero, Zero]),
            vec![Zero, Zero]
        );
        // G2=1, G3=1, G6=1: G11=NAND(1,1)=0, G16=NAND(1,0)=1, G10=1,
        // G19=1 -> G22=0, G23=0.
        assert_eq!(nl.eval_comb(&[Zero, One, One, One, Zero]), vec![Zero, Zero]);
        // G1=1, G3=1: G10=0 -> G22=NAND(0, G16)=1.
        let out = nl.eval_comb(&[One, Zero, One, Zero, Zero]);
        assert_eq!(out[0], One);
    }

    #[test]
    fn s27_round_trips_through_bench_format() {
        let nl = s27();
        let emitted = bench_format::emit(&nl);
        let re = bench_format::parse(&emitted).unwrap();
        let mut a = SeqState::reset(&nl);
        let mut b = SeqState::reset(&re);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let pat: Vec<Logic> = (0..4).map(|_| Logic::from_bool(rng.gen())).collect();
            assert_eq!(a.step(&nl, &pat), b.step(&re, &pat));
        }
    }
}
