//! Benchmark circuits for `glitchlock`.
//!
//! The paper evaluates on seven sequential IWLS2005/ISCAS'89 benchmarks
//! synthesized with a proprietary 0.13µm library. The original post-
//! synthesis netlists are not redistributable, so this crate provides the
//! documented substitution (see `DESIGN.md`):
//!
//! * [`s27`] — the real ISCAS'89 s27 circuit, embedded in `.bench` form and
//!   used as ground truth in tests and examples.
//! * [`generate`] — a seeded synthetic benchmark generator. Each
//!   [`Profile`] reproduces a paper benchmark's post-synthesis **cell
//!   count**, **flip-flop count**, and I/O width exactly, and calibrates
//!   the logic-depth distribution at flip-flop D pins so that the share of
//!   timing slack available for glitch key-gates resembles the paper's
//!   `Cov. (%)` column. The feasibility numbers reported by the experiment
//!   harness are then *measured* by the real Eqs. (3)–(6) analysis, not
//!   copied.
//!
//! Note: the paper's Table I lists `s9324` while Table II lists `s9234`;
//! ISCAS'89 has only `s9234`, which is what we model.

#![deny(missing_docs)]

mod generate;
mod iscas;

pub use generate::{
    custom_profile, generate, iscas89_small_profiles, iwls2005_profiles, profile_by_name, tiny,
    Profile,
};
pub use iscas::{c17, s27, C17_BENCH, S27_BENCH};
