//! Seeded synthetic benchmark generation with IWLS2005-calibrated profiles.

use glitchlock_netlist::{GateKind, NetId, Netlist};
use glitchlock_stdcell::Ps;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic benchmark profile mirroring one of the paper's IWLS2005
/// circuits after synthesis and optimization (Table I, columns 1–3).
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Benchmark name (e.g. `"s5378"`).
    pub name: &'static str,
    /// Target silicon cell count (gates + flip-flops), matching Table I.
    pub cells: usize,
    /// Flip-flop count, matching Table I.
    pub ffs: usize,
    /// Primary-input count (from the original ISCAS'89 circuit).
    pub inputs: usize,
    /// Primary-output count.
    pub outputs: usize,
    /// Clock period the design is assumed signed off at.
    pub clock_period: Ps,
    /// Calibration: fraction of flip-flops given shallow input cones (and
    /// thus enough slack for a GK). Set to the paper's measured `Cov. (%)`
    /// so the *shape* of the feasibility distribution matches; the actual
    /// coverage is re-measured by the analysis in `glitchlock-core`.
    pub coverage_target: f64,
    /// Deterministic generation seed.
    pub seed: u64,
}

/// The seven benchmark profiles of the paper's Tables I and II.
///
/// Cell/FF counts are the paper's post-synthesis numbers; I/O widths come
/// from the original ISCAS'89 descriptions. `s9234` covers the paper's
/// `s9324`/`s9234` typo pair.
pub fn iwls2005_profiles() -> Vec<Profile> {
    let p = |name, cells, ffs, inputs, outputs, cov| Profile {
        name,
        cells,
        ffs,
        inputs,
        outputs,
        clock_period: Ps::from_ns(3),
        coverage_target: cov,
        seed: 0x5EED_0000 + cells as u64,
    };
    vec![
        p("s1238", 341, 18, 14, 14, 0.8889),
        p("s5378", 775, 163, 35, 49, 0.6380),
        p("s9234", 613, 145, 36, 39, 0.5103),
        p("s13207", 901, 330, 62, 152, 0.5606),
        p("s15850", 447, 134, 77, 150, 0.4328),
        p("s38417", 5397, 1564, 28, 106, 0.6630),
        p("s38584", 5304, 1168, 38, 304, 0.7911),
    ]
}

/// Small ISCAS'89 profiles (s298, s344) used by the campaign conformance
/// suite alongside the handwritten `s27`. They are below the size range of
/// the paper's Table I, so cell/FF counts are taken from the original
/// ISCAS'89 descriptions and coverage is set mid-range.
pub fn iscas89_small_profiles() -> Vec<Profile> {
    let p = |name, cells, ffs, inputs, outputs| Profile {
        name,
        cells,
        ffs,
        inputs,
        outputs,
        clock_period: Ps::from_ns(3),
        coverage_target: 0.62,
        seed: 0x5EED_0000 + cells as u64,
    };
    vec![p("s298", 133, 14, 3, 6), p("s344", 175, 15, 9, 11)]
}

/// Looks a profile up by benchmark name (Table I set plus the small
/// ISCAS'89 circuits).
pub fn profile_by_name(name: &str) -> Option<Profile> {
    iwls2005_profiles()
        .into_iter()
        .chain(iscas89_small_profiles())
        .find(|p| p.name == name)
}

/// A caller-parameterized profile for fuzzing and scripted sweeps.
///
/// The knobs are clamped into ranges [`generate`] can always satisfy, so
/// any argument combination yields a profile that generates without
/// panicking: at least one flip-flop and a handful of gates, a clock slow
/// enough that shallow layers stay GK-feasible, and coverage in `[0, 1]`.
pub fn custom_profile(
    cells: usize,
    ffs: usize,
    inputs: usize,
    outputs: usize,
    clock_period: Ps,
    coverage_target: f64,
    seed: u64,
) -> Profile {
    let ffs = ffs.max(1);
    Profile {
        name: "custom",
        cells: cells.max(ffs + 8),
        ffs,
        inputs: inputs.max(2),
        outputs: outputs.max(1),
        // Below ~2ns even layer-1 gates lack GK headroom and the feasible
        // pool can come up empty; clamp to the generator's safe floor.
        clock_period: clock_period.max(Ps::from_ns(2)),
        coverage_target: coverage_target.clamp(0.0, 1.0),
        seed,
    }
}

/// A small profile for fast tests.
pub fn tiny(seed: u64) -> Profile {
    Profile {
        name: "tiny",
        cells: 60,
        ffs: 12,
        inputs: 6,
        outputs: 4,
        clock_period: Ps::from_ns(3),
        coverage_target: 0.6,
        seed,
    }
}

/// Average per-gate delay (intrinsic + typical load) used only to convert
/// the clock period into a target logic depth during generation.
const AVG_GATE_DELAY_PS: u64 = 65;
/// Flip-flop clk→q assumed during depth calibration.
const CLK_TO_Q_PS: u64 = 160;
/// Setup time assumed during depth calibration.
const SETUP_PS: u64 = 90;
/// Approximate timing headroom a glitch key-gate needs at a D pin: glitch
/// generation delay (≈ L_glitch) plus the GK's own data-path delay.
const GK_HEADROOM_PS: u64 = 1_350;
/// Below this much headroom a D pin is *certainly* infeasible for the
/// paper-default GK: the Eq. (5) window needs `L + D_react + margin`
/// ≈ 1000 + 80 + 120 ps of slack.
const GK_INFEASIBLE_PS: u64 = 1_150;

/// Generates the synthetic netlist for a profile. Deterministic in
/// `profile.seed`.
///
/// Structure: a layered combinational cloud over the primary inputs and
/// flip-flop outputs. Each flip-flop's D pin taps a layer chosen from a
/// bimodal depth distribution — a `coverage_target` share taps shallow
/// layers (GK-feasible slack), the rest taps layers whose arrival lands
/// within the last ~0.5ns before the setup deadline (timing-clean but too
/// tight for a GK). Primary outputs tap arbitrary layers.
///
/// # Panics
///
/// Panics if the profile is degenerate (fewer cells than flip-flops + 1).
pub fn generate(profile: &Profile) -> Netlist {
    assert!(
        profile.cells > profile.ffs,
        "profile must have room for at least one gate"
    );
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut nl = Netlist::new(profile.name);

    // Primary inputs.
    let pis: Vec<NetId> = (0..profile.inputs)
        .map(|i| nl.add_input(format!("pi{i}")))
        .collect();

    // Flip-flops with placeholder D nets, rewired at the end.
    let mut ff_cells = Vec::with_capacity(profile.ffs);
    let mut qs = Vec::with_capacity(profile.ffs);
    for i in 0..profile.ffs {
        let d = nl.add_net(format!("ffd{i}"));
        let q = nl.add_dff_named(d, format!("ff{i}")).unwrap();
        ff_cells.push(nl.net(q).driver().expect("dff drives q"));
        qs.push(q);
    }

    // Depth budget from the clock period.
    let period = profile.clock_period.as_ps();
    let max_depth = ((period - SETUP_PS - CLK_TO_Q_PS - 100) / AVG_GATE_DELAY_PS).max(4) as usize;
    let feasible_depth = ((period.saturating_sub(SETUP_PS + CLK_TO_Q_PS + GK_HEADROOM_PS))
        / AVG_GATE_DELAY_PS)
        .max(2) as usize;
    let deep_min = (max_depth * 3 / 4).max(feasible_depth + 1);

    // Layered cloud: layer 0 = sources, layers 1..=max_depth hold gates.
    let gate_budget = profile.cells - profile.ffs;
    let mut layers: Vec<Vec<NetId>> = vec![Vec::new(); max_depth + 1];
    layers[0].extend(pis.iter().copied());
    layers[0].extend(qs.iter().copied());

    // Distribute gates: denser in the shallow half so shallow taps exist
    // everywhere, but every layer gets at least one gate while budget lasts.
    let mut gates_in_layer = vec![0usize; max_depth + 1];
    for layer in gates_in_layer.iter_mut().skip(1) {
        *layer = 1;
    }
    let mut remaining = gate_budget.saturating_sub(max_depth);
    while remaining > 0 {
        // Bias: quadratic preference toward shallow layers.
        let l = 1 + (rng.gen_range(0.0..1.0f64).powi(2) * max_depth as f64) as usize;
        let l = l.min(max_depth);
        gates_in_layer[l] += 1;
        remaining -= 1;
    }
    // If budget < max_depth, trim the deepest mandatory gates.
    let mut total: usize = gates_in_layer.iter().sum();
    while total > gate_budget {
        let deepest = gates_in_layer
            .iter()
            .rposition(|&c| c > 0)
            .expect("at least one gate layer");
        gates_in_layer[deepest] -= 1;
        total -= 1;
    }

    let kinds = [
        (GateKind::Nand, 24u32),
        (GateKind::Nor, 18),
        (GateKind::And, 14),
        (GateKind::Or, 14),
        (GateKind::Inv, 12),
        (GateKind::Xor, 8),
        (GateKind::Xnor, 5),
        (GateKind::Buf, 5),
    ];
    let kind_total: u32 = kinds.iter().map(|&(_, w)| w).sum();
    let pick_kind = |rng: &mut StdRng| {
        let mut roll = rng.gen_range(0..kind_total);
        for &(k, w) in &kinds {
            if roll < w {
                return k;
            }
            roll -= w;
        }
        GateKind::Nand
    };

    for layer in 1..=max_depth {
        for _ in 0..gates_in_layer[layer] {
            let kind = pick_kind(&mut rng);
            let arity = match kind {
                GateKind::Inv | GateKind::Buf => 1,
                _ => {
                    if rng.gen_bool(0.2) {
                        3
                    } else {
                        2
                    }
                }
            };
            let mut ins = Vec::with_capacity(arity);
            for _ in 0..arity {
                // Strong preference for the previous layer keeps real depth
                // close to the layer index.
                let src_layer = if rng.gen_bool(0.7) {
                    layer - 1
                } else {
                    rng.gen_range(0..layer)
                };
                let pool = (0..=src_layer)
                    .rev()
                    .find(|&l| !layers[l].is_empty())
                    .expect("layer 0 is never empty");
                let net = layers[pool][rng.gen_range(0..layers[pool].len())];
                ins.push(net);
            }
            let y = nl.add_gate(kind, &ins).expect("generated arity is legal");
            layers[layer].push(y);
        }
    }

    // Tap points for flip-flop D pins, chosen by *measured* arrival time:
    // an STA pass over the finished cloud partitions the gate outputs into
    // a GK-feasible pool (plenty of slack) and a timing-tight pool (clean
    // at sign-off, but no room for a 1ns glitch flow). This both keeps the
    // generated design violation-free at the profile's clock period and
    // makes the coverage calibration precise.
    let library = glitchlock_stdcell::Library::cl013g_like();
    let clock = glitchlock_sta::ClockModel::new(profile.clock_period);
    let sta = glitchlock_sta::analyze(&nl, &library, &clock);
    let ub = profile.clock_period.as_ps() - SETUP_PS;
    let mut feasible_pool: Vec<NetId> = Vec::new();
    let mut tight_pool: Vec<NetId> = Vec::new();
    for layer in layers.iter().skip(1) {
        for &net in layer {
            let arrival = sta.arrival_max(net).as_ps();
            if arrival + GK_HEADROOM_PS + 150 <= ub {
                feasible_pool.push(net);
            } else if arrival + 120 <= ub && arrival + GK_INFEASIBLE_PS > ub {
                // Clean at sign-off but *strictly* inside the zone where the
                // Eq. (5) window (L + D_react + margin) cannot fit.
                tight_pool.push(net);
            }
            // Nets in the narrow gap between the pools, and nets slower
            // than UB, stay untapped (dead logic in the cloud).
        }
    }
    assert!(
        !feasible_pool.is_empty(),
        "profile {} has no GK-feasible nets at {}",
        profile.name,
        profile.clock_period
    );
    if tight_pool.is_empty() {
        // Degenerate shallow cloud: reuse the slowest feasible nets so the
        // bimodal draw still terminates (coverage will skew high).
        tight_pool = feasible_pool.clone();
    }

    for &ff in &ff_cells {
        let shallow = rng.gen_bool(profile.coverage_target.clamp(0.0, 1.0));
        let pool = if shallow { &feasible_pool } else { &tight_pool };
        let d = pool[rng.gen_range(0..pool.len())];
        nl.rewire_input(ff, 0, d).expect("ff exists");
    }

    // Primary outputs tap anywhere with a preference for deeper logic,
    // like real output cones.
    let all_taps: Vec<NetId> = layers.iter().skip(1).flatten().copied().collect();
    for i in 0..profile.outputs {
        let net = if rng.gen_bool(0.7) && !tight_pool.is_empty() {
            tight_pool[rng.gen_range(0..tight_pool.len())]
        } else {
            all_taps[rng.gen_range(0..all_taps.len())]
        };
        nl.mark_output(net, format!("po{i}"));
    }

    // Tapping adds fanout load, which can push a margin-tight net over the
    // deadline; repair by re-tapping any violating flip-flop onto a
    // high-slack net until the design signs off cleanly.
    for _round in 0..4 {
        let sta = glitchlock_sta::analyze(&nl, &library, &clock);
        let violators: Vec<_> = sta
            .checks()
            .iter()
            .filter(|c| !c.met())
            .map(|c| c.ff)
            .collect();
        if violators.is_empty() {
            break;
        }
        for ff in violators {
            let d = feasible_pool[rng.gen_range(0..feasible_pool.len())];
            nl.rewire_input(ff, 0, d).expect("ff exists");
        }
    }
    debug_assert!(
        glitchlock_sta::analyze(&nl, &library, &clock).all_met(),
        "generated {} must sign off cleanly",
        profile.name
    );

    let _ = (feasible_depth, deep_min);
    nl.validate()
        .expect("generated netlist is structurally valid");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::{Logic, SeqState};

    #[test]
    fn profiles_match_paper_counts() {
        let ps = iwls2005_profiles();
        assert_eq!(ps.len(), 7);
        let s5378 = profile_by_name("s5378").unwrap();
        assert_eq!(s5378.cells, 775);
        assert_eq!(s5378.ffs, 163);
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn small_iscas89_profiles_resolve_and_generate() {
        for name in ["s298", "s344"] {
            let p = profile_by_name(name).unwrap();
            let nl = generate(&p);
            let st = nl.stats();
            assert_eq!(st.cells, p.cells, "{name}");
            assert_eq!(st.dffs, p.ffs, "{name}");
            assert_eq!(st.inputs, p.inputs, "{name}");
            assert_eq!(st.outputs, p.outputs, "{name}");
        }
    }

    #[test]
    fn generated_counts_are_exact() {
        for p in [
            tiny(1),
            profile_by_name("s1238").unwrap(),
            profile_by_name("s5378").unwrap(),
        ] {
            let nl = generate(&p);
            let st = nl.stats();
            assert_eq!(st.cells, p.cells, "{}", p.name);
            assert_eq!(st.dffs, p.ffs, "{}", p.name);
            assert_eq!(st.inputs, p.inputs, "{}", p.name);
            assert_eq!(st.outputs, p.outputs, "{}", p.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = tiny(42);
        let a = generate(&p);
        let b = generate(&p);
        let mut sa = SeqState::reset(&a);
        let mut sb = SeqState::reset(&b);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let pat: Vec<Logic> = (0..p.inputs).map(|_| Logic::from_bool(rng.gen())).collect();
            assert_eq!(sa.step(&a, &pat), sb.step(&b, &pat));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&tiny(1));
        let b = generate(&tiny(2));
        // Extremely likely to differ in at least one gate kind sequence.
        let ka: Vec<_> = a.cells().map(|(_, c)| c.kind()).collect();
        let kb: Vec<_> = b.cells().map(|(_, c)| c.kind()).collect();
        assert_ne!(ka, kb);
    }

    #[test]
    fn generated_netlists_are_simulable_and_acyclic() {
        let nl = generate(&tiny(3));
        nl.validate().unwrap();
        let mut st = SeqState::reset(&nl);
        let out = st.step(&nl, &[Logic::One; 6]);
        assert_eq!(out.len(), 4);
        // After one cycle from reset with definite inputs, outputs are
        // definite (no X contamination: all sources are driven).
        for o in out {
            assert!(o.is_known());
        }
    }

    #[test]
    fn custom_profile_clamps_degenerate_knobs() {
        // Pathological arguments still generate: zero flip-flops, fewer
        // cells than flip-flops, a clock too fast for any GK window.
        let p = custom_profile(0, 0, 0, 0, Ps(100), 7.0, 9);
        assert!(p.cells > p.ffs);
        assert!(p.ffs >= 1 && p.inputs >= 2 && p.outputs >= 1);
        assert!(p.clock_period >= Ps::from_ns(2));
        assert!((0.0..=1.0).contains(&p.coverage_target));
        let nl = generate(&p);
        assert_eq!(nl.stats().dffs, p.ffs);
    }

    #[test]
    fn big_profile_generates_quickly() {
        let p = profile_by_name("s38417").unwrap();
        let nl = generate(&p);
        assert_eq!(nl.stats().cells, 5397);
    }
}
