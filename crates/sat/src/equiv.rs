//! Bounded sequential equivalence checking via SAT (time-frame unrolling).
//!
//! Verifies that two sequential netlists produce identical primary outputs
//! for every input sequence of length `k`, starting from the all-zero
//! reset state. Used across the project to validate optimization passes
//! and removal-attack reconstructions, and by tests as an independent
//! referee for the locking flows.

use crate::encoder::{encode_comb_with, EncoderKind};
use crate::{Lit, SatResult, Solver, SolverBackend, SolverStats, Var};
use glitchlock_netlist::{CombView, Netlist};

/// Outcome of a bounded equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// No difference exists within the bound.
    Equivalent,
    /// A distinguishing input sequence was found: `inputs[t][i]` drives
    /// primary input `i` at cycle `t`.
    Counterexample {
        /// The input sequence exposing the difference.
        inputs: Vec<Vec<bool>>,
    },
}

/// Checks `a` and `b` for output equality over all `k`-cycle input
/// sequences from the all-zero state.
///
/// # Panics
///
/// Panics if the interfaces disagree (primary input/output counts) or a
/// netlist is cyclic.
pub fn bounded_equiv(a: &Netlist, b: &Netlist, k: usize) -> EquivResult {
    bounded_equiv_with(a, b, k, SolverBackend::default())
}

/// [`bounded_equiv`] on an explicit solver backend.
///
/// # Panics
///
/// Panics if the interfaces disagree (primary input/output counts) or a
/// netlist is cyclic.
pub fn bounded_equiv_with(
    a: &Netlist,
    b: &Netlist,
    k: usize,
    backend: SolverBackend,
) -> EquivResult {
    bounded_equiv_with_stats(a, b, k, backend).0
}

/// [`bounded_equiv_with`] on an explicit CNF encoder as well — the path
/// behind `glk equiv --encoder …`.
///
/// # Panics
///
/// Panics if the interfaces disagree (primary input/output counts) or a
/// netlist is cyclic.
pub fn bounded_equiv_with_encoder(
    a: &Netlist,
    b: &Netlist,
    k: usize,
    backend: SolverBackend,
    encoder: EncoderKind,
) -> EquivResult {
    bounded_equiv_full(a, b, k, backend, encoder).0
}

/// [`bounded_equiv_with`], additionally returning the solver's search
/// statistics — the `sat_solver` benchmark uses these to report
/// conflicts/sec on equivalence workloads.
///
/// # Panics
///
/// Panics if the interfaces disagree (primary input/output counts) or a
/// netlist is cyclic.
pub fn bounded_equiv_with_stats(
    a: &Netlist,
    b: &Netlist,
    k: usize,
    backend: SolverBackend,
) -> (EquivResult, SolverStats) {
    bounded_equiv_full(a, b, k, backend, EncoderKind::default())
}

/// The full-parameter unrolling shared by every `bounded_equiv*` front.
///
/// # Panics
///
/// Panics if the interfaces disagree (primary input/output counts) or a
/// netlist is cyclic.
pub fn bounded_equiv_full(
    a: &Netlist,
    b: &Netlist,
    k: usize,
    backend: SolverBackend,
    encoder: EncoderKind,
) -> (EquivResult, SolverStats) {
    assert_eq!(
        a.input_nets().len(),
        b.input_nets().len(),
        "primary input counts must agree"
    );
    assert_eq!(
        a.output_ports().len(),
        b.output_ports().len(),
        "primary output counts must agree"
    );
    let va = CombView::new(a);
    let vb = CombView::new(b);
    let n_pi = a.input_nets().len();
    let n_po = a.output_ports().len();

    let mut solver = Solver::with_backend(backend);
    // Shared primary inputs per cycle.
    let mut pi_vars: Vec<Vec<Var>> = Vec::with_capacity(k);
    for _ in 0..k {
        pi_vars.push((0..n_pi).map(|_| solver.new_var()).collect());
    }
    // Reset state: all flip-flops 0 (fresh vars pinned false).
    let zero_state = |solver: &mut Solver, n: usize| -> Vec<Var> {
        (0..n)
            .map(|_| {
                let v = solver.new_var();
                solver.add_clause(&[Lit::neg(v)]);
                v
            })
            .collect()
    };
    let mut state_a = zero_state(&mut solver, a.dff_cells().len());
    let mut state_b = zero_state(&mut solver, b.dff_cells().len());

    let mut diff_lits: Vec<Lit> = Vec::new();
    for pis_t in pi_vars.iter().take(k) {
        let unroll = |solver: &mut Solver,
                      nl: &Netlist,
                      view: &CombView,
                      state: &[Var],
                      pis: &[Var]|
         -> (Vec<Var>, Vec<Var>) {
            let mut pinned: Vec<Option<Var>> = Vec::with_capacity(view.num_inputs());
            pinned.extend(pis.iter().copied().map(Some));
            pinned.extend(state.iter().copied().map(Some));
            let ports = encode_comb_with(solver, nl, view, &pinned, encoder);
            let pos = ports.output_vars[..n_po].to_vec();
            let next = ports.output_vars[n_po..].to_vec();
            (pos, next)
        };
        let (po_a, next_a) = unroll(&mut solver, a, &va, &state_a, pis_t);
        let (po_b, next_b) = unroll(&mut solver, b, &vb, &state_b, pis_t);
        for (oa, ob) in po_a.iter().zip(&po_b) {
            let d = solver.new_var();
            // d <-> oa xor ob
            solver.add_clause(&[Lit::neg(d), Lit::pos(*oa), Lit::pos(*ob)]);
            solver.add_clause(&[Lit::neg(d), Lit::neg(*oa), Lit::neg(*ob)]);
            solver.add_clause(&[Lit::pos(d), Lit::neg(*oa), Lit::pos(*ob)]);
            solver.add_clause(&[Lit::pos(d), Lit::pos(*oa), Lit::neg(*ob)]);
            diff_lits.push(Lit::pos(d));
        }
        state_a = next_a;
        state_b = next_b;
    }
    solver.add_clause(&diff_lits);
    let result = match solver.solve() {
        SatResult::Unsat => EquivResult::Equivalent,
        SatResult::Sat => {
            let inputs = pi_vars
                .iter()
                .map(|cycle| {
                    cycle
                        .iter()
                        .map(|&v| solver.value(v).unwrap_or(false))
                        .collect()
                })
                .collect();
            EquivResult::Counterexample { inputs }
        }
    };
    (result, solver.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::{GateKind, Logic, SeqState};

    fn counter(buggy: bool) -> Netlist {
        let mut nl = Netlist::new("c");
        let en = nl.add_input("en");
        let d0 = nl.add_net("d0");
        let q0 = nl.add_dff(d0).unwrap();
        let t = nl.add_gate(GateKind::Xor, &[q0, en]).unwrap();
        let ff = nl.dff_cells()[0];
        nl.rewire_input(ff, 0, t).unwrap();
        let y = if buggy {
            nl.add_gate(GateKind::Buf, &[q0]).unwrap()
        } else {
            nl.add_gate(GateKind::Inv, &[q0]).unwrap()
        };
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn identical_netlists_are_equivalent() {
        let a = counter(false);
        assert_eq!(bounded_equiv(&a, &a.clone(), 4), EquivResult::Equivalent);
    }

    #[test]
    fn both_backends_agree_on_verdicts() {
        let a = counter(false);
        let b = counter(true);
        for backend in [SolverBackend::Legacy, SolverBackend::Modern] {
            assert_eq!(
                bounded_equiv_with(&a, &a.clone(), 4, backend),
                EquivResult::Equivalent,
                "{backend}"
            );
            assert!(
                matches!(
                    bounded_equiv_with(&a, &b, 3, backend),
                    EquivResult::Counterexample { .. }
                ),
                "{backend}"
            );
        }
    }

    #[test]
    fn both_encoders_agree_on_verdicts() {
        let a = counter(false);
        let b = counter(true);
        for encoder in [EncoderKind::Flat, EncoderKind::Aig] {
            assert_eq!(
                bounded_equiv_with_encoder(&a, &a.clone(), 4, SolverBackend::default(), encoder),
                EquivResult::Equivalent,
                "{encoder}"
            );
            assert!(
                matches!(
                    bounded_equiv_with_encoder(&a, &b, 3, SolverBackend::default(), encoder),
                    EquivResult::Counterexample { .. }
                ),
                "{encoder}"
            );
        }
    }

    #[test]
    fn optimized_netlist_is_equivalent() {
        let a = counter(false);
        let opt = glitchlock_synth::optimize(&a).unwrap();
        assert_eq!(bounded_equiv(&a, &opt, 5), EquivResult::Equivalent);
    }

    #[test]
    fn different_output_logic_is_caught_with_valid_counterexample() {
        let a = counter(false);
        let b = counter(true);
        let EquivResult::Counterexample { inputs } = bounded_equiv(&a, &b, 3) else {
            panic!("inverter vs buffer must differ");
        };
        // Replay the counterexample on both machines and confirm a
        // divergence at some cycle.
        let mut sa = SeqState::reset(&a);
        let mut sb = SeqState::reset(&b);
        let mut diverged = false;
        for cycle in &inputs {
            let iv: Vec<Logic> = cycle.iter().map(|&b| Logic::from_bool(b)).collect();
            if sa.step(&a, &iv) != sb.step(&b, &iv) {
                diverged = true;
            }
        }
        assert!(diverged, "counterexample must replay to a real divergence");
    }

    #[test]
    fn state_dependent_difference_needs_enough_depth() {
        // Two counters that differ only after the state flips: a 1-cycle
        // check cannot see it (outputs read the pre-flip state), deeper
        // checks can.
        let mut a = counter(false);
        let mut b = counter(false);
        // Make b's feedback constant-0 (state never flips): same output at
        // cycle 1 (both read reset state), different from cycle 2 with
        // en=1.
        let ffb = b.dff_cells()[0];
        let zero = b.add_const(false);
        b.rewire_input(ffb, 0, zero).unwrap();
        assert_eq!(bounded_equiv(&a, &b, 1), EquivResult::Equivalent);
        assert!(matches!(
            bounded_equiv(&a, &b, 2),
            EquivResult::Counterexample { .. }
        ));
        // Touch `a` to silence the unused-mut lint symmetry.
        let _ = &mut a;
    }

    #[test]
    fn bypassed_sarlock_is_equivalent_to_original() {
        // Independent referee for the removal attack: tying the flip
        // signal restores the original function for all inputs, not just
        // sampled ones.
        use glitchlock_netlist::Netlist;
        let mut nl = Netlist::new("t");
        let a0 = nl.add_input("a");
        let b0 = nl.add_input("b");
        let y = nl.add_gate(GateKind::And, &[a0, b0]).unwrap();
        let q = nl.add_dff(y).unwrap();
        nl.mark_output(q, "q");
        let _ = &nl;
        // (The cross-crate SARLock case lives in the integration tests;
        // here we just confirm the checker accepts a self-comparison of a
        // sequential design with state.)
        assert_eq!(bounded_equiv(&nl, &nl.clone(), 6), EquivResult::Equivalent);
    }
}
