//! Clause storage: the clause arena entry and the watcher record used by
//! the two-watched-literal scheme.

use crate::Lit;

/// Index into the solver's clause arena.
pub(crate) type ClauseRef = u32;

/// A glue clause (LBD at or below this) is never deleted by reduction:
/// such clauses connect few decision levels and are empirically the ones
/// worth keeping forever (Audemard & Simon 2009).
pub(crate) const GLUE_LBD: u32 = 2;

#[derive(Clone, Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) learnt: bool,
    pub(crate) activity: f32,
    /// Literal-block distance: number of distinct decision levels among
    /// the literals when the clause was learnt (or last improved). Only
    /// meaningful for learnt clauses; original clauses keep 0.
    pub(crate) lbd: u32,
    /// Set when the clause's LBD improved during conflict analysis; the
    /// clause survives the next reduction round, then the flag clears.
    pub(crate) protected: bool,
    pub(crate) deleted: bool,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool, lbd: u32) -> Clause {
        Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            protected: false,
            deleted: false,
        }
    }

    /// Glue clauses are exempt from reduction.
    pub(crate) fn is_glue(&self) -> bool {
        self.learnt && self.lbd != 0 && self.lbd <= GLUE_LBD
    }
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and needs no inspection.
    pub(crate) blocker: Lit,
}
