//! Solver backend selection and the incremental-solving trait.
//!
//! The crate ships one CDCL engine with two strategy profiles. Both are
//! complete and sound; they differ in the heuristics that dominate
//! wall-time on the SAT-attack miter workload:
//!
//! * [`SolverBackend::Legacy`] — the original engine: Luby restarts,
//!   activity-ordered clause reduction that only fires at decision level
//!   0, no LBD bookkeeping.
//! * [`SolverBackend::Modern`] — glucose-style dynamic restarts driven by
//!   fast/slow EMAs of conflict LBD with trail-depth blocking, LBD-scored
//!   clause-DB reduction that protects glue/reason clauses, and
//!   best-phase rephasing on top of phase saving.

use crate::{Lit, SatResult, SolverStats, Var};

/// Which CDCL strategy profile a [`crate::Solver`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolverBackend {
    /// The original engine: Luby restarts, activity-only reduction.
    Legacy,
    /// Glucose-style engine: LBD reduction, EMA restarts, rephasing.
    #[default]
    Modern,
}

impl SolverBackend {
    /// Parses a backend name as used by `--solver` and campaign specs.
    pub fn parse(s: &str) -> Option<SolverBackend> {
        match s {
            "legacy" => Some(SolverBackend::Legacy),
            "modern" => Some(SolverBackend::Modern),
            _ => None,
        }
    }

    /// Canonical name, the inverse of [`SolverBackend::parse`].
    pub fn tag(self) -> &'static str {
        match self {
            SolverBackend::Legacy => "legacy",
            SolverBackend::Modern => "modern",
        }
    }
}

impl std::fmt::Display for SolverBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// The incremental SAT-solving surface the attacks program against.
///
/// Clauses may be added between solve calls and persist; assumptions
/// passed to [`IncrementalSolver::solve_with`] hold for that call only.
/// After an Unsat answer, [`IncrementalSolver::failed_assumptions`]
/// distinguishes "the formula itself is unsatisfiable" (empty core) from
/// "these assumptions clash with the formula" (non-empty core).
pub trait IncrementalSolver {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause; returns `false` once the formula is known
    /// unsatisfiable at level 0.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Solves under temporary unit assumptions.
    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult;

    /// Solves the formula with no assumptions.
    fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Model value of `v` after a Sat answer; `None` when unassigned or
    /// after Unsat.
    fn value(&self, v: Var) -> Option<bool>;

    /// Subset of the last `solve_with` assumptions proven jointly
    /// inconsistent with the formula (the unsat core over assumptions).
    /// Empty after a Sat answer, and empty after an Unsat answer that did
    /// not need the assumptions (the formula alone is unsatisfiable).
    fn failed_assumptions(&self) -> &[Lit];

    /// Cumulative search statistics.
    fn stats(&self) -> SolverStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_tag_round_trip() {
        for b in [SolverBackend::Legacy, SolverBackend::Modern] {
            assert_eq!(SolverBackend::parse(b.tag()), Some(b));
            assert_eq!(format!("{b}"), b.tag());
        }
        assert_eq!(SolverBackend::parse("minisat"), None);
        assert_eq!(SolverBackend::default(), SolverBackend::Modern);
    }
}
