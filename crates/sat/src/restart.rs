//! Restart policies.
//!
//! The legacy backend restarts on a Luby schedule (unit 100 conflicts),
//! exactly as the original solver did. The modern backend uses
//! glucose-style dynamic restarts: restart when the short-term average
//! conflict LBD rises above the long-term average (search is learning
//! poorly here), and *block* an imminent restart when the assignment
//! trail is much deeper than usual (search may be close to a model).

/// Exponential moving average with a fixed smoothing factor.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Ema {
    value: f64,
    alpha: f64,
    /// Updates seen; the average is meaningless before a few samples.
    samples: u64,
}

impl Ema {
    pub(crate) fn new(alpha: f64) -> Ema {
        Ema {
            value: 0.0,
            alpha,
            samples: 0,
        }
    }

    pub(crate) fn update(&mut self, x: f64) {
        // Warm-up: seed with the first sample instead of decaying from 0,
        // so slow EMAs are comparable to fast ones from the start.
        if self.samples == 0 {
            self.value = x;
        } else {
            self.value += self.alpha * (x - self.value);
        }
        self.samples += 1;
    }

    pub(crate) fn get(&self) -> f64 {
        self.value
    }
}

/// Restart schedule selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RestartMode {
    /// Luby sequence × 100 conflicts (legacy).
    Luby,
    /// Glucose fast/slow LBD EMAs with trail-depth blocking (modern).
    Glucose,
}

/// Fast EMA smoothing (~last 32 conflicts).
const FAST_ALPHA: f64 = 1.0 / 32.0;
/// Slow EMA smoothing (~last 4096 conflicts).
const SLOW_ALPHA: f64 = 1.0 / 4096.0;
/// Trail-depth EMA smoothing.
const TRAIL_ALPHA: f64 = 1.0 / 4096.0;
/// Restart when `fast > MARGIN × slow`.
const MARGIN: f64 = 1.25;
/// Block a restart when the trail is this factor deeper than average.
const BLOCK_FACTOR: f64 = 1.4;
/// Minimum conflicts between glucose restarts.
const MIN_CONFLICTS: u64 = 50;
/// Luby unit, in conflicts (matches the original solver).
const LUBY_UNIT: u64 = 100;

/// All restart bookkeeping for one solver.
#[derive(Clone, Debug)]
pub(crate) struct RestartState {
    mode: RestartMode,
    /// Conflicts since the last restart (or block).
    since: u64,
    // Luby state.
    luby_count: u64,
    budget: u64,
    // Glucose state.
    fast: Ema,
    slow: Ema,
    trail: Ema,
    /// Restarts suppressed by the trail-depth block.
    pub(crate) blocked: u64,
}

impl RestartState {
    pub(crate) fn new(mode: RestartMode) -> RestartState {
        RestartState {
            mode,
            since: 0,
            luby_count: 1,
            budget: LUBY_UNIT * luby(1),
            fast: Ema::new(FAST_ALPHA),
            slow: Ema::new(SLOW_ALPHA),
            trail: Ema::new(TRAIL_ALPHA),
            blocked: 0,
        }
    }

    /// Records one conflict: its learnt-clause LBD and the trail depth at
    /// the moment of conflict.
    pub(crate) fn on_conflict(&mut self, lbd: u32, trail_len: usize) {
        self.since += 1;
        if self.mode == RestartMode::Glucose {
            self.fast.update(f64::from(lbd));
            self.slow.update(f64::from(lbd));
            // Blocking: a much-deeper-than-usual trail suggests progress
            // toward a model; postpone the restart by restarting the
            // conflict window.
            if self.since >= MIN_CONFLICTS && trail_len as f64 > BLOCK_FACTOR * self.trail.get() {
                self.since = 0;
                self.blocked += 1;
            }
            self.trail.update(trail_len as f64);
        }
    }

    /// Should the solver restart now?
    pub(crate) fn should_restart(&self) -> bool {
        match self.mode {
            RestartMode::Luby => self.since >= self.budget,
            RestartMode::Glucose => {
                self.since >= MIN_CONFLICTS && self.fast.get() > MARGIN * self.slow.get()
            }
        }
    }

    /// Resets the per-restart window after a restart was performed.
    pub(crate) fn on_restart(&mut self) {
        self.since = 0;
        if self.mode == RestartMode::Luby {
            self.luby_count += 1;
            self.budget = LUBY_UNIT * luby(self.luby_count);
        } else {
            // Forget the fast window so the next restart needs fresh
            // evidence of bad LBDs, not the ones that caused this restart.
            self.fast = Ema::new(FAST_ALPHA);
        }
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
pub(crate) fn luby(mut x: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < x {
            k += 1;
        }
        if (1u64 << k) - 1 == x {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn ema_seeds_from_first_sample_then_smooths() {
        let mut e = Ema::new(0.5);
        e.update(8.0);
        assert_eq!(e.get(), 8.0);
        e.update(0.0);
        assert_eq!(e.get(), 4.0);
        e.update(0.0);
        assert_eq!(e.get(), 2.0);
    }

    #[test]
    fn luby_schedule_restarts_on_budget() {
        let mut r = RestartState::new(RestartMode::Luby);
        for _ in 0..99 {
            r.on_conflict(5, 10);
            assert!(!r.should_restart());
        }
        r.on_conflict(5, 10);
        assert!(r.should_restart(), "100 conflicts = first Luby budget");
        r.on_restart();
        assert!(!r.should_restart());
    }

    #[test]
    fn glucose_restarts_when_recent_lbd_degrades() {
        let mut r = RestartState::new(RestartMode::Glucose);
        // A long run of good (low-LBD) conflicts: no restart.
        for _ in 0..500 {
            r.on_conflict(3, 10);
        }
        assert!(!r.should_restart(), "steady LBD must not restart");
        // A burst of bad conflicts lifts the fast EMA above the slow one.
        for _ in 0..60 {
            r.on_conflict(30, 10);
        }
        assert!(r.should_restart(), "degrading LBD must trigger a restart");
        r.on_restart();
        assert!(!r.should_restart(), "window resets after restart");
    }

    #[test]
    fn glucose_blocks_restart_on_deep_trail() {
        let mut r = RestartState::new(RestartMode::Glucose);
        for _ in 0..500 {
            r.on_conflict(3, 100);
        }
        for _ in 0..60 {
            r.on_conflict(30, 100);
        }
        assert!(r.should_restart());
        // A conflict with a trail far deeper than the average blocks the
        // pending restart by resetting the conflict window.
        r.on_conflict(30, 100_000);
        assert!(!r.should_restart(), "deep trail must block the restart");
        assert_eq!(r.blocked, 1);
    }
}
