//! Tseitin transformation: gate-level netlist → CNF.
//!
//! Encodes the *combinational view* of a netlist ([`CombView`]): primary
//! inputs and flip-flop Q pins become free variables, every other net is
//! constrained to equal its gate function. This is exactly the abstraction a
//! netlist-level SAT attack works on — and the reason the glitch key-gate
//! defeats it: the GK's output is key-independent in this static view, so
//! the attack's miter can never differ (paper Sec. V-A).

use crate::{Cnf, Lit, Solver, Var};
use glitchlock_netlist::{CombView, GateKind, NetId, Netlist};

/// A clause consumer: both [`Cnf`] (standalone formulas) and [`Solver`]
/// (incremental encoding, as the SAT attack's DIP loop needs) accept
/// Tseitin output.
pub trait CnfSink {
    /// Allocates a fresh variable.
    fn fresh_var(&mut self) -> Var;
    /// Adds a clause.
    fn clause(&mut self, lits: &[Lit]);
}

impl CnfSink for Cnf {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }
    fn clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

impl CnfSink for Solver {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }
    fn clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

/// The result of encoding a netlist: the formula plus the net↔variable maps.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The CNF constraints.
    pub cnf: Cnf,
    /// Variable of each net (dense, indexed by [`NetId::index`]).
    net_var: Vec<Option<Var>>,
    /// Variables of the view's inputs, in view order.
    pub input_vars: Vec<Var>,
    /// Variables of the view's outputs, in view order.
    pub output_vars: Vec<Var>,
}

impl Encoding {
    /// The variable encoding a net, if the net was in the encoded cone.
    pub fn var_of(&self, net: NetId) -> Option<Var> {
        self.net_var.get(net.index()).copied().flatten()
    }
}

/// Encodes the combinational view of `netlist` into CNF.
///
/// Every net with a combinational driver (or a view input) receives a
/// variable; gate semantics become clauses. N-ary XOR/XNOR chains introduce
/// auxiliary variables.
///
/// # Panics
///
/// Panics if the netlist fails validation (undriven read nets).
pub fn encode_comb(netlist: &Netlist, view: &CombView) -> Encoding {
    let mut cnf = Cnf::new();
    let ports = encode_comb_into(&mut cnf, netlist, view, &[]);
    Encoding {
        cnf,
        net_var: ports.net_var,
        input_vars: ports.input_vars,
        output_vars: ports.output_vars,
    }
}

/// Variable bindings produced by [`encode_comb_into`].
#[derive(Clone, Debug)]
pub struct EncodedPorts {
    /// Variables of the view's inputs, in view order.
    pub input_vars: Vec<Var>,
    /// Variables of the view's outputs, in view order.
    pub output_vars: Vec<Var>,
    /// Variable of each net (dense, indexed by [`NetId::index`]).
    pub net_var: Vec<Option<Var>>,
}

/// Encodes a fresh copy of the combinational view into any [`CnfSink`]
/// (e.g. directly into a [`Solver`] mid-attack). `pinned` may pre-assign
/// variables for a prefix of the view inputs — the mechanism the SAT
/// attack uses to share the data-input variables between its two circuit
/// copies while keeping the key variables independent.
///
/// # Panics
///
/// Panics on a cyclic netlist.
pub fn encode_comb_into<S: CnfSink>(
    sink: &mut S,
    netlist: &Netlist,
    view: &CombView,
    pinned: &[Option<Var>],
) -> EncodedPorts {
    let mut net_var: Vec<Option<Var>> = vec![None; netlist.net_count()];

    // View inputs are free (or pinned) variables.
    for (i, &n) in view.input_nets().iter().enumerate() {
        if net_var[n.index()].is_none() {
            let v = pinned
                .get(i)
                .copied()
                .flatten()
                .unwrap_or_else(|| sink.fresh_var());
            net_var[n.index()] = Some(v);
        }
    }

    // Walk combinational cells in topological order, assigning output vars.
    let order = netlist.topo_order().expect("netlist must be acyclic");
    for cell_id in order {
        let cell = netlist.cell(cell_id);
        let out = cell.output();
        if net_var[out.index()].is_some() {
            // Flip-flop Q pins that are also view inputs were handled above;
            // their driving DFF is skipped by `is_combinational` anyway.
            continue;
        }
        let y = {
            let v = sink.fresh_var();
            net_var[out.index()] = Some(v);
            v
        };
        let ins: Vec<Var> = cell
            .inputs()
            .iter()
            .map(|n| net_var[n.index()].expect("inputs precede outputs in topo order"))
            .collect();
        encode_gate(sink, cell.kind(), y, &ins);
    }

    let input_vars = view
        .input_nets()
        .iter()
        .map(|n| net_var[n.index()].expect("view input encoded"))
        .collect();
    let output_vars = view
        .output_nets()
        .iter()
        .map(|n| net_var[n.index()].expect("view output encoded"))
        .collect();
    EncodedPorts {
        input_vars,
        output_vars,
        net_var,
    }
}

fn encode_gate<S: CnfSink>(cnf: &mut S, kind: GateKind, y: Var, ins: &[Var]) {
    let yp = Lit::pos(y);
    let yn = Lit::neg(y);
    match kind {
        GateKind::Input | GateKind::Dff => unreachable!("not combinational"),
        GateKind::Const0 => cnf.clause(&[yn]),
        GateKind::Const1 => cnf.clause(&[yp]),
        GateKind::Buf => {
            cnf.clause(&[yn, Lit::pos(ins[0])]);
            cnf.clause(&[yp, Lit::neg(ins[0])]);
        }
        GateKind::Inv => {
            cnf.clause(&[yn, Lit::neg(ins[0])]);
            cnf.clause(&[yp, Lit::pos(ins[0])]);
        }
        GateKind::And => {
            let mut big: Vec<Lit> = vec![yp];
            for &a in ins {
                cnf.clause(&[yn, Lit::pos(a)]);
                big.push(Lit::neg(a));
            }
            cnf.clause(&big);
        }
        GateKind::Nand => {
            let mut big: Vec<Lit> = vec![yn];
            for &a in ins {
                cnf.clause(&[yp, Lit::pos(a)]);
                big.push(Lit::neg(a));
            }
            cnf.clause(&big);
        }
        GateKind::Or => {
            let mut big: Vec<Lit> = vec![yn];
            for &a in ins {
                cnf.clause(&[yp, Lit::neg(a)]);
                big.push(Lit::pos(a));
            }
            cnf.clause(&big);
        }
        GateKind::Nor => {
            let mut big: Vec<Lit> = vec![yp];
            for &a in ins {
                cnf.clause(&[yn, Lit::neg(a)]);
                big.push(Lit::pos(a));
            }
            cnf.clause(&big);
        }
        GateKind::Xor => encode_parity(cnf, y, ins, false),
        GateKind::Xnor => encode_parity(cnf, y, ins, true),
        GateKind::Mux2 => encode_mux2(cnf, y, ins[0], ins[1], ins[2]),
        GateKind::Mux4 => {
            // y = s1 ? (s0 ? in3 : in2) : (s0 ? in1 : in0)
            let lo = cnf.fresh_var();
            let hi = cnf.fresh_var();
            encode_mux2(cnf, lo, ins[0], ins[1], ins[4]);
            encode_mux2(cnf, hi, ins[2], ins[3], ins[4]);
            encode_mux2(cnf, y, lo, hi, ins[5]);
        }
    }
}

/// `y = a ^ b ^ … (^ 1 if invert)` via a chain of 2-input XOR constraints.
fn encode_parity<S: CnfSink>(cnf: &mut S, y: Var, ins: &[Var], invert: bool) {
    debug_assert!(ins.len() >= 2);
    let mut acc = ins[0];
    for (i, &b) in ins[1..].iter().enumerate() {
        let is_last = i == ins.len() - 2;
        let target = if is_last && !invert {
            y
        } else {
            cnf.fresh_var()
        };
        encode_xor2(cnf, target, acc, b);
        acc = target;
    }
    if invert {
        // y = !acc
        cnf.clause(&[Lit::neg(y), Lit::neg(acc)]);
        cnf.clause(&[Lit::pos(y), Lit::pos(acc)]);
    }
}

fn encode_xor2<S: CnfSink>(cnf: &mut S, y: Var, a: Var, b: Var) {
    let (yp, yn) = (Lit::pos(y), Lit::neg(y));
    let (ap, an) = (Lit::pos(a), Lit::neg(a));
    let (bp, bn) = (Lit::pos(b), Lit::neg(b));
    cnf.clause(&[yn, ap, bp]);
    cnf.clause(&[yn, an, bn]);
    cnf.clause(&[yp, an, bp]);
    cnf.clause(&[yp, ap, bn]);
}

/// `y = sel ? in1 : in0`.
fn encode_mux2<S: CnfSink>(cnf: &mut S, y: Var, in0: Var, in1: Var, sel: Var) {
    let (yp, yn) = (Lit::pos(y), Lit::neg(y));
    let (sp, sn) = (Lit::pos(sel), Lit::neg(sel));
    cnf.clause(&[sp, Lit::neg(in0), yp]);
    cnf.clause(&[sp, Lit::pos(in0), yn]);
    cnf.clause(&[sn, Lit::neg(in1), yp]);
    cnf.clause(&[sn, Lit::pos(in1), yn]);
    // Redundant but propagation-strengthening clauses.
    cnf.clause(&[Lit::neg(in0), Lit::neg(in1), yp]);
    cnf.clause(&[Lit::pos(in0), Lit::pos(in1), yn]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};
    use glitchlock_netlist::{Logic, Netlist};

    /// Checks the encoding against direct evaluation on all input patterns.
    fn check_equiv(netlist: &Netlist) {
        let view = CombView::new(netlist);
        let enc = encode_comb(netlist, &view);
        let n = view.num_inputs();
        assert!(n <= 12, "exhaustive check needs few inputs");
        for bits in 0u32..(1 << n) {
            let input_bools: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let logic: Vec<Logic> = input_bools.iter().map(|&b| Logic::from_bool(b)).collect();
            let expect = view.eval(netlist, &logic);
            let mut solver = Solver::from_cnf(&enc.cnf);
            let assumptions: Vec<Lit> = enc
                .input_vars
                .iter()
                .zip(&input_bools)
                .map(|(&v, &b)| Lit::with_sign(v, !b))
                .collect();
            assert_eq!(solver.solve_with(&assumptions), SatResult::Sat);
            for (i, &ov) in enc.output_vars.iter().enumerate() {
                let got = solver.value(ov);
                match expect[i].to_bool() {
                    Some(b) => {
                        assert_eq!(got, Some(b), "output {i} mismatch for input bits {bits:b}")
                    }
                    None => panic!("X in fully-driven combinational circuit"),
                }
            }
        }
    }

    #[test]
    fn full_adder_equivalence() {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let axb = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let s = nl.add_gate(GateKind::Xor, &[axb, cin]).unwrap();
        let t1 = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let t2 = nl.add_gate(GateKind::Nand, &[axb, cin]).unwrap();
        let cout = nl.add_gate(GateKind::Nand, &[t1, t2]).unwrap();
        nl.mark_output(s, "sum");
        nl.mark_output(cout, "cout");
        check_equiv(&nl);
    }

    #[test]
    fn every_gate_kind_equivalence() {
        let mut nl = Netlist::new("kinds");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let y2 = nl.add_gate(kind, &[a, b]).unwrap();
            let y3 = nl.add_gate(kind, &[a, b, c]).unwrap();
            nl.mark_output(y2, format!("{kind}2"));
            nl.mark_output(y3, format!("{kind}3"));
        }
        let inv = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let buf = nl.add_gate(GateKind::Buf, &[b]).unwrap();
        let mux = nl.add_gate(GateKind::Mux2, &[a, b, c]).unwrap();
        let c0 = nl.add_gate(GateKind::Const0, &[]).unwrap();
        let c1 = nl.add_gate(GateKind::Const1, &[]).unwrap();
        nl.mark_output(inv, "inv");
        nl.mark_output(buf, "buf");
        nl.mark_output(mux, "mux");
        nl.mark_output(c0, "c0");
        nl.mark_output(c1, "c1");
        check_equiv(&nl);
    }

    #[test]
    fn mux4_equivalence() {
        let mut nl = Netlist::new("m4");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(format!("i{i}"))).collect();
        let y = nl.add_gate(GateKind::Mux4, &ins).unwrap();
        nl.mark_output(y, "y");
        check_equiv(&nl);
    }

    #[test]
    fn sequential_view_exposes_ff_boundary_vars() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let d = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let q = nl.add_dff(d).unwrap();
        let y = nl.add_gate(GateKind::And, &[q, a]).unwrap();
        nl.mark_output(y, "y");
        check_equiv(&nl);
        let view = CombView::new(&nl);
        let enc = encode_comb(&nl, &view);
        assert_eq!(enc.input_vars.len(), 2, "PI + pseudo-PI");
        assert_eq!(enc.output_vars.len(), 2, "PO + pseudo-PO");
        assert!(enc.var_of(q).is_some());
    }

    #[test]
    fn var_of_unencoded_net_is_none() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.mark_output(y, "y");
        let view = CombView::new(&nl);
        let enc = encode_comb(&nl, &view);
        assert!(enc
            .var_of(NetId::from_index(999).min(NetId::from_index(1)))
            .is_some());
        // A fabricated out-of-range id yields None rather than panicking.
        assert!(enc.var_of(NetId::from_index(10_000)).is_none());
    }
}
