//! Variables, literals, and clause databases.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `var·2 + sign`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with an explicit sign (`true` = negated).
    pub fn with_sign(v: Var, negated: bool) -> Lit {
        Lit((v.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True when the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code (used to index watcher lists).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Evaluates the literal under an assignment of its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value ^ self.is_neg()
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

/// A plain clause database, independent of any solver: useful for building
/// formulas, moving them between solvers, and brute-force checking in tests.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn grow_to(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (empty clauses are legal and make the formula
    /// unsatisfiable).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(l.var().0 < self.num_vars, "literal {l} out of range");
        }
        self.clauses.push(lits.to_vec());
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars as usize);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
    }

    /// Exhaustively searches for a satisfying assignment (test helper; only
    /// usable for small variable counts).
    ///
    /// # Panics
    ///
    /// Panics when the formula has more than 24 variables.
    pub fn brute_force(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 24, "brute force is for small formulas");
        let n = self.num_vars as usize;
        for bits in 0u64..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::with_sign(v, true), n);
    }

    #[test]
    fn literal_eval() {
        let v = Var(0);
        assert!(Lit::pos(v).eval(true));
        assert!(!Lit::pos(v).eval(false));
        assert!(Lit::neg(v).eval(false));
        assert!(!Lit::neg(v).eval(true));
    }

    #[test]
    fn cnf_eval_and_brute_force() {
        let mut f = Cnf::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        f.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        // XOR-ish: exactly one of a, b.
        assert!(f.eval(&[true, false]));
        assert!(!f.eval(&[true, true]));
        let m = f.brute_force().unwrap();
        assert!(f.eval(&m));
        f.add_clause(&[Lit::pos(a)]);
        f.add_clause(&[Lit::pos(b)]);
        assert!(f.brute_force().is_none());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut f = Cnf::new();
        let _ = f.new_var();
        f.add_clause(&[]);
        assert!(f.brute_force().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lit::pos(Var(3)).to_string(), "v3");
        assert_eq!(Lit::neg(Var(3)).to_string(), "!v3");
        assert_eq!(Var(3).to_string(), "v3");
    }
}
