//! Indexed max-heap over variable activities (the VSIDS order).

use crate::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting O(log n) increase-key via stored positions.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActivityHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl ActivityHeap {
    #[cfg(test)]
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    pub fn grow_to(&mut self, n_vars: usize) {
        if self.pos.len() < n_vars {
            self.pos.resize(n_vars, usize::MAX);
        }
    }

    pub fn contains(&self, v: Var) -> bool {
        self.pos
            .get(v.index())
            .map(|&p| p != usize::MAX)
            .unwrap_or(false)
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow_to(v.index() + 1);
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn decrease_key_of_increased_activity(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != usize::MAX {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] > activity[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for i in 0..4 {
            h.insert(Var(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(h.is_empty());
    }

    #[test]
    fn reinsertion_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(Var(0), &activity);
        h.insert(Var(0), &activity);
        h.insert(Var(1), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(1)));
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn increase_key_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        h.decrease_key_of_increased_activity(Var(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
    }
}
