//! A CDCL SAT solver and netlist-to-CNF encoder for `glitchlock`.
//!
//! The SAT attack (Subramanyan et al., HOST'15) that the paper defends
//! against needs a real Boolean satisfiability solver. The offline crate
//! set has none, so this crate implements one from scratch:
//!
//! * [`Solver`] — conflict-driven clause learning with two-watched-literal
//!   propagation, first-UIP conflict analysis, VSIDS branching with phase
//!   saving, Luby restarts, and activity-based learned-clause reduction.
//!   Supports incremental clause addition between solves and solving under
//!   assumptions — both used by the attack's DIP loop.
//! * [`Cnf`]/[`Lit`]/[`Var`] — clause database types.
//! * [`tseitin`] — the Tseitin transformation from a gate-level netlist's
//!   combinational view to CNF, one variable per net.
//!
//! # Example
//!
//! ```rust
//! use glitchlock_sat::{Solver, Lit, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! // Incremental: adding the blocking clause flips the result.
//! s.add_clause(&[Lit::neg(b)]);
//! assert_eq!(s.solve(), SatResult::Unsat);
//! ```

#![deny(missing_docs)]

mod cnf;
pub mod dimacs;
pub mod equiv;
mod heap;
mod solver;
pub mod tseitin;

pub use cnf::{Cnf, Lit, Var};
pub use solver::{SatResult, Solver, SolverStats};
pub use tseitin::{encode_comb, encode_comb_into, CnfSink, EncodedPorts, Encoding};
