//! A CDCL SAT solver and netlist-to-CNF encoder for `glitchlock`.
//!
//! The SAT attack (Subramanyan et al., HOST'15) that the paper defends
//! against needs a real Boolean satisfiability solver. The offline crate
//! set has none, so this crate implements one from scratch:
//!
//! * [`Solver`] — conflict-driven clause learning with two-watched-literal
//!   propagation, first-UIP conflict analysis, and VSIDS branching with
//!   phase saving. Two strategy profiles are selectable via
//!   [`SolverBackend`]: `legacy` (Luby restarts, activity-based clause
//!   reduction) and `modern` (glucose-style LBD clause management, EMA
//!   restarts with trail-depth blocking, best-phase rephasing). Supports
//!   incremental clause addition between solves and solving under
//!   assumptions with unsat-core extraction
//!   ([`Solver::failed_assumptions`]) — all used by the attack's DIP loop.
//!   The incremental surface is abstracted by [`IncrementalSolver`].
//! * [`Cnf`]/[`Lit`]/[`Var`] — clause database types.
//! * [`tseitin`] — the Tseitin transformation from a gate-level netlist's
//!   combinational view to CNF, one variable per net.
//! * [`encoder`] — encoder selection ([`EncoderKind`]): the flat per-net
//!   Tseitin above, or a strash-deduplicated And-Inverter-Graph encoding
//!   (one 3-clause gate per AND node, the `--encoder aig` default).
//!
//! # Example
//!
//! ```rust
//! use glitchlock_sat::{Solver, Lit, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! // Incremental: adding the blocking clause flips the result.
//! s.add_clause(&[Lit::neg(b)]);
//! assert_eq!(s.solve(), SatResult::Unsat);
//! ```

#![deny(missing_docs)]

mod backend;
mod clause;
mod cnf;
pub mod dimacs;
pub mod encoder;
pub mod equiv;
mod heap;
mod reduce;
mod restart;
mod solver;
pub mod tseitin;

pub use backend::{IncrementalSolver, SolverBackend};
pub use cnf::{Cnf, Lit, Var};
pub use encoder::{encode_aig_into, encode_comb_with, AigPorts, EncodedIo, EncoderKind};
pub use solver::{SatResult, Solver, SolverStats};
pub use tseitin::{encode_comb, encode_comb_into, CnfSink, EncodedPorts, Encoding};
