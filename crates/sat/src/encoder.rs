//! Encoder selection: flat Tseitin over the netlist vs AIG-based encoding.
//!
//! The flat encoder ([`crate::encode_comb_into`]) walks the netlist
//! directly, one variable per net and per-gate clause shapes. The AIG
//! encoder first lowers the combinational view into a strashed
//! And-Inverter Graph ([`Aig`]) and then emits exactly one 3-clause gate
//! per AND node — inverters are free (complemented edges), structurally
//! identical logic is emitted once, and cones that a miter does not need
//! can be dropped before any clause exists. On the SAT-attack miter
//! workload this cuts variables and clauses substantially (see
//! `BENCH_sat.json`'s encoder rows), which is why [`EncoderKind::Aig`] is
//! the default.

use crate::tseitin::{encode_comb_into, CnfSink};
use crate::{Lit, Var};
use glitchlock_netlist::{Aig, AigNode, CombView, Netlist};

/// Which netlist→CNF encoding strategy an attack or equivalence check
/// uses. Selected by `--encoder` and the campaign-spec `encoder`
/// directive (fingerprinted, like `solver`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EncoderKind {
    /// Direct Tseitin over the gate-level netlist, one variable per net.
    Flat,
    /// Strash-deduplicated And-Inverter Graph, 3 clauses per AND node.
    #[default]
    Aig,
}

impl EncoderKind {
    /// Parses an encoder name as used by `--encoder` and campaign specs.
    pub fn parse(s: &str) -> Option<EncoderKind> {
        match s {
            "flat" => Some(EncoderKind::Flat),
            "aig" => Some(EncoderKind::Aig),
            _ => None,
        }
    }

    /// Canonical name, the inverse of [`EncoderKind::parse`].
    pub fn tag(self) -> &'static str {
        match self {
            EncoderKind::Flat => "flat",
            EncoderKind::Aig => "aig",
        }
    }
}

impl std::fmt::Display for EncoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Variable bindings of one AIG encoding: one variable per AIG input (in
/// input-ordinal order) plus the output *literals* — an output may be a
/// complemented edge or a constant, so it is a [`Lit`] over an internal
/// variable rather than always a fresh [`Var`].
#[derive(Clone, Debug)]
pub struct AigPorts {
    /// Variable of each AIG input, by input ordinal.
    pub input_vars: Vec<Var>,
    /// Literal of each marked output, in output order.
    pub output_lits: Vec<Lit>,
}

impl AigPorts {
    /// Materializes every output as a plain variable, buffering
    /// complemented or constant outputs with a fresh equality-constrained
    /// variable (2 clauses each). Uncomplemented node outputs reuse their
    /// node variable directly.
    pub fn output_vars<S: CnfSink>(&self, sink: &mut S) -> Vec<Var> {
        self.output_lits
            .iter()
            .map(|&l| {
                if !l.is_neg() {
                    l.var()
                } else {
                    let y = sink.fresh_var();
                    sink.clause(&[Lit::neg(y), l]);
                    sink.clause(&[Lit::pos(y), !l]);
                    y
                }
            })
            .collect()
    }
}

/// Encodes a strashed AIG into any [`CnfSink`]: one variable per input
/// (or the pinned variable, the miter's data-sharing mechanism), one
/// variable and three clauses per AND node, one always-false variable for
/// the constant node. Returns the port bindings.
pub fn encode_aig_into<S: CnfSink>(sink: &mut S, aig: &Aig, pinned: &[Option<Var>]) -> AigPorts {
    let mut node_var: Vec<Var> = Vec::with_capacity(aig.len());
    for (i, node) in aig.nodes().iter().enumerate() {
        let v = match *node {
            AigNode::False => {
                let v = sink.fresh_var();
                sink.clause(&[Lit::neg(v)]);
                v
            }
            AigNode::Input(k) => pinned
                .get(k)
                .copied()
                .flatten()
                .unwrap_or_else(|| sink.fresh_var()),
            AigNode::And(a, b) => {
                let la = Lit::with_sign(node_var[a.node()], a.is_complemented());
                let lb = Lit::with_sign(node_var[b.node()], b.is_complemented());
                let y = sink.fresh_var();
                sink.clause(&[Lit::neg(y), la]);
                sink.clause(&[Lit::neg(y), lb]);
                sink.clause(&[Lit::pos(y), !la, !lb]);
                y
            }
        };
        debug_assert_eq!(i, node_var.len());
        node_var.push(v);
    }
    let mut input_vars = vec![node_var[0]; aig.num_inputs()];
    for (i, node) in aig.nodes().iter().enumerate() {
        if let AigNode::Input(k) = *node {
            input_vars[k] = node_var[i];
        }
    }
    let output_lits = aig
        .outputs()
        .iter()
        .map(|&o| Lit::with_sign(node_var[o.node()], o.is_complemented()))
        .collect();
    AigPorts {
        input_vars,
        output_lits,
    }
}

/// Port variables of one combinational-view encoding, independent of the
/// encoder that produced it.
#[derive(Clone, Debug)]
pub struct EncodedIo {
    /// Variables of the view's inputs, in view order.
    pub input_vars: Vec<Var>,
    /// Variables of the view's outputs, in view order.
    pub output_vars: Vec<Var>,
}

/// Encodes a fresh copy of the combinational view through the selected
/// encoder. `pinned` pre-assigns variables for a prefix of the view
/// inputs, exactly as in [`encode_comb_into`].
///
/// # Panics
///
/// Panics on a cyclic netlist.
pub fn encode_comb_with<S: CnfSink>(
    sink: &mut S,
    netlist: &Netlist,
    view: &CombView,
    pinned: &[Option<Var>],
    encoder: EncoderKind,
) -> EncodedIo {
    match encoder {
        EncoderKind::Flat => {
            let ports = encode_comb_into(sink, netlist, view, pinned);
            EncodedIo {
                input_vars: ports.input_vars,
                output_vars: ports.output_vars,
            }
        }
        EncoderKind::Aig => {
            let aig = Aig::from_comb(netlist, view);
            let ports = encode_aig_into(sink, &aig, pinned);
            let output_vars = ports.output_vars(sink);
            EncodedIo {
                input_vars: ports.input_vars,
                output_vars,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};
    use glitchlock_netlist::{GateKind, Logic};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let w1 = nl.add_gate(GateKind::Xnor, &[a, b]).unwrap();
        let w2 = nl.add_gate(GateKind::Mux2, &[w1, c, a]).unwrap();
        let w3 = nl.add_gate(GateKind::Nor, &[w1, w2, c]).unwrap();
        nl.mark_output(w2, "y0");
        nl.mark_output(w3, "y1");
        nl
    }

    #[test]
    fn parse_and_tag_round_trip() {
        for e in [EncoderKind::Flat, EncoderKind::Aig] {
            assert_eq!(EncoderKind::parse(e.tag()), Some(e));
            assert_eq!(format!("{e}"), e.tag());
        }
        assert_eq!(EncoderKind::parse("abc"), None);
        assert_eq!(EncoderKind::default(), EncoderKind::Aig);
    }

    #[test]
    fn both_encoders_agree_exhaustively() {
        let nl = sample();
        let view = CombView::new(&nl);
        let n = view.num_inputs();
        for encoder in [EncoderKind::Flat, EncoderKind::Aig] {
            for bits in 0u32..(1 << n) {
                let bools: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let logic: Vec<Logic> = bools.iter().map(|&b| Logic::from_bool(b)).collect();
                let expect = view.eval(&nl, &logic);
                let mut solver = Solver::new();
                let io = encode_comb_with(&mut solver, &nl, &view, &[], encoder);
                let assumptions: Vec<Lit> = io
                    .input_vars
                    .iter()
                    .zip(&bools)
                    .map(|(&v, &b)| Lit::with_sign(v, !b))
                    .collect();
                assert_eq!(solver.solve_with(&assumptions), SatResult::Sat, "{encoder}");
                for (i, &ov) in io.output_vars.iter().enumerate() {
                    assert_eq!(
                        solver.value(ov),
                        expect[i].to_bool(),
                        "{encoder} output {i} bits {bits:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn pinned_inputs_are_respected_by_the_aig_encoder() {
        let nl = sample();
        let view = CombView::new(&nl);
        let mut solver = Solver::new();
        let shared = solver.new_var();
        let io1 = encode_comb_with(&mut solver, &nl, &view, &[Some(shared)], EncoderKind::Aig);
        let io2 = encode_comb_with(&mut solver, &nl, &view, &[Some(shared)], EncoderKind::Aig);
        assert_eq!(io1.input_vars[0], shared);
        assert_eq!(io2.input_vars[0], shared);
        assert_ne!(io1.input_vars[1], io2.input_vars[1]);
    }

    #[test]
    fn constant_outputs_materialize_legally() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        aig.mark_output(glitchlock_netlist::AigLit::TRUE);
        aig.mark_output(glitchlock_netlist::AigLit::FALSE);
        aig.mark_output(a.complement());
        let mut solver = Solver::new();
        let ports = encode_aig_into(&mut solver, &aig, &[]);
        let outs = ports.output_vars(&mut solver);
        assert_eq!(solver.solve(), SatResult::Sat);
        assert_eq!(solver.value(outs[0]), Some(true));
        assert_eq!(solver.value(outs[1]), Some(false));
    }
}
