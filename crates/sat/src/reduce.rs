//! Learnt-clause database reduction.
//!
//! Both backends periodically delete a slice of the learnt clauses to
//! keep propagation fast; they differ in how they rank victims:
//!
//! * legacy — rank by clause activity alone and drop the lower half
//!   (the original behavior, fires only at decision level 0);
//! * modern — rank by LBD (worst first), tie-break on activity, and
//!   never touch glue clauses (LBD ≤ 2), clauses currently acting as a
//!   propagation reason, or clauses protected since their LBD improved
//!   in a recent conflict.
//!
//! Binary clauses are exempt in both: they are cheap to keep and
//! expensive to relearn.

use crate::clause::ClauseRef;
use crate::solver::{Assign, Solver};

impl Solver {
    /// Is this clause the reason of a currently-assigned literal? Deleting
    /// it would strand conflict analysis, so reduction must skip it. Uses
    /// the invariant that a reason clause keeps its implied literal in
    /// slot 0.
    pub(crate) fn clause_is_reason(&self, cref: ClauseRef) -> bool {
        let c = &self.clauses[cref as usize];
        let v = c.lits[0].var();
        self.assigns[v.index()] != Assign::Unassigned && self.reason[v.index()] == Some(cref)
    }

    fn delete_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        debug_assert!(c.learnt && !c.deleted);
        c.deleted = true;
        self.num_learnt -= 1;
        self.live_clauses -= 1;
    }

    /// Legacy reduction: drop the lower-activity half of the non-binary
    /// learnt clauses (reason clauses exempt).
    pub(crate) fn reduce_legacy(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len() as ClauseRef)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.clause_is_reason(i)
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let to_delete = learnt_refs.len() / 2;
        for &cref in &learnt_refs[..to_delete] {
            self.delete_clause(cref);
        }
        self.stats.reductions += 1;
    }

    /// Modern reduction: drop the worst half of the reducible learnt
    /// clauses, ranked by LBD (high first) then activity (low first).
    /// Glue, reason, and protected clauses always survive; protection
    /// lasts exactly one round. Safe at any decision level: stale
    /// watchers are dropped lazily and reason clauses are exempt.
    pub(crate) fn reduce_modern(&mut self) {
        let mut victims: Vec<ClauseRef> = (0..self.clauses.len() as ClauseRef)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt
                    && !c.deleted
                    && c.lits.len() > 2
                    && !c.is_glue()
                    && !c.protected
                    && !self.clause_is_reason(i)
            })
            .collect();
        victims.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = victims.len() / 2;
        for &cref in &victims[..to_delete] {
            self.delete_clause(cref);
        }
        // Protection is a one-round reprieve.
        for c in &mut self.clauses {
            c.protected = false;
        }
        self.stats.reductions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, SolverBackend, Var};

    /// Builds a solver with `n` free variables and returns them.
    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    /// Attaches a synthetic learnt clause with a given LBD.
    fn learnt(s: &mut Solver, lits: &[Lit], lbd: u32) -> ClauseRef {
        let cref = s.attach_clause(lits.to_vec(), true, lbd);
        s.clauses[cref as usize].activity = 1.0;
        cref
    }

    #[test]
    fn modern_reduction_never_drops_glue_protected_or_reason_clauses() {
        let mut s = Solver::with_backend(SolverBackend::Modern);
        let v = vars(&mut s, 12);
        let tern = |a: usize, b: usize, c: usize| [Lit::pos(v[a]), Lit::pos(v[b]), Lit::pos(v[c])];

        let glue = learnt(&mut s, &tern(0, 1, 2), 2);
        let shielded = learnt(&mut s, &tern(3, 4, 5), 9);
        s.clauses[shielded as usize].protected = true;
        // Plenty of plain high-LBD clauses so halving deletes some.
        let plain: Vec<ClauseRef> = (0..6)
            .map(|i| learnt(&mut s, &tern(6 + (i % 3), 9 + (i % 2), 11), 8 + i as u32))
            .collect();
        // Make one clause a reason: assign its slot-0 literal with it.
        let locked = plain[0];
        let implied = s.clauses[locked as usize].lits[0];
        s.enqueue(implied, Some(locked));

        let before = s.num_learnt;
        s.reduce_modern();
        assert!(s.num_learnt < before, "reduction must delete something");
        for (cref, what) in [(glue, "glue"), (shielded, "protected"), (locked, "reason")] {
            assert!(
                !s.clauses[cref as usize].deleted,
                "{what} clause was deleted"
            );
        }
        // Protection is consumed by the round.
        assert!(!s.clauses[shielded as usize].protected);
        assert_eq!(s.stats().reductions, 1);
    }

    #[test]
    fn modern_reduction_prefers_high_lbd_victims() {
        let mut s = Solver::with_backend(SolverBackend::Modern);
        let v = vars(&mut s, 9);
        let good = learnt(&mut s, &[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])], 3);
        let bad = learnt(
            &mut s,
            &[Lit::pos(v[3]), Lit::pos(v[4]), Lit::pos(v[5])],
            50,
        );
        let _mid = learnt(
            &mut s,
            &[Lit::pos(v[6]), Lit::pos(v[7]), Lit::pos(v[8])],
            10,
        );
        s.reduce_modern();
        assert!(s.clauses[bad as usize].deleted, "worst LBD goes first");
        assert!(!s.clauses[good as usize].deleted, "best LBD survives");
    }

    #[test]
    fn legacy_reduction_spares_reason_clauses() {
        let mut s = Solver::with_backend(SolverBackend::Legacy);
        let v = vars(&mut s, 9);
        let tern = |a: usize, b: usize, c: usize| [Lit::pos(v[a]), Lit::pos(v[b]), Lit::pos(v[c])];
        let crefs: Vec<ClauseRef> = (0..3)
            .map(|i| learnt(&mut s, &tern(3 * i, 3 * i + 1, 3 * i + 2), 0))
            .collect();
        // Zero activity on the reason clause so it would be first to go.
        s.clauses[crefs[0] as usize].activity = 0.0;
        let implied = s.clauses[crefs[0] as usize].lits[0];
        s.enqueue(implied, Some(crefs[0]));
        s.reduce_legacy();
        assert!(
            !s.clauses[crefs[0] as usize].deleted,
            "reason clause deleted"
        );
    }

    #[test]
    fn live_clause_count_tracks_reduction() {
        let mut s = Solver::with_backend(SolverBackend::Modern);
        let v = vars(&mut s, 6);
        for i in 0..2 {
            learnt(
                &mut s,
                &[
                    Lit::pos(v[3 * i]),
                    Lit::pos(v[3 * i + 1]),
                    Lit::pos(v[3 * i + 2]),
                ],
                40,
            );
        }
        assert_eq!(s.num_clauses(), 2);
        s.reduce_modern();
        assert_eq!(s.num_clauses(), 1);
    }
}
