//! The CDCL solver.
//!
//! One engine, two strategy profiles (see [`SolverBackend`]): the legacy
//! profile keeps the original Luby-restart/activity-reduction behavior;
//! the modern profile layers on glucose-style LBD clause management,
//! EMA-driven restarts with trail-depth blocking, and best-phase
//! rephasing. The split modules hold the moving parts: `clause` (storage),
//! `restart` (schedules), `reduce` (DB reduction), `heap` (VSIDS order).

use crate::backend::{IncrementalSolver, SolverBackend};
use crate::clause::{Clause, ClauseRef, Watcher, GLUE_LBD};
use crate::heap::ActivityHeap;
use crate::restart::{RestartMode, RestartState};
use crate::{Cnf, Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A model was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
}

/// Search statistics, useful in benchmarks and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clause-database reductions performed.
    pub reductions: u64,
    /// Sum of learnt-clause LBDs over all conflicts; divide by
    /// `conflicts` for the mean LBD (see [`SolverStats::mean_lbd_milli`]).
    pub lbd_sum: u64,
    /// Learned clauses currently kept.
    pub learnt: usize,
}

impl SolverStats {
    /// Mean learnt-clause LBD in thousandths (integer, so reports stay
    /// deterministic); 0 before the first conflict.
    pub fn mean_lbd_milli(&self) -> u64 {
        (self.lbd_sum * 1000)
            .checked_div(self.conflicts)
            .unwrap_or(0)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Assign {
    True,
    False,
    Unassigned,
}

impl Assign {
    fn from_bool(b: bool) -> Assign {
        if b {
            Assign::True
        } else {
            Assign::False
        }
    }
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
/// Modern backend: first reduction after this many conflicts…
const REDUCE_BASE: u64 = 2000;
/// …and each later one after `REDUCE_STEP × reductions` more.
const REDUCE_STEP: u64 = 300;
/// Modern backend: copy the best phase over saved phases this often.
const REPHASE_INTERVAL: u64 = 10_000;

/// A conflict-driven clause-learning SAT solver.
///
/// Supports incremental use: clauses may be added between `solve` calls and
/// [`Solver::solve_with`] solves under temporary assumptions. See the crate
/// docs for an example. The full incremental surface is also available
/// through the [`IncrementalSolver`] trait.
#[derive(Clone, Debug)]
pub struct Solver {
    pub(crate) clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    pub(crate) assigns: Vec<Assign>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: ActivityHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    seen: Vec<bool>,
    /// False once an empty clause has been derived at level 0.
    ok: bool,
    /// Model snapshot taken before backtracking out of a SAT answer.
    saved_model: Vec<Assign>,
    pub(crate) stats: SolverStats,
    pub(crate) num_learnt: usize,
    max_learnt: f64,
    backend: SolverBackend,
    restart: RestartState,
    /// Assumption unsat core from the last Unsat answer (empty when the
    /// formula alone is unsatisfiable).
    failed: Vec<Lit>,
    /// Phases of the deepest trail seen since the last rephase (modern).
    best_phase: Vec<bool>,
    best_trail: usize,
    /// Conflict counts that trigger the next reduction / rephase (modern).
    reduce_limit: u64,
    rephase_limit: u64,
    /// Live (non-deleted) clause count, kept O(1) for telemetry.
    pub(crate) live_clauses: usize,
    /// Stamp array indexed by decision level, for O(len) LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver running the default ([`SolverBackend::Modern`])
    /// strategy profile.
    pub fn new() -> Self {
        Solver::with_backend(SolverBackend::default())
    }

    /// An empty solver running the given strategy profile.
    pub fn with_backend(backend: SolverBackend) -> Self {
        let mode = match backend {
            SolverBackend::Legacy => RestartMode::Luby,
            SolverBackend::Modern => RestartMode::Glucose,
        };
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: ActivityHeap::default(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            seen: Vec::new(),
            ok: true,
            saved_model: Vec::new(),
            stats: SolverStats::default(),
            num_learnt: 0,
            max_learnt: 3000.0,
            backend,
            restart: RestartState::new(mode),
            failed: Vec::new(),
            best_phase: Vec::new(),
            best_trail: 0,
            reduce_limit: REDUCE_BASE,
            rephase_limit: REPHASE_INTERVAL,
            live_clauses: 0,
            lbd_stamp: vec![0],
            lbd_gen: 0,
        }
    }

    /// Builds a solver pre-loaded with a formula (default backend).
    pub fn from_cnf(cnf: &Cnf) -> Self {
        Solver::from_cnf_with(cnf, SolverBackend::default())
    }

    /// Builds a solver pre-loaded with a formula on a chosen backend.
    pub fn from_cnf_with(cnf: &Cnf, backend: SolverBackend) -> Self {
        let mut s = Solver::with_backend(backend);
        while s.num_vars() < cnf.num_vars() {
            s.new_var();
        }
        for c in cnf.clauses() {
            s.add_clause(c);
        }
        s
    }

    /// The strategy profile this solver runs.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Unassigned);
        self.polarity.push(false);
        self.best_phase.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        // Decision levels never exceed the variable count.
        self.lbd_stamp.push(0);
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Number of live (non-deleted) clauses, learnt ones included. Attack
    /// telemetry reads this to report CNF growth per iteration.
    pub fn num_clauses(&self) -> usize {
        self.live_clauses
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            learnt: self.num_learnt,
            ..self.stats
        }
    }

    /// After an [`SatResult::Unsat`] answer from [`Solver::solve_with`]:
    /// the subset of the assumptions proven jointly inconsistent with the
    /// formula. Empty when the formula alone is unsatisfiable (and after
    /// any Sat answer), so emptiness distinguishes formula-UNSAT from
    /// assumption-UNSAT.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    fn lit_value(&self, l: Lit) -> Assign {
        Self::lit_value_in(&self.assigns, l)
    }

    fn lit_value_in(assigns: &[Assign], l: Lit) -> Assign {
        match assigns[l.var().index()] {
            Assign::Unassigned => Assign::Unassigned,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    /// Adds a clause. Returns `false` if the solver is now known
    /// unsatisfiable at level 0 (it stays usable and will keep reporting
    /// [`SatResult::Unsat`]).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable or if called
    /// mid-search (clauses may only be added between `solve` calls).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses may only be added at decision level 0"
        );
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().0 < self.num_vars(), "literal {l} out of range");
        }
        // Normalize: drop duplicate and false literals, detect tautologies
        // and satisfied clauses.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for (i, &l) in sorted.iter().enumerate() {
            if i > 0 && sorted[i - 1] == !l {
                return true; // tautology: p and !p adjacent after sort
            }
            match self.lit_value(l) {
                Assign::True => return true, // already satisfied at level 0
                Assign::False => {}          // drop the false literal
                Assign::Unassigned => c.push(l),
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(c, false, 0);
                true
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.num_learnt += 1;
        }
        self.live_clauses += 1;
        self.clauses.push(Clause::new(lits, learnt, lbd));
        cref
    }

    pub(crate) fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), Assign::Unassigned);
        let v = l.var();
        self.assigns[v.index()] = Assign::from_bool(!l.is_neg());
        self.polarity[v.index()] = !l.is_neg();
        self.reason[v.index()] = reason;
        self.level[v.index()] = self.decision_level();
        self.trail.push(l);
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            // take the watcher list to appease the borrow checker; put it
            // back (with moved-out entries removed) afterwards.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == Assign::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let (first, moved_to) = {
                    let assigns = &self.assigns;
                    let cl = &mut self.clauses[w.cref as usize];
                    if cl.deleted {
                        continue; // lazily drop watchers of deleted clauses
                    }
                    // Ensure the false literal (!p) is in slot 1.
                    if cl.lits[0] == !p {
                        cl.lits.swap(0, 1);
                    }
                    debug_assert_eq!(cl.lits[1], !p);
                    let first = cl.lits[0];
                    if first != w.blocker && Self::lit_value_in(assigns, first) == Assign::True {
                        ws[j] = Watcher {
                            cref: w.cref,
                            blocker: first,
                        };
                        j += 1;
                        continue;
                    }
                    // Look for a new literal to watch.
                    let mut moved_to = None;
                    for k in 2..cl.lits.len() {
                        if Self::lit_value_in(assigns, cl.lits[k]) != Assign::False {
                            cl.lits.swap(1, k);
                            moved_to = Some(cl.lits[1]);
                            break;
                        }
                    }
                    (first, moved_to)
                };
                if let Some(new_watch) = moved_to {
                    self.watches[(!new_watch).code()].push(Watcher {
                        cref: w.cref,
                        blocker: first,
                    });
                    continue 'watchers;
                }
                // Clause is unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == Assign::False {
                    // Conflict: keep remaining watchers and bail out.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                } else {
                    self.enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order
            .decrease_key_of_increased_activity(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc as f32;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal-block distance of a set of assigned literals: the number
    /// of distinct non-zero decision levels among them. O(len) via a
    /// per-level stamp array.
    pub(crate) fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen += 1;
        let gen = self.lbd_gen;
        let mut distinct = 0u32;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl == 0 {
                continue;
            }
            if self.lbd_stamp[lvl] != gen {
                self.lbd_stamp[lvl] = gen;
                distinct += 1;
            }
        }
        distinct
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, max-level literal second), the backtrack level, and
    /// the learnt clause's LBD.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            let lits = self.clauses[confl as usize].lits.clone();
            if self.clauses[confl as usize].learnt {
                self.bump_clause(confl);
                if self.backend == SolverBackend::Modern {
                    // Dynamic LBD: a clause re-used in conflict analysis
                    // whose LBD improved is doing well — refresh the score
                    // and shield it from the next reduction.
                    let fresh = self.lbd_of(&lits);
                    let c = &mut self.clauses[confl as usize];
                    if c.lbd != 0 && fresh < c.lbd {
                        c.lbd = fresh.max(1);
                        if c.lbd > GLUE_LBD {
                            c.protected = true;
                        }
                    }
                }
            }
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var().index()]
                .expect("non-decision literal on conflict side must have a reason");
            // Invariant: a reason clause always has its implied literal in
            // slot 0 (propagate enqueues lits[0], and the watch code never
            // moves the slot-0 literal of a clause that is acting as a
            // reason), so `start = 1` below skips it.
            debug_assert_eq!(self.clauses[confl as usize].lits[0], pl);
        }
        // Clear seen flags for the learnt clause.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let lbd = self.lbd_of(&learnt);
        // Backtrack level: the highest level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Move the max-level literal to slot 1 (second watch).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt, lbd)
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): the assumption
    /// `p` came up false during assumption extension; walk the
    /// implication trail backwards to collect the subset of assumption
    /// decisions that forced it. Returns the core, `p` included.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.level[p.var().index()] == 0 || self.trail_lim.is_empty() {
            // `!p` holds at level 0: the formula alone refutes `p`.
            return core;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if !self.seen[v.index()] {
                continue;
            }
            self.seen[v.index()] = false;
            match self.reason[v.index()] {
                // During assumption extension every decision on the trail
                // is itself an assumption: it belongs in the core.
                None => core.push(self.trail[i]),
                Some(cref) => {
                    let lits = self.clauses[cref as usize].lits.clone();
                    // lits[0] is the implied literal (`trail[i]` itself).
                    for &q in &lits[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
        }
        core
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = Assign::Unassigned;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()] == Assign::Unassigned {
                return Some(v);
            }
        }
        None
    }

    /// Records the phases of the deepest trail seen since the last
    /// rephase; periodic rephasing restores them wholesale.
    fn snapshot_best_phase(&mut self) {
        if self.trail.len() > self.best_trail {
            self.best_trail = self.trail.len();
            for &l in &self.trail {
                self.best_phase[l.var().index()] = !l.is_neg();
            }
        }
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under temporary assumptions: the formula plus the unit
    /// assumptions. The assumptions do not persist after the call. On an
    /// Unsat answer, [`Solver::failed_assumptions`] holds the assumption
    /// core.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        self.failed.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        let result = self.search(assumptions);
        if result == SatResult::Sat {
            self.saved_model = self.assigns.clone();
        } else {
            self.saved_model.clear();
        }
        self.cancel_until(0);
        result
    }

    fn search(&mut self, assumptions: &[Lit]) -> SatResult {
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if self.backend == SolverBackend::Modern {
                    self.snapshot_best_phase();
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.stats.lbd_sum += u64::from(lbd);
                self.restart.on_conflict(lbd, self.trail.len());
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == Assign::False {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == Assign::Unassigned {
                        self.enqueue(learnt[0], None);
                    }
                } else {
                    let cref = self.attach_clause(learnt, true, lbd.max(1));
                    let first = self.clauses[cref as usize].lits[0];
                    self.bump_clause(cref);
                    self.enqueue(first, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                match self.backend {
                    SolverBackend::Legacy => {
                        if self.num_learnt as f64 > self.max_learnt && self.decision_level() == 0 {
                            self.reduce_legacy();
                            self.max_learnt *= 1.3;
                        }
                    }
                    SolverBackend::Modern => {
                        if self.stats.conflicts >= self.reduce_limit {
                            self.reduce_modern();
                            self.reduce_limit = self.stats.conflicts
                                + REDUCE_BASE
                                + REDUCE_STEP * self.stats.reductions;
                        }
                    }
                }
            } else {
                if self.restart.should_restart() {
                    self.stats.restarts += 1;
                    self.restart.on_restart();
                    self.cancel_until(0);
                    match self.backend {
                        SolverBackend::Legacy => {
                            if self.num_learnt as f64 > self.max_learnt {
                                self.reduce_legacy();
                                self.max_learnt *= 1.3;
                            }
                        }
                        SolverBackend::Modern => {
                            if self.stats.conflicts >= self.rephase_limit {
                                self.polarity.copy_from_slice(&self.best_phase);
                                self.best_trail = 0;
                                self.rephase_limit = self.stats.conflicts + REPHASE_INTERVAL;
                            }
                        }
                    }
                    continue;
                }
                // Extend with assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        Assign::True => {
                            // Already satisfied: open an empty level so the
                            // index keeps advancing.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        Assign::False => {
                            self.failed = self.analyze_final(p);
                            return SatResult::Unsat;
                        }
                        Assign::Unassigned => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                            continue;
                        }
                    }
                }
                // Branch.
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.enqueue(Lit::with_sign(v, !phase), None);
                    }
                }
            }
        }
    }

    /// The model value of a variable after a [`SatResult::Sat`] answer;
    /// `None` when unassigned (a don't-care in the found model) or after an
    /// Unsat answer.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.saved_model.get(v.index()) {
            Some(Assign::True) => Some(true),
            Some(Assign::False) => Some(false),
            _ => None,
        }
    }

    /// Snapshot of the full model (unassigned variables default to false).
    pub fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|i| self.value(Var(i)) == Some(true))
            .collect()
    }
}

impl IncrementalSolver for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits)
    }

    fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        Solver::solve_with(self, assumptions)
    }

    fn value(&self, v: Var) -> Option<bool> {
        Solver::value(self, v)
    }

    fn failed_assumptions(&self) -> &[Lit] {
        Solver::failed_assumptions(self)
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [SolverBackend; 2] = [SolverBackend::Legacy, SolverBackend::Modern];

    fn lit(v: Var, pos: bool) -> Lit {
        Lit::with_sign(v, !pos)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        for backend in BOTH {
            let mut s = Solver::with_backend(backend);
            let a = s.new_var();
            assert!(s.add_clause(&[Lit::pos(a)]));
            assert_eq!(s.solve(), SatResult::Sat);
            assert_eq!(s.value(a), Some(true));
            assert!(!s.add_clause(&[Lit::neg(a)]));
            assert_eq!(s.solve(), SatResult::Unsat);
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
        // v0, v0->v1, v1->v2, v2->v3, v3->v4
        s.add_clause(&[Lit::pos(vs[0])]);
        for w in vs.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for &v in &vs {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        for backend in BOTH {
            let mut s = Solver::with_backend(backend);
            let p: Vec<Vec<Var>> = (0..3)
                .map(|_| (0..2).map(|_| s.new_var()).collect())
                .collect();
            for row in &p {
                s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
            }
            #[allow(clippy::needless_range_loop)]
            for j in 0..2 {
                for i1 in 0..3 {
                    for i2 in (i1 + 1)..3 {
                        s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                    }
                }
            }
            assert_eq!(s.solve(), SatResult::Unsat);
            assert!(s.stats().conflicts > 0);
        }
    }

    #[test]
    fn solve_with_assumptions_is_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve_with(&[Lit::neg(a), Lit::neg(b)]), SatResult::Unsat);
        // The core names the assumptions, proving the formula itself is
        // still satisfiable.
        assert!(!s.failed_assumptions().is_empty());
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.failed_assumptions().is_empty());
        assert_eq!(s.solve_with(&[Lit::neg(a)]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let _ = s.new_var();
        assert_eq!(s.solve_with(&[Lit::pos(a), Lit::neg(a)]), SatResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&Lit::pos(a)) && core.contains(&Lit::neg(a)));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn failed_assumptions_distinguish_root_unsat() {
        for backend in BOTH {
            let mut s = Solver::with_backend(backend);
            let a = s.new_var();
            let b = s.new_var();
            // Formula: a, !a — unsatisfiable on its own.
            s.add_clause(&[Lit::pos(a)]);
            s.add_clause(&[Lit::neg(a)]);
            assert_eq!(s.solve_with(&[Lit::pos(b)]), SatResult::Unsat);
            assert!(
                s.failed_assumptions().is_empty(),
                "{backend}: root UNSAT must yield an empty core"
            );
        }
    }

    #[test]
    fn failed_assumptions_core_is_minimal_enough_to_refute() {
        // Chain a -> b -> c plus clause (!c | !d): assuming a and d fails,
        // assuming the unrelated e must stay out of the core.
        for backend in BOTH {
            let mut s = Solver::with_backend(backend);
            let v: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
            let (a, b, c, d, e) = (v[0], v[1], v[2], v[3], v[4]);
            s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(b), Lit::pos(c)]);
            s.add_clause(&[Lit::neg(c), Lit::neg(d)]);
            let assumptions = [Lit::pos(e), Lit::pos(a), Lit::pos(d)];
            assert_eq!(s.solve_with(&assumptions), SatResult::Unsat);
            let core = s.failed_assumptions().to_vec();
            assert!(!core.is_empty(), "{backend}");
            for l in &core {
                assert!(assumptions.contains(l), "{backend}: {l} not an assumption");
            }
            assert!(
                !core.contains(&Lit::pos(e)),
                "{backend}: irrelevant assumption in core {core:?}"
            );
            // The core alone refutes the formula.
            let core_units = core.clone();
            assert_eq!(s.solve_with(&core_units), SatResult::Unsat);
            // And solving without assumptions still works.
            assert_eq!(s.solve(), SatResult::Sat);
        }
    }

    #[test]
    fn xor_chain_parity() {
        // x1 ^ x2 ^ x3 = 1 encoded directly; satisfiable.
        let mut s = Solver::new();
        let x: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let clauses: [(bool, bool, bool); 4] = [
            (true, true, true),
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ];
        for (a, b, c) in clauses {
            s.add_clause(&[lit(x[0], a), lit(x[1], b), lit(x[2], c)]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        let parity = s.value(x[0]).unwrap() as u8
            ^ s.value(x[1]).unwrap() as u8
            ^ s.value(x[2]).unwrap() as u8;
        assert_eq!(parity, 1);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[Lit::pos(a), Lit::neg(a)])); // tautology
        assert!(s.add_clause(&[Lit::pos(b), Lit::pos(b), Lit::pos(b)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn from_cnf_matches_brute_force_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for round in 0..200 {
            let n_vars = rng.gen_range(3..10u32);
            let n_clauses = rng.gen_range(2..40usize);
            let mut f = Cnf::new();
            for _ in 0..n_vars {
                f.new_var();
            }
            for _ in 0..n_clauses {
                let width = rng.gen_range(1..4usize);
                let lits: Vec<Lit> = (0..width)
                    .map(|_| Lit::with_sign(Var(rng.gen_range(0..n_vars)), rng.gen()))
                    .collect();
                f.add_clause(&lits);
            }
            let expect_sat = f.brute_force().is_some();
            for backend in BOTH {
                let mut s = Solver::from_cnf_with(&f, backend);
                let got = s.solve();
                assert_eq!(
                    got == SatResult::Sat,
                    expect_sat,
                    "{backend} diverges from brute force in round {round}"
                );
                if got == SatResult::Sat {
                    let model = s.model();
                    assert!(
                        f.eval(&model),
                        "{backend}: model must satisfy the formula (round {round})"
                    );
                }
            }
        }
    }

    #[test]
    fn lbd_counts_distinct_decision_levels() {
        let mut s = Solver::new();
        let v: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
        // Fake an assignment landscape: levels 0, 1, 1, 2, 3.
        for (i, lvl) in [0u32, 1, 1, 2, 3].iter().enumerate() {
            s.level[i] = *lvl;
        }
        let all: Vec<Lit> = v.iter().map(|&x| Lit::pos(x)).collect();
        // Level 0 does not count; levels {1, 2, 3} are distinct.
        assert_eq!(s.lbd_of(&all), 3);
        assert_eq!(s.lbd_of(&all[..3]), 1, "two lits on one level");
        assert_eq!(s.lbd_of(&[all[0]]), 0, "level-0 only");
        // Stamps do not leak between calls.
        assert_eq!(s.lbd_of(&all), 3);
    }

    #[test]
    fn phase_saving_repeats_the_last_model() {
        // After a Sat answer the saved polarities equal the model, so a
        // re-solve re-decides the same phases (across restarts too).
        for backend in BOTH {
            let mut s = Solver::with_backend(backend);
            let v: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
            for w in v.windows(2) {
                s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
            }
            s.add_clause(&[Lit::pos(v[0])]);
            assert_eq!(s.solve(), SatResult::Sat);
            for &x in &v {
                assert_eq!(
                    s.polarity[x.index()],
                    s.value(x).unwrap(),
                    "{backend}: phase not saved for {x:?}"
                );
            }
            let first = s.model();
            assert_eq!(s.solve(), SatResult::Sat);
            assert_eq!(first, s.model(), "{backend}: phases drifted");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.solve();
        let st = s.stats();
        assert!(st.decisions >= 1);
    }

    #[test]
    fn mean_lbd_is_reported_in_milli_units() {
        let stats = SolverStats {
            conflicts: 4,
            lbd_sum: 10,
            ..SolverStats::default()
        };
        assert_eq!(stats.mean_lbd_milli(), 2500);
        assert_eq!(SolverStats::default().mean_lbd_milli(), 0);
    }

    #[test]
    fn trait_object_surface_works() {
        fn drive(s: &mut dyn IncrementalSolver) -> SatResult {
            let a = s.new_var();
            let b = s.new_var();
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            let r = s.solve_with(&[Lit::neg(a)]);
            assert_eq!(s.value(b), Some(true));
            assert!(s.stats().decisions + s.stats().propagations > 0);
            r
        }
        let mut s = Solver::with_backend(SolverBackend::Legacy);
        assert_eq!(drive(&mut s), SatResult::Sat);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Draws a random small CNF: `(n_vars, clauses)` with 2–7 variables and
    /// up to 23 clauses of 1–3 literals each.
    fn random_cnf(rng: &mut StdRng) -> (u32, Vec<Vec<(u32, bool)>>) {
        let n_vars = rng.gen_range(2u32..8);
        let n_clauses = rng.gen_range(1usize..24);
        let clauses = (0..n_clauses)
            .map(|_| {
                let len = rng.gen_range(1usize..4);
                (0..len)
                    .map(|_| (rng.gen_range(0..n_vars), rng.gen::<bool>()))
                    .collect()
            })
            .collect();
        (n_vars, clauses)
    }

    fn build_cnf(n_vars: u32, clauses: &[Vec<(u32, bool)>]) -> Cnf {
        let mut f = Cnf::new();
        for _ in 0..n_vars {
            f.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&(v, neg)| Lit::with_sign(Var(v), neg))
                .collect();
            f.add_clause(&lits);
        }
        f
    }

    /// Solving under assumptions agrees with brute force over the
    /// formula plus the assumption units, on both backends, and the
    /// failed-assumption core is itself refuting.
    #[test]
    fn assumptions_agree_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(0x5a7_a55);
        for case in 0..96 {
            let (n_vars, clauses) = random_cnf(&mut rng);
            let assume_bits: u8 = rng.gen::<u8>();
            let assume_mask: u8 = rng.gen::<u8>();
            let f = build_cnf(n_vars, &clauses);
            let assumptions: Vec<Lit> = (0..n_vars.min(8))
                .filter(|&i| assume_mask >> i & 1 == 1)
                .map(|i| Lit::with_sign(Var(i), assume_bits >> i & 1 == 0))
                .collect();
            // Brute force with assumption units appended.
            let mut g = f.clone();
            for &l in &assumptions {
                g.add_clause(&[l]);
            }
            let expect_sat = g.brute_force().is_some();
            for backend in [SolverBackend::Legacy, SolverBackend::Modern] {
                let mut s = Solver::from_cnf_with(&f, backend);
                let got = s.solve_with(&assumptions);
                assert_eq!(got == SatResult::Sat, expect_sat, "case {case} {backend}");
                if got == SatResult::Sat {
                    let model = s.model();
                    assert!(
                        g.eval(&model),
                        "case {case} {backend}: model must satisfy formula + assumptions"
                    );
                } else {
                    // The core is a subset of the assumptions and refutes
                    // the formula on its own; an empty core means the
                    // formula alone is unsatisfiable.
                    let core = s.failed_assumptions().to_vec();
                    for l in &core {
                        assert!(assumptions.contains(l), "case {case} {backend}: {l}");
                    }
                    if core.is_empty() {
                        assert!(f.brute_force().is_none(), "case {case} {backend}");
                    } else {
                        assert_eq!(
                            s.solve_with(&core),
                            SatResult::Unsat,
                            "case {case} {backend}: core does not refute"
                        );
                    }
                }
                // Assumptions must not persist: plain solve matches plain
                // brute force.
                let plain_sat = f.brute_force().is_some();
                assert_eq!(
                    s.solve() == SatResult::Sat,
                    plain_sat,
                    "case {case} {backend}"
                );
            }
        }
    }

    /// DIMACS round trip preserves models exactly.
    #[test]
    fn dimacs_round_trip_preserves_models() {
        let mut rng = StdRng::seed_from_u64(0xd1_ac5);
        for case in 0..96 {
            let (n_vars, clauses) = random_cnf(&mut rng);
            let f = build_cnf(n_vars, &clauses);
            let text = crate::dimacs::emit(&f);
            let g = crate::dimacs::parse(&text).unwrap();
            assert_eq!(f.num_clauses(), g.num_clauses(), "case {case}");
            for bits in 0u32..(1 << n_vars) {
                let m: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(f.eval(&m), g.eval(&m), "case {case} bits {bits:b}");
            }
        }
    }

    /// Clause-database reduction must not change answers: a formula hard
    /// enough to trigger reductions still solves correctly on both
    /// backends.
    #[test]
    fn clause_reduction_preserves_soundness() {
        // Pigeonhole 7 generates thousands of conflicts, well past both
        // backends' reduction thresholds.
        for backend in [SolverBackend::Legacy, SolverBackend::Modern] {
            let mut s = Solver::with_backend(backend);
            let holes = 7u32;
            let pigeons = 8u32;
            let var = |p: u32, h: u32| Var(p * holes + h);
            for _ in 0..pigeons * holes {
                s.new_var();
            }
            for p in 0..pigeons {
                let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
                s.add_clause(&clause);
            }
            for h in 0..holes {
                for p1 in 0..pigeons {
                    for p2 in (p1 + 1)..pigeons {
                        s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                    }
                }
            }
            assert_eq!(s.solve(), SatResult::Unsat, "{backend}");
            assert!(
                s.stats().reductions >= 1,
                "{backend}: reduction path not exercised ({} conflicts)",
                s.stats().conflicts
            );
        }
    }
}
