//! Static timing analysis for `glitchlock` (the PrimeTime substitute).
//!
//! Computes per-net earliest/latest arrival times with a forward pass over
//! the combinational logic, then checks every flip-flop's D pin against the
//! paper's Eq. (1) bounds:
//!
//! ```text
//! LB_j = T_j + T_hold(j)                 — earliest a new value may arrive
//! UB_j = T_clk + T_j - T_setup(j)        — latest the value must settle
//! ```
//!
//! where `T_j` is flip-flop `j`'s clock arrival (skew). Launch times are
//! `T_i + clk→q` for flip-flop sources and a configurable arrival for
//! primary inputs. The report carries per-flip-flop setup/hold slack, the
//! worst negative slack, and the critical path, which the GK insertion flow
//! uses both to pick feasible flip-flops (Eqs. (3)–(6)) and to avoid
//! critical-path flip-flops (paper Sec. IV-B).
//!
//! # Example
//!
//! ```rust
//! use glitchlock_netlist::{Netlist, GateKind};
//! use glitchlock_sta::{analyze, ClockModel};
//! use glitchlock_stdcell::{Library, Ps};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::cl013g_like();
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let g = nl.add_gate(GateKind::Inv, &[a])?;
//! let q = nl.add_dff(g)?;
//! nl.mark_output(q, "q");
//! let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
//! assert!(report.all_met());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use glitchlock_stdcell::{Library, Ps};
use std::collections::HashMap;

/// Clock description for static analysis: period, per-flip-flop skew, and
/// the arrival time of primary inputs relative to the launching edge.
#[derive(Clone, Debug)]
pub struct ClockModel {
    /// Clock period (`T_clk`).
    pub period: Ps,
    /// Per-flip-flop clock arrival offset (`T_i`).
    pub skew: HashMap<CellId, Ps>,
    /// Arrival time of primary inputs (0 = registered at the edge).
    pub input_arrival: Ps,
}

impl ClockModel {
    /// Zero-skew clock. Primary inputs are assumed launched by upstream
    /// registers, so they default to arriving one typical clk→q (200ps)
    /// after the edge rather than exactly on it (which would flag a
    /// spurious hold violation at every input-fed flip-flop).
    pub fn new(period: Ps) -> Self {
        ClockModel {
            period,
            skew: HashMap::new(),
            input_arrival: Ps(200),
        }
    }

    /// Adds skew for one flip-flop.
    pub fn with_skew(mut self, ff: CellId, skew: Ps) -> Self {
        self.skew.insert(ff, skew);
        self
    }

    /// Sets the primary-input arrival time.
    pub fn with_input_arrival(mut self, t: Ps) -> Self {
        self.input_arrival = t;
        self
    }

    /// Clock arrival offset of a flip-flop.
    pub fn skew_of(&self, ff: CellId) -> Ps {
        self.skew.get(&ff).copied().unwrap_or(Ps::ZERO)
    }
}

/// Timing check result at one flip-flop's D pin.
#[derive(Clone, Copy, Debug)]
pub struct FfCheck {
    /// The capturing flip-flop.
    pub ff: CellId,
    /// Latest data arrival at D (`T_arrival` in the paper's Eq. (3)).
    pub arrival_max: Ps,
    /// Earliest data arrival at D.
    pub arrival_min: Ps,
    /// Latest permitted arrival (`UB_j`).
    pub ub: Ps,
    /// Earliest permitted change (`LB_j`).
    pub lb: Ps,
    /// Setup slack in picoseconds (negative = violated): `UB - arrival_max`.
    pub slack_setup: i64,
    /// Hold slack in picoseconds (negative = violated): `arrival_min - LB`.
    pub slack_hold: i64,
}

impl FfCheck {
    /// True when both setup and hold are met.
    pub fn met(&self) -> bool {
        self.slack_setup >= 0 && self.slack_hold >= 0
    }
}

/// The full timing report.
#[derive(Clone, Debug)]
pub struct TimingReport {
    arrival_max: Vec<Ps>,
    arrival_min: Vec<Ps>,
    checks: Vec<FfCheck>,
    critical_path: Vec<CellId>,
    wns: i64,
}

impl TimingReport {
    /// Latest arrival time of a net.
    pub fn arrival_max(&self, net: NetId) -> Ps {
        self.arrival_max[net.index()]
    }

    /// Earliest arrival time of a net.
    pub fn arrival_min(&self, net: NetId) -> Ps {
        self.arrival_min[net.index()]
    }

    /// Per-flip-flop checks in [`Netlist::dff_cells`] order.
    pub fn checks(&self) -> &[FfCheck] {
        &self.checks
    }

    /// The check for one flip-flop, if it exists in the design.
    pub fn check_of(&self, ff: CellId) -> Option<&FfCheck> {
        self.checks.iter().find(|c| c.ff == ff)
    }

    /// Worst negative slack across all checks (0 when everything meets
    /// timing).
    pub fn wns(&self) -> i64 {
        self.wns
    }

    /// True when every flip-flop meets setup and hold.
    pub fn all_met(&self) -> bool {
        self.checks.iter().all(FfCheck::met)
    }

    /// Cells on the worst setup path, capture flip-flop last.
    pub fn critical_path(&self) -> &[CellId] {
        &self.critical_path
    }

    /// Flip-flops on the worst setup path (the GK insertion flow avoids
    /// these, paper Sec. IV-B).
    pub fn critical_ffs(&self, netlist: &Netlist) -> Vec<CellId> {
        self.critical_path
            .iter()
            .copied()
            .filter(|&c| netlist.cell(c).kind() == GateKind::Dff)
            .collect()
    }

    /// The `k` worst setup endpoints, most negative slack first — the
    /// "report_timing -max_paths k" view of a sign-off run.
    pub fn worst_endpoints(&self, k: usize) -> Vec<&FfCheck> {
        let mut v: Vec<&FfCheck> = self.checks.iter().collect();
        v.sort_by_key(|c| c.slack_setup);
        v.truncate(k);
        v
    }

    /// The `k` worst hold endpoints, most negative hold slack first — the
    /// min-delay counterpart of [`TimingReport::worst_endpoints`], used by
    /// post-`holdfix` audits to rank eroded margins.
    pub fn worst_hold_endpoints(&self, k: usize) -> Vec<&FfCheck> {
        let mut v: Vec<&FfCheck> = self.checks.iter().collect();
        v.sort_by_key(|c| c.slack_hold);
        v.truncate(k);
        v
    }

    /// Traces the max-arrival path ending at `ff`'s D pin (capture
    /// flip-flop last), following worst-arrival predecessors — the per-
    /// endpoint equivalent of [`TimingReport::critical_path`].
    pub fn path_to(&self, netlist: &Netlist, ff: CellId) -> Vec<CellId> {
        let mut path = vec![ff];
        let mut net = netlist.cell(ff).inputs()[0];
        while let Some(driver) = netlist.net(net).driver() {
            path.push(driver);
            let dc = netlist.cell(driver);
            if !dc.kind().is_combinational() || dc.inputs().is_empty() {
                break;
            }
            net = *dc
                .inputs()
                .iter()
                .max_by_key(|n| self.arrival_max[n.index()])
                .expect("combinational cell has inputs");
        }
        path.reverse();
        path
    }
}

/// Runs static timing analysis.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle (validate first).
pub fn analyze(netlist: &Netlist, library: &Library, clock: &ClockModel) -> TimingReport {
    let n_nets = netlist.net_count();
    let mut arrival_max = vec![Ps::ZERO; n_nets];
    let mut arrival_min = vec![Ps::ZERO; n_nets];

    // Sources.
    for &pi in netlist.input_nets() {
        arrival_max[pi.index()] = clock.input_arrival;
        arrival_min[pi.index()] = clock.input_arrival;
    }
    for &ff in netlist.dff_cells() {
        let q = netlist.cell(ff).output();
        let t = clock.skew_of(ff) + library.ff_timing(netlist, ff).clk_to_q;
        arrival_max[q.index()] = t;
        arrival_min[q.index()] = t;
    }

    // Forward pass.
    let order = netlist.topo_order().expect("netlist must be acyclic");
    for cell in &order {
        let c = netlist.cell(*cell);
        let delay = library.cell_delay(netlist, *cell);
        let out = c.output();
        if c.inputs().is_empty() {
            // Constants: available at time zero.
            arrival_max[out.index()] = Ps::ZERO;
            arrival_min[out.index()] = Ps::ZERO;
            continue;
        }
        let max_in = c
            .inputs()
            .iter()
            .map(|n| arrival_max[n.index()])
            .max()
            .unwrap_or(Ps::ZERO);
        let min_in = c
            .inputs()
            .iter()
            .map(|n| arrival_min[n.index()])
            .min()
            .unwrap_or(Ps::ZERO);
        arrival_max[out.index()] = max_in + delay;
        arrival_min[out.index()] = min_in + delay;
    }

    // Checks at every flip-flop D pin.
    let mut checks = Vec::with_capacity(netlist.dff_cells().len());
    let mut worst: Option<(i64, CellId)> = None;
    for &ff in netlist.dff_cells() {
        let d = netlist.cell(ff).inputs()[0];
        let timing = library.ff_timing(netlist, ff);
        let t_j = clock.skew_of(ff);
        let ub = clock.period + t_j - timing.setup;
        let lb = t_j + timing.hold;
        let amax = arrival_max[d.index()];
        let amin = arrival_min[d.index()];
        let slack_setup = ub.as_ps() as i64 - amax.as_ps() as i64;
        let slack_hold = amin.as_ps() as i64 - lb.as_ps() as i64;
        checks.push(FfCheck {
            ff,
            arrival_max: amax,
            arrival_min: amin,
            ub,
            lb,
            slack_setup,
            slack_hold,
        });
        // The critical path is the worst *setup* path, matching how P&R
        // flows report it.
        if worst.map(|(w, _)| slack_setup < w).unwrap_or(true) {
            worst = Some((slack_setup, ff));
        }
    }

    // Critical path: backtrack max-arrival predecessors from the worst FF.
    let mut critical_path = Vec::new();
    if let Some((_, ff)) = worst {
        let mut path = vec![ff];
        let mut net = netlist.cell(ff).inputs()[0];
        while let Some(driver) = netlist.net(net).driver() {
            path.push(driver);
            let dc = netlist.cell(driver);
            if !dc.kind().is_combinational() || dc.inputs().is_empty() {
                break;
            }
            net = *dc
                .inputs()
                .iter()
                .max_by_key(|n| arrival_max[n.index()])
                .expect("combinational cell has inputs");
        }
        path.reverse();
        critical_path = path;
    }

    let wns = checks
        .iter()
        .map(|c| c.slack_setup.min(c.slack_hold))
        .min()
        .unwrap_or(0)
        .min(0);

    TimingReport {
        arrival_max,
        arrival_min,
        checks,
        critical_path,
        wns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::cl013g_like()
    }

    /// FF -> INV -> INV -> FF pipeline.
    fn pipeline() -> (Netlist, CellId, CellId) {
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let q1 = nl.add_dff_named(a, "ff1").unwrap();
        let x1 = nl.add_gate(GateKind::Inv, &[q1]).unwrap();
        let x2 = nl.add_gate(GateKind::Inv, &[x1]).unwrap();
        let q2 = nl.add_dff_named(x2, "ff2").unwrap();
        nl.mark_output(q2, "y");
        let ffs = nl.dff_cells().to_vec();
        (nl, ffs[0], ffs[1])
    }

    #[test]
    fn arrival_accumulates_through_gates() {
        let (nl, _ff1, ff2) = pipeline();
        let lib = lib();
        let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
        let check = report.check_of(ff2).unwrap();
        // clk->q (160) + INV (25) + INV (25) = 210ps.
        assert_eq!(check.arrival_max, Ps(210));
        assert_eq!(check.arrival_min, Ps(210));
        // UB = 2000 - 90 = 1910; setup slack = 1700.
        assert_eq!(check.ub, Ps(1910));
        assert_eq!(check.slack_setup, 1700);
        // LB = 35; hold slack = 175.
        assert_eq!(check.lb, Ps(35));
        assert_eq!(check.slack_hold, 175);
        assert!(report.all_met());
        assert_eq!(report.wns(), 0);
    }

    #[test]
    fn tight_clock_creates_setup_violation() {
        let (nl, _, ff2) = pipeline();
        let lib = lib();
        // Period 250ps: UB = 250 - 90 = 160 < 210 arrival.
        let report = analyze(&nl, &lib, &ClockModel::new(Ps(250)));
        let check = report.check_of(ff2).unwrap();
        assert_eq!(check.slack_setup, -50);
        assert!(!report.all_met());
        assert_eq!(report.wns(), -50);
    }

    #[test]
    fn skew_shifts_bounds() {
        let (nl, ff1, ff2) = pipeline();
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(2))
            .with_skew(ff1, Ps(100))
            .with_skew(ff2, Ps(50));
        let report = analyze(&nl, &lib, &clock);
        let check = report.check_of(ff2).unwrap();
        // Launch shifted by +100 -> arrival 310; UB = 2000 + 50 - 90 = 1960.
        assert_eq!(check.arrival_max, Ps(310));
        assert_eq!(check.ub, Ps(1960));
        assert_eq!(check.lb, Ps(85));
    }

    #[test]
    fn hold_violation_with_fast_path_and_late_capture() {
        let (nl, _, ff2) = pipeline();
        let lib = lib();
        // Capture clock arrives 300ps late: LB = 300 + 35 = 335 > 210.
        let clock = ClockModel::new(Ps::from_ns(2)).with_skew(ff2, Ps(300));
        let report = analyze(&nl, &lib, &clock);
        let check = report.check_of(ff2).unwrap();
        assert_eq!(check.slack_hold, 210 - 335);
        assert!(!check.met());
    }

    #[test]
    fn critical_path_reaches_launch_ff() {
        let (nl, ff1, ff2) = pipeline();
        let lib = lib();
        let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
        let path = report.critical_path();
        assert_eq!(*path.last().unwrap(), ff2);
        assert_eq!(*path.first().unwrap(), ff1);
        assert_eq!(path.len(), 4);
        let crit_ffs = report.critical_ffs(&nl);
        assert_eq!(crit_ffs, vec![ff1, ff2]);
    }

    #[test]
    fn diverging_paths_give_min_max_window() {
        let lib = lib();
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let ff_in = nl.dff_cells()[0];
        let slow1 = nl.add_gate(GateKind::Inv, &[q]).unwrap();
        let slow2 = nl.add_gate(GateKind::Inv, &[slow1]).unwrap();
        let merged = nl.add_gate(GateKind::And, &[q, slow2]).unwrap();
        let q2 = nl.add_dff(merged).unwrap();
        nl.mark_output(q2, "y");
        let ff2 = nl.dff_cells()[1];
        let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
        let check = report.check_of(ff2).unwrap();
        // Fast path: clk->q(160) + AND(60) = 220.
        // Slow path: 160 + 25 + 25 + 60 = 270.
        assert_eq!(check.arrival_min, Ps(220));
        assert_eq!(check.arrival_max, Ps(270));
        let _ = ff_in;
    }

    #[test]
    fn worst_endpoints_sorted_by_slack() {
        let lib = lib();
        let mut nl = Netlist::new("w");
        let a = nl.add_input("a");
        // Fast endpoint.
        let f = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let qf = nl.add_dff(f).unwrap();
        // Slow endpoint through a delay cell.
        let s = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.bind_lib(nl.net(s).driver().unwrap(), lib.by_name("DLY4X1").unwrap())
            .unwrap();
        let qs = nl.add_dff(s).unwrap();
        nl.mark_output(qf, "f");
        nl.mark_output(qs, "s");
        let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
        let worst = report.worst_endpoints(2);
        assert_eq!(worst.len(), 2);
        assert!(worst[0].slack_setup <= worst[1].slack_setup);
        assert_eq!(worst[0].ff, nl.dff_cells()[1], "slow FF is worst");
        let one = report.worst_endpoints(1);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn worst_hold_endpoints_sorted_by_hold_slack() {
        let lib = lib();
        let mut nl = Netlist::new("h");
        let a = nl.add_input("a");
        // Fast endpoint: direct input capture (smallest hold slack).
        let qf = nl.add_dff(a).unwrap();
        // Slower endpoint through a delay cell.
        let s = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.bind_lib(nl.net(s).driver().unwrap(), lib.by_name("DLY4X1").unwrap())
            .unwrap();
        let qs = nl.add_dff(s).unwrap();
        nl.mark_output(qf, "f");
        nl.mark_output(qs, "s");
        let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
        let worst = report.worst_hold_endpoints(2);
        assert_eq!(worst.len(), 2);
        assert!(worst[0].slack_hold <= worst[1].slack_hold);
        assert_eq!(
            worst[0].ff,
            nl.dff_cells()[0],
            "direct-capture FF has least hold slack"
        );
        assert_eq!(report.worst_hold_endpoints(1).len(), 1);
    }

    #[test]
    fn path_to_traces_each_endpoint() {
        let (nl, ff1, ff2) = pipeline();
        let lib = lib();
        let report = analyze(&nl, &lib, &ClockModel::new(Ps::from_ns(2)));
        let path = report.path_to(&nl, ff2);
        assert_eq!(*path.last().unwrap(), ff2);
        assert_eq!(*path.first().unwrap(), ff1);
        // Path to the first FF ends at the primary input marker.
        let path = report.path_to(&nl, ff1);
        assert_eq!(*path.last().unwrap(), ff1);
        assert_eq!(path.len(), 2, "input marker then the flip-flop");
    }

    #[test]
    fn input_arrival_offsets_pi_paths() {
        let lib = lib();
        let mut nl = Netlist::new("pi");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let q = nl.add_dff(g).unwrap();
        nl.mark_output(q, "y");
        let clock = ClockModel::new(Ps::from_ns(2)).with_input_arrival(Ps(500));
        let report = analyze(&nl, &lib, &clock);
        let ff = nl.dff_cells()[0];
        // 500 + BUF(55) = 555.
        assert_eq!(report.check_of(ff).unwrap().arrival_max, Ps(555));
    }
}
