//! The standard-cell library model.

use crate::{AreaMilliUm2, Ps};
use glitchlock_netlist::{CellId, GateKind, LibCellId, Netlist};
use std::collections::HashMap;

/// Setup/hold/clock-to-Q data for sequential cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeqTiming {
    /// Setup time (`T_set` in the paper's Eq. (1)).
    pub setup: Ps,
    /// Hold time (`T_hold`).
    pub hold: Ps,
    /// Clock-to-Q propagation delay.
    pub clk_to_q: Ps,
}

/// One library cell: a concrete implementation of a [`GateKind`].
#[derive(Clone, Debug)]
pub struct LibCell {
    name: String,
    kind: GateKind,
    area: AreaMilliUm2,
    delay: Ps,
    load_slope: Ps,
    seq: Option<SeqTiming>,
    is_delay_cell: bool,
}

impl LibCell {
    /// Library cell name, e.g. `"NAND2X1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The logic function this cell implements.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Cell area.
    pub fn area(&self) -> AreaMilliUm2 {
        self.area
    }

    /// Intrinsic pin-to-pin delay (at fanout 1).
    pub fn delay(&self) -> Ps {
        self.delay
    }

    /// Additional delay per extra fanout load.
    pub fn load_slope(&self) -> Ps {
        self.load_slope
    }

    /// Sequential timing data (present only for flip-flops).
    pub fn seq(&self) -> Option<SeqTiming> {
        self.seq
    }

    /// True for the dedicated delay cells (`DLYx`) used by the delay-chain
    /// composer.
    pub fn is_delay_cell(&self) -> bool {
        self.is_delay_cell
    }

    /// Total delay through this cell when driving `fanout` sinks.
    pub fn delay_with_fanout(&self, fanout: usize) -> Ps {
        self.delay + self.load_slope * (fanout.saturating_sub(1) as u64)
    }
}

/// A standard-cell library: a set of [`LibCell`]s plus a default binding per
/// [`GateKind`].
#[derive(Clone, Debug)]
pub struct Library {
    cells: Vec<LibCell>,
    defaults: HashMap<GateKind, LibCellId>,
    by_name: HashMap<String, LibCellId>,
}

impl Library {
    /// Builds the project's synthetic 0.13µm-class library.
    ///
    /// Relative areas and delays follow published 0.13µm standard-cell data:
    /// an inverter is the area unit (~3.2µm², ~25ps), XOR/XNOR cost roughly
    /// 2.3×, a D flip-flop roughly 6×; the `DLY1/2/4/8` delay cells trade
    /// area for large intrinsic delays the way real "delay buffer" cells do.
    pub fn cl013g_like() -> Self {
        let mut lib = Library {
            cells: Vec::new(),
            defaults: HashMap::new(),
            by_name: HashMap::new(),
        };
        use GateKind::*;
        // name, kind, area(milli-µm²), delay(ps), load-slope(ps), delay-cell?
        let combo: &[(&str, GateKind, u64, u64, u64, bool)] = &[
            ("INVX1", Inv, 3_200, 25, 8, false),
            ("BUFX1", Buf, 4_300, 55, 7, false),
            ("AND2X1", And, 4_500, 60, 9, false),
            ("NAND2X1", Nand, 3_800, 40, 9, false),
            ("OR2X1", Or, 4_500, 65, 9, false),
            ("NOR2X1", Nor, 3_800, 45, 9, false),
            ("XOR2X1", Xor, 7_500, 90, 11, false),
            ("XNOR2X1", Xnor, 7_500, 95, 11, false),
            ("MUX2X1", Mux2, 7_800, 80, 10, false),
            ("MUX4X1", Mux4, 16_800, 140, 12, false),
            // X2 drive strengths: same function, more area, much lower
            // fanout sensitivity. Never defaults (X1 entries come first).
            ("INVX2", Inv, 4_500, 24, 4, false),
            ("BUFX2", Buf, 6_000, 52, 3, false),
            ("AND2X2", And, 6_300, 58, 4, false),
            ("NAND2X2", Nand, 5_300, 38, 4, false),
            ("OR2X2", Or, 6_300, 62, 4, false),
            ("NOR2X2", Nor, 5_300, 43, 4, false),
            ("XOR2X2", Xor, 10_500, 86, 5, false),
            ("XNOR2X2", Xnor, 10_500, 90, 5, false),
            ("MUX2X2", Mux2, 10_900, 76, 5, false),
            ("MUX4X2", Mux4, 23_500, 134, 6, false),
            ("TIELO", Const0, 1_600, 0, 0, false),
            ("TIEHI", Const1, 1_600, 0, 0, false),
            // Input markers occupy no silicon.
            ("PORT", Input, 0, 0, 0, false),
            // Dedicated delay cells: large intrinsic delay per unit area.
            ("DLY1X1", Buf, 5_400, 250, 7, true),
            ("DLY2X1", Buf, 6_900, 500, 7, true),
            ("DLY4X1", Buf, 9_800, 1_000, 7, true),
            ("DLY8X1", Buf, 15_600, 2_000, 7, true),
        ];
        for &(name, kind, area, delay, slope, is_delay) in combo {
            lib.push(LibCell {
                name: name.to_string(),
                kind,
                area: AreaMilliUm2(area),
                delay: Ps(delay),
                load_slope: Ps(slope),
                seq: None,
                is_delay_cell: is_delay,
            });
        }
        lib.push(LibCell {
            name: "DFFX1".to_string(),
            kind: Dff,
            area: AreaMilliUm2(19_400),
            delay: Ps(0),
            load_slope: Ps(8),
            seq: Some(SeqTiming {
                setup: Ps(90),
                hold: Ps(35),
                clk_to_q: Ps(160),
            }),
            is_delay_cell: false,
        });
        lib
    }

    /// Extends the library with **customized GK delay macros** — the
    /// paper's stated future work: "when the customized delay elements for
    /// GKs are available, the area overhead will be significantly reduced"
    /// (Sec. VI). Models compact current-starved delay cells at 100ps
    /// granularity from 100ps to 3ns, each a single cell of near-constant
    /// small area, so a GK delay chain collapses to one or two cells.
    pub fn with_gk_delay_macros(mut self) -> Self {
        for n in 1..=30u64 {
            self.push(LibCell {
                name: format!("GKDLY{n}00"),
                kind: GateKind::Buf,
                // Area grows sub-linearly: a starved chain is dense.
                area: AreaMilliUm2(2_500 + 80 * n),
                delay: Ps(100 * n),
                load_slope: Ps(7),
                seq: None,
                is_delay_cell: true,
            });
        }
        self
    }

    fn push(&mut self, cell: LibCell) -> LibCellId {
        let id = LibCellId(self.cells.len() as u32);
        self.by_name.insert(cell.name.clone(), id);
        // First cell of a kind (that is not a delay cell) becomes the default.
        if !cell.is_delay_cell {
            self.defaults.entry(cell.kind).or_insert(id);
        }
        self.cells.push(cell);
        id
    }

    /// Borrows a cell entry.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different library.
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.0 as usize]
    }

    /// Looks a cell up by name.
    pub fn by_name(&self, name: &str) -> Option<LibCellId> {
        self.by_name.get(name).copied()
    }

    /// The default binding for a gate kind.
    ///
    /// # Panics
    ///
    /// Panics if the library has no cell for `kind` (the built-in library
    /// covers every kind).
    pub fn default_cell(&self, kind: GateKind) -> LibCellId {
        *self
            .defaults
            .get(&kind)
            .unwrap_or_else(|| panic!("library has no cell implementing {kind}"))
    }

    /// All cells.
    pub fn cells(&self) -> impl ExactSizeIterator<Item = (LibCellId, &LibCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (LibCellId(i as u32), c))
    }

    /// The delay cells available to the chain composer, sorted by decreasing
    /// intrinsic delay.
    pub fn delay_cells(&self) -> Vec<LibCellId> {
        let mut v: Vec<LibCellId> = self
            .cells()
            .filter(|(_, c)| c.is_delay_cell)
            .map(|(id, _)| id)
            .collect();
        v.sort_by_key(|&id| std::cmp::Reverse(self.cell(id).delay()));
        v
    }

    /// The next drive strength up from `id` by naming convention
    /// (`…X1` → `…X2`), if the library has one.
    pub fn upsize_of(&self, id: LibCellId) -> Option<LibCellId> {
        let name = self.cell(id).name();
        let upsized = name.strip_suffix("X1").map(|base| format!("{base}X2"))?;
        self.by_name(&upsized)
            .filter(|&u| self.cell(u).kind() == self.cell(id).kind())
    }

    /// Resolves the library cell for a netlist cell: its explicit binding if
    /// present, otherwise the default for its kind.
    pub fn resolve(&self, netlist: &Netlist, cell: CellId) -> &LibCell {
        let c = netlist.cell(cell);
        let id = c.lib().unwrap_or_else(|| self.default_cell(c.kind()));
        self.cell(id)
    }

    /// Propagation delay of a netlist cell including its fanout load.
    pub fn cell_delay(&self, netlist: &Netlist, cell: CellId) -> Ps {
        let lib = self.resolve(netlist, cell);
        let fanout = netlist.net(netlist.cell(cell).output()).fanout().len();
        lib.delay_with_fanout(fanout)
    }

    /// Sequential timing of a netlist flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not bound to a sequential library cell.
    pub fn ff_timing(&self, netlist: &Netlist, cell: CellId) -> SeqTiming {
        self.resolve(netlist, cell)
            .seq()
            .expect("flip-flop must resolve to a sequential library cell")
    }

    /// Sums the area of every silicon cell in a netlist (input markers are
    /// free).
    pub fn total_area(&self, netlist: &Netlist) -> AreaMilliUm2 {
        netlist
            .cells()
            .map(|(id, _)| self.resolve(netlist, id).area())
            .sum()
    }

    /// Counts silicon cells the way the paper does: gates plus flip-flops,
    /// excluding ports and tie cells.
    pub fn silicon_cell_count(&self, netlist: &Netlist) -> usize {
        netlist
            .cells()
            .filter(|(_, c)| {
                !matches!(
                    c.kind(),
                    GateKind::Input | GateKind::Const0 | GateKind::Const1
                )
            })
            .count()
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::cl013g_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bindings_cover_all_kinds() {
        let lib = Library::cl013g_like();
        for kind in [
            GateKind::Inv,
            GateKind::Buf,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux2,
            GateKind::Mux4,
            GateKind::Dff,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Input,
        ] {
            let id = lib.default_cell(kind);
            assert_eq!(lib.cell(id).kind(), kind);
            assert!(
                !lib.cell(id).is_delay_cell(),
                "default must not be a DLY cell"
            );
        }
    }

    #[test]
    fn delay_cells_sorted_descending() {
        let lib = Library::cl013g_like();
        let dlys = lib.delay_cells();
        assert_eq!(dlys.len(), 4);
        let delays: Vec<u64> = dlys.iter().map(|&d| lib.cell(d).delay().as_ps()).collect();
        assert_eq!(delays, vec![2000, 1000, 500, 250]);
    }

    #[test]
    fn fanout_load_increases_delay() {
        let lib = Library::cl013g_like();
        let inv = lib.cell(lib.by_name("INVX1").unwrap());
        assert_eq!(inv.delay_with_fanout(1), Ps(25));
        assert_eq!(inv.delay_with_fanout(4), Ps(25 + 3 * 8));
        // Zero fanout behaves like fanout 1.
        assert_eq!(inv.delay_with_fanout(0), Ps(25));
    }

    #[test]
    fn dff_has_seq_timing() {
        let lib = Library::cl013g_like();
        let ff = lib.cell(lib.default_cell(GateKind::Dff));
        let seq = ff.seq().unwrap();
        assert!(seq.setup > Ps::ZERO);
        assert!(seq.hold > Ps::ZERO);
        assert!(seq.clk_to_q > seq.hold);
    }

    #[test]
    fn netlist_accounting() {
        use glitchlock_netlist::Netlist;
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let q = nl.add_dff(y).unwrap();
        nl.mark_output(q, "q");
        assert_eq!(lib.silicon_cell_count(&nl), 2);
        let area = lib.total_area(&nl);
        assert_eq!(area, AreaMilliUm2(3_800 + 19_400));
        // NAND drives one sink (the FF).
        let nand = nl.net(y).driver().unwrap();
        assert_eq!(lib.cell_delay(&nl, nand), Ps(40));
    }

    #[test]
    fn explicit_binding_overrides_default() {
        use glitchlock_netlist::Netlist;
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.mark_output(y, "y");
        let buf = nl.net(y).driver().unwrap();
        nl.bind_lib(buf, lib.by_name("DLY4X1").unwrap()).unwrap();
        assert_eq!(lib.cell_delay(&nl, buf), Ps(1000));
        assert_eq!(lib.resolve(&nl, buf).name(), "DLY4X1");
    }
}
