//! Liberty (`.lib`) format emission.
//!
//! Liberty is the de-facto interchange format for standard-cell timing and
//! area data. Emitting our synthetic library in it serves two purposes:
//! documentation of exactly what the substituted library contains, and a
//! bridge for anyone wanting to push the locked netlists through a real
//! synthesis flow.

use crate::{Library, Ps};
use glitchlock_netlist::GateKind;
use std::fmt::Write as _;

/// Serializes the library as minimal Liberty text: cell area, pin
/// directions, a Boolean `function` per output, and a fixed `cell_rise`/
/// `cell_fall` intrinsic delay (scalar tables).
pub fn emit(library: &Library, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({name}) {{");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  area_unit : \"1um2\";");
    for (_, cell) in library.cells() {
        if cell.kind() == GateKind::Input {
            continue;
        }
        let _ = writeln!(out, "  cell ({}) {{", cell.name());
        let _ = writeln!(out, "    area : {:.3};", cell.area().as_um2_f64());
        if cell.is_delay_cell() {
            let _ = writeln!(out, "    /* dedicated delay cell */");
        }
        let pins = input_pins(cell.kind());
        for pin in &pins {
            let _ = writeln!(out, "    pin ({pin}) {{ direction : input; }}");
        }
        if let Some(seq) = cell.seq() {
            let _ = writeln!(
                out,
                "    ff (IQ, IQN) {{ clocked_on : \"CK\"; next_state : \"D\"; }}"
            );
            let _ = writeln!(out, "    pin (CK) {{ direction : input; clock : true; }}");
            let _ = writeln!(
                out,
                "    pin (Q) {{ direction : output; function : \"IQ\"; {} }}",
                timing_block(seq.clk_to_q, "CK")
            );
            let _ = writeln!(
                out,
                "    /* setup : {}ps, hold : {}ps */",
                seq.setup.as_ps(),
                seq.hold.as_ps()
            );
        } else {
            let func = function_of(cell.kind(), &pins);
            let _ = writeln!(
                out,
                "    pin (Y) {{ direction : output; function : \"{func}\"; {} }}",
                timing_block(
                    cell.delay(),
                    pins.first().map(String::as_str).unwrap_or("A")
                )
            );
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn timing_block(delay: Ps, related: &str) -> String {
    format!(
        "timing () {{ related_pin : \"{related}\"; cell_rise (scalar) {{ values(\"{0}\"); }} cell_fall (scalar) {{ values(\"{0}\"); }} }}",
        delay.as_ps()
    )
}

fn input_pins(kind: GateKind) -> Vec<String> {
    let n = match kind {
        GateKind::Input => 0,
        GateKind::Const0 | GateKind::Const1 => 0,
        GateKind::Buf | GateKind::Inv => 1,
        GateKind::Mux2 => 3,
        GateKind::Mux4 => 6,
        GateKind::Dff => 1,
        _ => 2,
    };
    match kind {
        GateKind::Dff => vec!["D".to_string()],
        GateKind::Mux2 => vec!["A".into(), "B".into(), "S".into()],
        GateKind::Mux4 => vec![
            "A".into(),
            "B".into(),
            "C".into(),
            "D".into(),
            "S0".into(),
            "S1".into(),
        ],
        _ => (0..n)
            .map(|i| ((b'A' + i as u8) as char).to_string())
            .collect(),
    }
}

fn function_of(kind: GateKind, pins: &[String]) -> String {
    let a = pins.first().cloned().unwrap_or_default();
    let b = pins.get(1).cloned().unwrap_or_default();
    match kind {
        GateKind::Const0 => "0".into(),
        GateKind::Const1 => "1".into(),
        GateKind::Buf => a,
        GateKind::Inv => format!("!{a}"),
        GateKind::And => format!("({a} * {b})"),
        GateKind::Nand => format!("!({a} * {b})"),
        GateKind::Or => format!("({a} + {b})"),
        GateKind::Nor => format!("!({a} + {b})"),
        GateKind::Xor => format!("({a} ^ {b})"),
        GateKind::Xnor => format!("!({a} ^ {b})"),
        GateKind::Mux2 => "((A * !S) + (B * S))".into(),
        GateKind::Mux4 => {
            "((A * !S0 * !S1) + (B * S0 * !S1) + (C * !S0 * S1) + (D * S0 * S1))".into()
        }
        GateKind::Dff | GateKind::Input => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_every_silicon_cell() {
        let lib = Library::cl013g_like();
        let text = emit(&lib, "glitchlock_cl013g");
        assert!(text.starts_with("library (glitchlock_cl013g) {"));
        for (_, cell) in lib.cells() {
            if cell.kind() == GateKind::Input {
                continue;
            }
            assert!(
                text.contains(&format!("cell ({})", cell.name())),
                "{} missing",
                cell.name()
            );
        }
        assert!(text.contains("function : \"!(A * B)\""), "NAND function");
        assert!(text.contains("clocked_on : \"CK\""), "flip-flop group");
        assert!(text.contains("area : 3.200;"), "INVX1 area");
    }

    #[test]
    fn delay_cells_annotated_and_timed() {
        let lib = Library::cl013g_like();
        let text = emit(&lib, "l");
        assert!(text.contains("/* dedicated delay cell */"));
        // DLY4X1's 1000ps intrinsic shows up in its timing table.
        let dly = text.split("cell (DLY4X1)").nth(1).unwrap();
        assert!(dly.contains("values(\"1000\")"));
    }

    #[test]
    fn custom_macros_included_when_extended() {
        let lib = Library::cl013g_like().with_gk_delay_macros();
        let text = emit(&lib, "l");
        assert!(text.contains("cell (GKDLY100)"));
        assert!(text.contains("cell (GKDLY3000)"));
    }
}
