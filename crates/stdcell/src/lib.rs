//! Synthetic 0.13µm-class standard-cell library for `glitchlock`.
//!
//! The paper characterizes its flow on the TSMC 0.13µm CL013G library, which
//! is proprietary. This crate substitutes a synthetic library whose *relative*
//! areas and delays follow published 0.13µm standard-cell characteristics —
//! the experiments in the paper (Tables I and II) only depend on ratios, so
//! the substitution preserves the reported shapes (see `DESIGN.md`).
//!
//! Provides:
//!
//! * [`Ps`] — integer picosecond time (no floating-point drift in the
//!   paper's window arithmetic, Eqs. (2)–(6)).
//! * [`AreaMilliUm2`] — integer cell area in thousandths of a µm².
//! * [`LibCell`]/[`Library`] — cell entries with area, intrinsic delay, a
//!   fanout-load delay slope, and setup/hold/clk→q data for flip-flops.
//! * A family of dedicated delay cells (`DLY1`…`DLY8`) plus buffers that the
//!   delay-chain composer in `glitchlock-synth` uses, mirroring how Design
//!   Compiler maps "set min-delay" design constraints onto library cells.

#![deny(missing_docs)]

pub mod liberty;
mod library;
mod time;

pub use library::{LibCell, Library, SeqTiming};
pub use time::{AreaMilliUm2, Ps};
