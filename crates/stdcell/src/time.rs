//! Integer time and area quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A duration or instant in integer picoseconds.
///
/// All timing arithmetic in the project uses integer picoseconds so the
/// window inequalities of the paper (Eqs. (3)–(6)) are exact. The paper's
/// nanosecond examples map via [`Ps::from_ns`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Ps(pub u64);

impl Ps {
    /// Zero duration.
    pub const ZERO: Ps = Ps(0);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Ps {
        Ps(ns * 1000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// Duration as fractional nanoseconds for reporting.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction (clamps at zero instead of underflowing).
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Ps) -> Option<Ps> {
        self.0.checked_sub(rhs.0).map(Ps)
    }

    /// The larger of two durations.
    pub fn max(self, rhs: Ps) -> Ps {
        Ps(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: Ps) -> Ps {
        Ps(self.0.min(rhs.0))
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    /// # Panics
    ///
    /// Panics on underflow in debug builds; use [`Ps::saturating_sub`] or
    /// [`Ps::checked_sub`] when the difference may be negative.
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 && self.0.is_multiple_of(100) {
            let ns_tenths = self.0 / 100;
            write!(f, "{}.{}ns", ns_tenths / 10, ns_tenths % 10)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// Cell area in thousandths of a square micrometre.
///
/// Stored as an integer so workspace-wide area sums are exact; display
/// converts back to µm².
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AreaMilliUm2(pub u64);

impl AreaMilliUm2 {
    /// Zero area.
    pub const ZERO: AreaMilliUm2 = AreaMilliUm2(0);

    /// Builds from whole square micrometres.
    pub const fn from_um2(um2: u64) -> Self {
        AreaMilliUm2(um2 * 1000)
    }

    /// Area as fractional µm².
    pub fn as_um2_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add for AreaMilliUm2 {
    type Output = AreaMilliUm2;
    fn add(self, rhs: Self) -> Self {
        AreaMilliUm2(self.0 + rhs.0)
    }
}

impl AddAssign for AreaMilliUm2 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for AreaMilliUm2 {
    type Output = AreaMilliUm2;
    fn sub(self, rhs: Self) -> Self {
        AreaMilliUm2(self.0 - rhs.0)
    }
}

impl Mul<u64> for AreaMilliUm2 {
    type Output = AreaMilliUm2;
    fn mul(self, rhs: u64) -> Self {
        AreaMilliUm2(self.0 * rhs)
    }
}

impl Sum for AreaMilliUm2 {
    fn sum<I: Iterator<Item = AreaMilliUm2>>(iter: I) -> AreaMilliUm2 {
        iter.fold(AreaMilliUm2::ZERO, Add::add)
    }
}

impl fmt::Display for AreaMilliUm2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}um2", self.as_um2_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion() {
        assert_eq!(Ps::from_ns(3), Ps(3000));
        assert_eq!(Ps(2500).as_ns(), 2);
        assert!((Ps(2500).as_ns_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Ps(100) + Ps(50), Ps(150));
        assert_eq!(Ps(100) - Ps(50), Ps(50));
        assert_eq!(Ps(100).saturating_sub(Ps(150)), Ps::ZERO);
        assert_eq!(Ps(100).checked_sub(Ps(150)), None);
        assert_eq!(Ps(30) * 4, Ps(120));
        assert_eq!(vec![Ps(1), Ps(2), Ps(3)].into_iter().sum::<Ps>(), Ps(6));
    }

    #[test]
    fn display_uses_ns_when_round() {
        assert_eq!(Ps::from_ns(3).to_string(), "3.0ns");
        assert_eq!(Ps(2500).to_string(), "2.5ns");
        assert_eq!(Ps(137).to_string(), "137ps");
    }

    #[test]
    fn area_math_and_display() {
        let a = AreaMilliUm2::from_um2(3) + AreaMilliUm2(250);
        assert_eq!(a, AreaMilliUm2(3250));
        assert_eq!(a.to_string(), "3.250um2");
        assert_eq!((a * 2).0, 6500);
    }
}
