//! Encryption overhead accounting (Table II's columns).

use glitchlock_netlist::Netlist;
use glitchlock_stdcell::{AreaMilliUm2, Library};
use std::fmt;

/// Cell-count and cell-area overhead of a transformed netlist relative to
/// the original, computed with the paper's accounting (gates + flip-flops,
/// ports and tie cells free).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Overhead {
    /// Silicon cells before.
    pub cells_before: usize,
    /// Silicon cells after.
    pub cells_after: usize,
    /// Total area before.
    pub area_before: AreaMilliUm2,
    /// Total area after.
    pub area_after: AreaMilliUm2,
}

impl Overhead {
    /// Measures the overhead of `after` relative to `before`.
    pub fn measure(library: &Library, before: &Netlist, after: &Netlist) -> Self {
        Overhead {
            cells_before: library.silicon_cell_count(before),
            cells_after: library.silicon_cell_count(after),
            area_before: library.total_area(before),
            area_after: library.total_area(after),
        }
    }

    /// Cell-count overhead in percent (`Cell OH (%)` in Table II).
    pub fn cell_overhead_pct(&self) -> f64 {
        if self.cells_before == 0 {
            return 0.0;
        }
        (self.cells_after as f64 - self.cells_before as f64) / self.cells_before as f64 * 100.0
    }

    /// Area overhead in percent (`Area OH (%)` in Table II).
    pub fn area_overhead_pct(&self) -> f64 {
        if self.area_before.0 == 0 {
            return 0.0;
        }
        (self.area_after.0 as f64 - self.area_before.0 as f64) / self.area_before.0 as f64 * 100.0
    }
}

impl fmt::Display for Overhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells {} -> {} (+{:.2}%), area {} -> {} (+{:.2}%)",
            self.cells_before,
            self.cells_after,
            self.cell_overhead_pct(),
            self.area_before,
            self.area_after,
            self.area_overhead_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    #[test]
    fn percentages_match_counts() {
        let lib = Library::cl013g_like();
        let mut before = Netlist::new("b");
        let a = before.add_input("a");
        let b = before.add_input("b");
        let y = before.add_gate(GateKind::Nand, &[a, b]).unwrap();
        before.mark_output(y, "y");
        let mut after = before.clone();
        let z = after.add_gate(GateKind::Inv, &[y]).unwrap();
        after.mark_output(z, "z");
        let oh = Overhead::measure(&lib, &before, &after);
        assert_eq!(oh.cells_before, 1);
        assert_eq!(oh.cells_after, 2);
        assert!((oh.cell_overhead_pct() - 100.0).abs() < 1e-9);
        // NAND 3.8 + INV 3.2 vs NAND 3.8.
        assert!((oh.area_overhead_pct() - 3.2 / 3.8 * 100.0).abs() < 1e-6);
        let s = oh.to_string();
        assert!(s.contains("cells 1 -> 2"));
    }

    #[test]
    fn empty_before_is_guarded() {
        let lib = Library::cl013g_like();
        let before = Netlist::new("e");
        let after = Netlist::new("e2");
        let oh = Overhead::measure(&lib, &before, &after);
        assert_eq!(oh.cell_overhead_pct(), 0.0);
        assert_eq!(oh.area_overhead_pct(), 0.0);
    }
}
