//! Drive-strength sizing: upsize cells driving heavy fanout.
//!
//! A post-placement optimization every physical flow performs: a gate
//! driving many sinks suffers load-dependent delay; swapping it for its X2
//! variant trades area for a flatter load curve. Used here to recover
//! timing on benchmark nets that accumulate flip-flop taps.

use glitchlock_netlist::{GateKind, Netlist};
use glitchlock_stdcell::Library;

/// Report of one sizing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResizeReport {
    /// Cells examined.
    pub examined: usize,
    /// Cells re-bound to a higher drive strength.
    pub upsized: usize,
}

/// Upsizes every combinational cell whose output fanout is at least
/// `fanout_threshold` and whose library binding has a stronger variant.
/// Mutates the netlist's library bindings in place; the structure is
/// untouched, so behaviour is trivially preserved.
pub fn upsize_high_fanout(
    netlist: &mut Netlist,
    library: &Library,
    fanout_threshold: usize,
) -> ResizeReport {
    let mut report = ResizeReport::default();
    let cells: Vec<_> = netlist.cells().map(|(id, _)| id).collect();
    for cell_id in cells {
        let cell = netlist.cell(cell_id);
        let kind = cell.kind();
        if matches!(
            kind,
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff
        ) {
            continue;
        }
        report.examined += 1;
        let fanout = netlist.net(cell.output()).fanout().len();
        if fanout < fanout_threshold {
            continue;
        }
        let current = cell.lib().unwrap_or_else(|| library.default_cell(kind));
        // Skip dedicated delay cells: their delay is the point.
        if library.cell(current).is_delay_cell() {
            continue;
        }
        if let Some(upsized) = library.upsize_of(current) {
            netlist
                .bind_lib(cell_id, upsized)
                .expect("cell id from iteration");
            report.upsized += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_sta::{analyze, ClockModel};
    use glitchlock_stdcell::Ps;

    /// One inverter driving `n` sinks.
    fn heavy_fanout(n: usize) -> Netlist {
        let mut nl = Netlist::new("h");
        let a = nl.add_input("a");
        let inv = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        for i in 0..n {
            let b = nl.add_gate(GateKind::Buf, &[inv]).unwrap();
            let q = nl.add_dff(b).unwrap();
            nl.mark_output(q, format!("q{i}"));
        }
        nl
    }

    #[test]
    fn upsizing_reduces_loaded_delay() {
        let lib = Library::cl013g_like();
        let mut nl = heavy_fanout(8);
        let clock = ClockModel::new(Ps::from_ns(2));
        let before = analyze(&nl, &lib, &clock);
        let ff0 = nl.dff_cells()[0];
        let arrival_before = before.check_of(ff0).unwrap().arrival_max;
        let report = upsize_high_fanout(&mut nl, &lib, 4);
        assert_eq!(report.upsized, 1, "only the inverter is heavy");
        let after = analyze(&nl, &lib, &clock);
        let arrival_after = after.check_of(ff0).unwrap().arrival_max;
        assert!(
            arrival_after < arrival_before,
            "{arrival_after} must beat {arrival_before}"
        );
    }

    #[test]
    fn light_fanout_untouched() {
        let lib = Library::cl013g_like();
        let mut nl = heavy_fanout(2);
        let report = upsize_high_fanout(&mut nl, &lib, 4);
        assert_eq!(report.upsized, 0);
        assert!(report.examined > 0);
    }

    #[test]
    fn behaviour_is_preserved() {
        use glitchlock_netlist::{Logic, SeqState};
        let lib = Library::cl013g_like();
        let mut nl = heavy_fanout(5);
        let reference = nl.clone();
        upsize_high_fanout(&mut nl, &lib, 2);
        let mut a = SeqState::reset(&reference);
        let mut b = SeqState::reset(&nl);
        for v in [Logic::One, Logic::Zero, Logic::One] {
            assert_eq!(a.step(&reference, &[v]), b.step(&nl, &[v]));
        }
    }

    #[test]
    fn delay_cells_are_never_resized() {
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let dly = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let dly_cell = nl.net(dly).driver().unwrap();
        nl.bind_lib(dly_cell, lib.by_name("DLY4X1").unwrap())
            .unwrap();
        for i in 0..6 {
            let b = nl.add_gate(GateKind::Buf, &[dly]).unwrap();
            nl.mark_output(b, format!("o{i}"));
        }
        upsize_high_fanout(&mut nl, &lib, 2);
        assert_eq!(
            lib.resolve(&nl, dly_cell).name(),
            "DLY4X1",
            "intentional delay must survive sizing"
        );
    }
}
