//! Error type for synthesis operations.

use glitchlock_stdcell::Ps;
use std::error::Error;
use std::fmt;

/// Errors from delay composition and optimization passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// No combination of library cells reaches the target delay within the
    /// tolerance.
    Unreachable {
        /// Requested path delay.
        target: Ps,
        /// Allowed deviation.
        tolerance: Ps,
        /// The closest delay the library can realize.
        closest: Ps,
    },
    /// A netlist-level operation failed.
    Netlist(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Unreachable {
                target,
                tolerance,
                closest,
            } => write!(
                f,
                "no delay chain reaches {target} within ±{tolerance} (closest {closest})"
            ),
            SynthError::Netlist(msg) => write!(f, "netlist operation failed: {msg}"),
        }
    }
}

impl Error for SynthError {}

impl From<glitchlock_netlist::NetlistError> for SynthError {
    fn from(e: glitchlock_netlist::NetlistError) -> Self {
        SynthError::Netlist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_target() {
        let e = SynthError::Unreachable {
            target: Ps(123),
            tolerance: Ps(10),
            closest: Ps(110),
        };
        assert!(e.to_string().contains("123ps"));
    }
}
