//! Delay-chain composition: map a target path delay onto library cells.

use crate::SynthError;
use glitchlock_netlist::{CellId, GateKind, LibCellId, NetId, Netlist};
use glitchlock_stdcell::{AreaMilliUm2, Library, Ps};

/// A planned (not yet instantiated) delay chain: the library cells to
/// string together and the exact delay they achieve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainPlan {
    /// Library cells in chain order.
    pub cells: Vec<LibCellId>,
    /// Sum of the cells' intrinsic delays.
    pub achieved: Ps,
}

impl ChainPlan {
    /// Total area of the planned chain.
    pub fn area(&self, library: &Library) -> AreaMilliUm2 {
        self.cells.iter().map(|&c| library.cell(c).area()).sum()
    }

    /// Number of cells in the chain.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for a zero-delay (empty) chain.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Plans a delay chain realizing `target` within `±tolerance`, the way an
/// area-driven constrained synthesis run maps delay cells from the
/// library: a dynamic program over the available delay cells (plus the
/// default buffer for fine resolution) minimizes the **cell count** among
/// all sums landing inside the tolerance window, breaking ties by
/// accuracy.
///
/// ```rust
/// use glitchlock_synth::plan_chain;
/// use glitchlock_stdcell::{Library, Ps};
///
/// # fn main() -> Result<(), glitchlock_synth::SynthError> {
/// let lib = Library::cl013g_like();
/// let plan = plan_chain(&lib, Ps::from_ns(3), Ps(30))?;
/// assert_eq!(plan.achieved, Ps::from_ns(3));
/// assert!(plan.len() <= 2, "dedicated delay cells keep chains short");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SynthError::Unreachable`] when no combination lands inside the
/// window (e.g. a sub-buffer-delay target with zero tolerance).
pub fn plan_chain(library: &Library, target: Ps, tolerance: Ps) -> Result<ChainPlan, SynthError> {
    if target == Ps::ZERO {
        return Ok(ChainPlan {
            cells: Vec::new(),
            achieved: Ps::ZERO,
        });
    }
    // Sanity bound: on-chip delay elements top out far below a microsecond;
    // beyond this the DP table would be absurdly large, so fail fast
    // instead of allocating it.
    const MAX_TARGET_PS: u64 = 1_000_000;
    if target.as_ps() > MAX_TARGET_PS {
        return Err(SynthError::Unreachable {
            target,
            tolerance,
            closest: Ps(MAX_TARGET_PS),
        });
    }
    // Candidate cells: every dedicated delay cell plus the default buffer.
    let mut candidates: Vec<(LibCellId, u64)> = library
        .delay_cells()
        .into_iter()
        .map(|c| (c, library.cell(c).delay().as_ps()))
        .collect();
    let buf = library.default_cell(GateKind::Buf);
    candidates.push((buf, library.cell(buf).delay().as_ps()));
    candidates.retain(|&(_, d)| d > 0);
    let min_delay = candidates.iter().map(|&(_, d)| d).min().unwrap_or(1);

    // dp[t] = minimum cells whose delays sum to exactly t, with the cell
    // used last (for reconstruction). Capacity covers the window plus one
    // smallest cell so the error path can report the closest achievable.
    let cap = (target + tolerance).as_ps() + min_delay;
    let mut dp: Vec<Option<(u32, LibCellId)>> = vec![None; cap as usize + 1];
    dp[0] = Some((0, buf));
    for t in 1..=cap as usize {
        for &(cell, d) in &candidates {
            let d = d as usize;
            if t >= d {
                if let Some((count, _)) = dp[t - d] {
                    let better = match dp[t] {
                        None => true,
                        Some((existing, _)) => count + 1 < existing,
                    };
                    if better {
                        dp[t] = Some((count + 1, cell));
                    }
                }
            }
        }
    }

    // Pick the achievable sum inside the window with fewest cells, ties by
    // accuracy (mirrors an area-first synthesis objective).
    let lo = target.saturating_sub(tolerance).as_ps();
    let hi = (target + tolerance).as_ps();
    let mut best: Option<(u32, u64, u64)> = None; // (cells, dev, t)
    for t in lo..=hi {
        if let Some((count, _)) = dp[t as usize] {
            let dev = t.abs_diff(target.as_ps());
            if best
                .map(|(bc, bd, _)| (count, dev) < (bc, bd))
                .unwrap_or(true)
            {
                best = Some((count, dev, t));
            }
        }
    }
    let Some((_, _, mut t)) = best else {
        // Report the closest achievable sum for diagnostics.
        let closest = (0..=cap)
            .filter(|&t| dp[t as usize].is_some())
            .min_by_key(|&t| t.abs_diff(target.as_ps()))
            .unwrap_or(0);
        return Err(SynthError::Unreachable {
            target,
            tolerance,
            closest: Ps(closest),
        });
    };
    let achieved = Ps(t);
    let mut cells = Vec::new();
    while t > 0 {
        let (_, cell) = dp[t as usize].expect("reconstruction follows dp");
        cells.push(cell);
        t -= library.cell(cell).delay().as_ps();
    }
    // Largest first: a cosmetic but stable order.
    cells.sort_by_key(|&c| std::cmp::Reverse(library.cell(c).delay()));
    Ok(ChainPlan { cells, achieved })
}

/// Instantiates a planned delay chain in the netlist from `from` and returns
/// `(chain-output net, instantiated cells, plan)`.
///
/// The chain is built from buffer-function cells bound to the planned
/// library entries, so the timing simulator and STA both see the composed
/// delay.
///
/// # Errors
///
/// Propagates [`SynthError::Unreachable`] from planning.
pub fn compose_delay(
    netlist: &mut Netlist,
    library: &Library,
    from: NetId,
    target: Ps,
    tolerance: Ps,
) -> Result<(NetId, Vec<CellId>, ChainPlan), SynthError> {
    let plan = plan_chain(library, target, tolerance)?;
    let mut net = from;
    let mut cells = Vec::with_capacity(plan.len());
    for &lib_cell in &plan.cells {
        let out = netlist.add_gate(GateKind::Buf, &[net])?;
        let cell = netlist
            .net(out)
            .driver()
            .expect("freshly added gate drives its net");
        netlist.bind_lib(cell, lib_cell)?;
        cells.push(cell);
        net = out;
    }
    Ok((net, cells, plan))
}

/// Walks a delay chain **backwards** from `net` through single-input
/// buffer-function drivers, returning `(source net, chain cells in
/// source→sink order, total chain delay)`.
///
/// This is the inverse of [`compose_delay`]: given the net a chain drives,
/// it recovers where the chain taps its signal and how much delay the chain
/// adds — the measurement a removal attacker (or a post-synthesis audit)
/// makes when reverse-engineering a GK branch or a KEYGEN trigger. A net
/// whose driver is not a buffer is its own trivial chain (empty, zero
/// delay).
pub fn trace_delay_chain(
    netlist: &Netlist,
    library: &Library,
    net: NetId,
) -> (NetId, Vec<CellId>, Ps) {
    let mut cells = Vec::new();
    let mut total = Ps::ZERO;
    let mut at = net;
    while let Some(driver) = netlist.net(at).driver() {
        let cell = netlist.cell(driver);
        if cell.kind() != GateKind::Buf {
            break;
        }
        cells.push(driver);
        total += library.cell_delay(netlist, driver);
        at = cell.inputs()[0];
        if cells.len() > netlist.cell_count() {
            // Defensive: a malformed (cyclic) buffer loop must not hang us.
            break;
        }
    }
    cells.reverse();
    (at, cells, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::cl013g_like()
    }

    #[test]
    fn zero_target_is_empty_chain() {
        let plan = plan_chain(&lib(), Ps::ZERO, Ps::ZERO).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.achieved, Ps::ZERO);
    }

    #[test]
    fn round_targets_hit_exactly_with_delay_cells() {
        let lib = lib();
        for ns in [1u64, 2, 3, 5, 8] {
            let plan = plan_chain(&lib, Ps::from_ns(ns), Ps::ZERO).unwrap();
            assert_eq!(plan.achieved, Ps::from_ns(ns), "{ns}ns");
            // Dedicated delay cells keep chains short.
            assert!(
                plan.len() <= (ns as usize).max(1) + 1,
                "{ns}ns used {}",
                plan.len()
            );
        }
    }

    #[test]
    fn fine_targets_use_buffers() {
        let lib = lib();
        // 920ps = DLY2(500) + DLY1(250) + ~3 BUF(55) = 915 (within 10).
        let plan = plan_chain(&lib, Ps(920), Ps(10)).unwrap();
        assert!(plan.achieved.as_ps().abs_diff(920) <= 10);
        assert!(plan.len() <= 6);
    }

    #[test]
    fn unreachable_small_target() {
        let lib = lib();
        let err = plan_chain(&lib, Ps(10), Ps(5)).unwrap_err();
        assert!(matches!(err, SynthError::Unreachable { .. }));
    }

    #[test]
    fn tolerance_accepts_near_miss() {
        let lib = lib();
        let plan = plan_chain(&lib, Ps(60), Ps(10)).unwrap();
        assert_eq!(plan.achieved, Ps(55), "single buffer");
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn compose_instantiates_bound_cells() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let (out, cells, plan) = compose_delay(&mut nl, &lib, a, Ps::from_ns(3), Ps(10)).unwrap();
        assert_eq!(plan.achieved, Ps::from_ns(3));
        assert_eq!(cells.len(), plan.len());
        assert_ne!(out, a);
        // The netlist delay (sum of cell delays at fanout<=1) equals the plan.
        let mut total = Ps::ZERO;
        for &c in &cells {
            total += lib.cell_delay(&nl, c);
        }
        // Last cell has no sink yet (fanout 0 behaves as 1).
        assert_eq!(total, plan.achieved);
        // Area accounting exists and is positive.
        assert!(plan.area(&lib) > AreaMilliUm2::ZERO);
    }

    #[test]
    fn trace_inverts_compose() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let (out, cells, plan) = compose_delay(&mut nl, &lib, a, Ps::from_ns(2), Ps(10)).unwrap();
        // Give the chain a sink so fanout-dependent delays match compose's
        // single-load assumption.
        let y = nl.add_gate(GateKind::Inv, &[out]).unwrap();
        nl.mark_output(y, "y");
        let (source, traced, total) = trace_delay_chain(&nl, &lib, out);
        assert_eq!(source, a);
        assert_eq!(traced, cells, "source→sink order");
        assert_eq!(total, plan.achieved);
    }

    #[test]
    fn trace_of_non_chain_net_is_trivial() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        nl.mark_output(y, "y");
        let (source, cells, total) = trace_delay_chain(&nl, &lib, y);
        assert_eq!(source, y);
        assert!(cells.is_empty());
        assert_eq!(total, Ps::ZERO);
    }

    #[test]
    fn plans_prefer_fewer_cells_for_equal_accuracy() {
        let lib = lib();
        let plan = plan_chain(&lib, Ps::from_ns(2), Ps::ZERO).unwrap();
        assert_eq!(
            plan.len(),
            1,
            "one DLY8 beats two DLY4: got {:?}",
            plan.cells
        );
    }
}

#[cfg(test)]
mod review_tests {
    use super::*;

    #[test]
    fn absurd_targets_fail_fast_without_allocating() {
        let lib = Library::cl013g_like();
        let err = plan_chain(&lib, Ps::from_ns(10_000_000), Ps(100)).unwrap_err();
        assert!(matches!(err, SynthError::Unreachable { .. }));
    }
}
