//! Netlist optimization passes (the re-synthesis substitute).
//!
//! [`optimize`] rebuilds a netlist with constant folding, buffer and
//! double-inverter collapsing, structural de-duplication, and dead-logic
//! sweeping. It is behaviour-preserving for the zero-delay semantics (the
//! property tests in `tests/` check this on random circuits); timing is
//! re-derived afterwards by STA, mirroring a real re-synthesis step.

use crate::SynthError;
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// How an old net maps into the rebuilt netlist.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Repr {
    Const(bool),
    Net(NetId),
}

/// Rebuilds `netlist` with standard logic optimizations applied.
///
/// Preserved interface: primary inputs (same order/names), primary outputs
/// (same order/port names), and flip-flop count *for live flip-flops* (dead
/// state that cannot influence any primary output is swept).
///
/// # Errors
///
/// Returns [`SynthError::Netlist`] if the input netlist is structurally
/// invalid.
pub fn optimize(netlist: &Netlist) -> Result<Netlist, SynthError> {
    optimize_impl(netlist, false)
}

/// Like [`optimize`], but keeps every flip-flop (and its fanin cone) even
/// when its state cannot reach a primary output — required when the result
/// must stay aligned with another netlist's combinational unfolding (e.g.
/// the TDK strip-and-resynthesize attack).
///
/// # Errors
///
/// Returns [`SynthError::Netlist`] if the input netlist is structurally
/// invalid.
pub fn optimize_sequential(netlist: &Netlist) -> Result<Netlist, SynthError> {
    optimize_impl(netlist, true)
}

fn optimize_impl(netlist: &Netlist, keep_all_ffs: bool) -> Result<Netlist, SynthError> {
    netlist.validate()?;
    let live = if keep_all_ffs {
        live_cells_with_state(netlist)
    } else {
        live_cells(netlist)
    };

    let mut out = Netlist::new(netlist.name());
    let mut repr: Vec<Option<Repr>> = vec![None; netlist.net_count()];
    // Structural hashing of rebuilt gates.
    let mut cse: HashMap<(GateKind, Vec<NetId>), NetId> = HashMap::new();
    // Inverter tracking for double-inverter collapse: new net -> its
    // pre-inversion source.
    let mut inverted_from: HashMap<NetId, NetId> = HashMap::new();
    let mut const_nets: [Option<NetId>; 2] = [None, None];

    for &pi in netlist.input_nets() {
        let new = out.add_input(netlist.net(pi).name());
        repr[pi.index()] = Some(Repr::Net(new));
    }

    // Pre-create live flip-flops with placeholder D nets so combinational
    // logic can read their Q pins; rewired at the end.
    let mut ff_map: Vec<(CellId, CellId)> = Vec::new(); // (old, new)
    for &ff in netlist.dff_cells() {
        if !live.contains(&ff) {
            continue;
        }
        let cell = netlist.cell(ff);
        let placeholder = out.add_net(format!("{}_d", cell.name()));
        let q = out
            .add_dff_named(placeholder, cell.name())
            .map_err(|e| SynthError::Netlist(e.to_string()))?;
        let new_ff = out.net(q).driver().expect("dff drives q");
        repr[cell.output().index()] = Some(Repr::Net(q));
        ff_map.push((ff, new_ff));
    }

    let order = netlist
        .topo_order()
        .map_err(|e| SynthError::Netlist(e.to_string()))?;
    for cell_id in order {
        if !live.contains(&cell_id) {
            continue;
        }
        let cell = netlist.cell(cell_id);
        let ins: Vec<Repr> = cell
            .inputs()
            .iter()
            .map(|n| repr[n.index()].expect("topological order"))
            .collect();
        let folded = fold(
            cell.kind(),
            &ins,
            &mut out,
            &mut cse,
            &mut inverted_from,
            &mut const_nets,
        )?;
        repr[cell.output().index()] = Some(folded);
    }

    // Rewire flip-flop D pins.
    for (old_ff, new_ff) in ff_map {
        let d_old = netlist.cell(old_ff).inputs()[0];
        let d = materialize(
            repr[d_old.index()].expect("live ff d computed"),
            &mut out,
            &mut const_nets,
        );
        out.rewire_input(new_ff, 0, d)
            .map_err(|e| SynthError::Netlist(e.to_string()))?;
    }

    // Primary outputs.
    for (net, name) in netlist.output_ports() {
        let r = repr[net.index()].expect("po cone is live");
        let n = materialize(r, &mut out, &mut const_nets);
        out.mark_output(n, name.clone());
    }
    out.validate()?;
    // Folding emits gates eagerly, so a gate whose output was later folded
    // away is left dead; sweep it out with a verbatim live-cone copy.
    let swept = sweep_impl(&out, keep_all_ffs)?;
    swept.validate()?;
    Ok(swept)
}

/// Rebuilds a netlist keeping only cells that can influence a primary
/// output. No logic restructuring — a pure dead-code sweep.
pub fn sweep(netlist: &Netlist) -> Result<Netlist, SynthError> {
    sweep_impl(netlist, false)
}

/// Like [`sweep`], but keeps every flip-flop (and its fanin cone) even when
/// its state cannot reach a primary output. Sequential attack tooling needs
/// this: the combinational unfolding treats every flip-flop D pin as a
/// pseudo primary output.
pub fn sweep_sequential(netlist: &Netlist) -> Result<Netlist, SynthError> {
    sweep_impl(netlist, true)
}

fn sweep_impl(netlist: &Netlist, keep_all_ffs: bool) -> Result<Netlist, SynthError> {
    let live = if keep_all_ffs {
        live_cells_with_state(netlist)
    } else {
        live_cells(netlist)
    };
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &pi in netlist.input_nets() {
        map[pi.index()] = Some(out.add_input(netlist.net(pi).name()));
    }
    let mut ff_map: Vec<(CellId, CellId)> = Vec::new();
    for &ff in netlist.dff_cells() {
        if !live.contains(&ff) {
            continue;
        }
        let cell = netlist.cell(ff);
        let placeholder = out.add_net(format!("{}_d", cell.name()));
        let q = out
            .add_dff_named(placeholder, cell.name())
            .map_err(|e| SynthError::Netlist(e.to_string()))?;
        map[cell.output().index()] = Some(q);
        ff_map.push((ff, out.net(q).driver().expect("dff drives q")));
    }
    let order = netlist
        .topo_order()
        .map_err(|e| SynthError::Netlist(e.to_string()))?;
    for cell_id in order {
        if !live.contains(&cell_id) {
            continue;
        }
        let cell = netlist.cell(cell_id);
        let ins: Vec<NetId> = cell
            .inputs()
            .iter()
            .map(|n| map[n.index()].expect("topological order"))
            .collect();
        let y = out
            .add_gate_named(cell.kind(), &ins, cell.name())
            .map_err(|e| SynthError::Netlist(e.to_string()))?;
        if let Some(lib) = cell.lib() {
            let new_cell = out.net(y).driver().expect("gate drives net");
            out.bind_lib(new_cell, lib)
                .map_err(|e| SynthError::Netlist(e.to_string()))?;
        }
        map[cell.output().index()] = Some(y);
    }
    for (old_ff, new_ff) in ff_map {
        let d_old = netlist.cell(old_ff).inputs()[0];
        let d = map[d_old.index()].expect("live ff d mapped");
        out.rewire_input(new_ff, 0, d)
            .map_err(|e| SynthError::Netlist(e.to_string()))?;
    }
    for (net, name) in netlist.output_ports() {
        let n = map[net.index()].expect("po is live");
        out.mark_output(n, name.clone());
    }
    Ok(out)
}

/// Cells that can influence a primary output (traversing flip-flops).
fn live_cells(netlist: &Netlist) -> HashSet<CellId> {
    live_from_roots(netlist, netlist.output_nets())
}

/// Cells reachable backwards from primary outputs *or* any flip-flop D pin.
fn live_cells_with_state(netlist: &Netlist) -> HashSet<CellId> {
    let mut roots = netlist.output_nets();
    for &ff in netlist.dff_cells() {
        roots.push(netlist.cell(ff).output());
    }
    live_from_roots(netlist, roots)
}

fn live_from_roots(netlist: &Netlist, roots: Vec<NetId>) -> HashSet<CellId> {
    let mut live_nets: HashSet<NetId> = HashSet::new();
    let mut live: HashSet<CellId> = HashSet::new();
    let mut work: Vec<NetId> = roots;
    while let Some(net) = work.pop() {
        if !live_nets.insert(net) {
            continue;
        }
        let Some(driver) = netlist.net(net).driver() else {
            continue;
        };
        if live.insert(driver) {
            for &inp in netlist.cell(driver).inputs() {
                work.push(inp);
            }
        }
    }
    live
}

fn const_net(out: &mut Netlist, const_nets: &mut [Option<NetId>; 2], v: bool) -> NetId {
    if let Some(n) = const_nets[v as usize] {
        return n;
    }
    let n = out.add_const(v);
    const_nets[v as usize] = Some(n);
    n
}

fn materialize(r: Repr, out: &mut Netlist, const_nets: &mut [Option<NetId>; 2]) -> NetId {
    match r {
        Repr::Net(n) => n,
        Repr::Const(v) => const_net(out, const_nets, v),
    }
}

/// Folds one gate over already-resolved inputs, emitting at most one new
/// gate into `out`.
fn fold(
    kind: GateKind,
    ins: &[Repr],
    out: &mut Netlist,
    cse: &mut HashMap<(GateKind, Vec<NetId>), NetId>,
    inverted_from: &mut HashMap<NetId, NetId>,
    const_nets: &mut [Option<NetId>; 2],
) -> Result<Repr, SynthError> {
    use GateKind::*;
    let emit = |kind: GateKind,
                nets: Vec<NetId>,
                out: &mut Netlist,
                cse: &mut HashMap<(GateKind, Vec<NetId>), NetId>,
                inverted_from: &mut HashMap<NetId, NetId>|
     -> Result<Repr, SynthError> {
        // Canonicalize commutative inputs for structural hashing.
        let mut key_nets = nets.clone();
        if matches!(kind, And | Nand | Or | Nor | Xor | Xnor) {
            key_nets.sort();
        }
        if let Some(&existing) = cse.get(&(kind, key_nets.clone())) {
            return Ok(Repr::Net(existing));
        }
        let y = out
            .add_gate(kind, &nets)
            .map_err(|e| SynthError::Netlist(e.to_string()))?;
        cse.insert((kind, key_nets), y);
        if kind == Inv {
            inverted_from.insert(y, nets[0]);
        }
        Ok(Repr::Net(y))
    };

    match kind {
        Input | Dff => unreachable!("handled by the caller"),
        Const0 => Ok(Repr::Const(false)),
        Const1 => Ok(Repr::Const(true)),
        Buf => Ok(ins[0]),
        Inv => match ins[0] {
            Repr::Const(v) => Ok(Repr::Const(!v)),
            Repr::Net(n) => {
                if let Some(&src) = inverted_from.get(&n) {
                    // Double inverter collapses to the original net.
                    return Ok(Repr::Net(src));
                }
                emit(Inv, vec![n], out, cse, inverted_from)
            }
        },
        And | Nand | Or | Nor => {
            let invert_out = matches!(kind, Nand | Nor);
            let is_and = matches!(kind, And | Nand);
            // For AND-family: controlling value 0, identity 1. OR mirrors.
            let controlling = !is_and;
            let mut nets: Vec<NetId> = Vec::new();
            for &r in ins {
                match r {
                    Repr::Const(v) if v == controlling => {
                        return Ok(Repr::Const(controlling ^ invert_out));
                    }
                    Repr::Const(_) => {} // identity: drop
                    Repr::Net(n) => {
                        if !nets.contains(&n) {
                            nets.push(n);
                        }
                    }
                }
            }
            // Complementary pair check via tracked inverters.
            for &n in &nets {
                if let Some(src) = inverted_from.get(&n) {
                    if nets.contains(src) {
                        return Ok(Repr::Const(controlling ^ invert_out));
                    }
                }
            }
            match nets.len() {
                0 => Ok(Repr::Const(!controlling ^ invert_out)),
                1 => {
                    if invert_out {
                        fold(
                            Inv,
                            &[Repr::Net(nets[0])],
                            out,
                            cse,
                            inverted_from,
                            const_nets,
                        )
                    } else {
                        Ok(Repr::Net(nets[0]))
                    }
                }
                _ => emit(kind, nets, out, cse, inverted_from),
            }
        }
        Xor | Xnor => {
            let mut parity = kind == Xnor;
            let mut nets: Vec<NetId> = Vec::new();
            for &r in ins {
                match r {
                    Repr::Const(v) => parity ^= v,
                    Repr::Net(n) => {
                        // x ^ x = 0: cancel pairs.
                        if let Some(pos) = nets.iter().position(|&m| m == n) {
                            nets.swap_remove(pos);
                        } else {
                            nets.push(n);
                        }
                    }
                }
            }
            match nets.len() {
                0 => Ok(Repr::Const(parity)),
                1 => {
                    if parity {
                        fold(
                            Inv,
                            &[Repr::Net(nets[0])],
                            out,
                            cse,
                            inverted_from,
                            const_nets,
                        )
                    } else {
                        Ok(Repr::Net(nets[0]))
                    }
                }
                _ => emit(
                    if parity { Xnor } else { Xor },
                    nets,
                    out,
                    cse,
                    inverted_from,
                ),
            }
        }
        Mux2 => {
            let (in0, in1, sel) = (ins[0], ins[1], ins[2]);
            match sel {
                Repr::Const(false) => Ok(in0),
                Repr::Const(true) => Ok(in1),
                Repr::Net(s) => {
                    if in0 == in1 {
                        return Ok(in0);
                    }
                    match (in0, in1) {
                        (Repr::Const(false), Repr::Const(true)) => return Ok(Repr::Net(s)),
                        (Repr::Const(true), Repr::Const(false)) => {
                            return fold(Inv, &[Repr::Net(s)], out, cse, inverted_from, const_nets)
                        }
                        _ => {}
                    }
                    let n0 = materialize(in0, out, const_nets);
                    let n1 = materialize(in1, out, const_nets);
                    emit(Mux2, vec![n0, n1, s], out, cse, inverted_from)
                }
            }
        }
        Mux4 => {
            // Reduce via two levels of Mux2 folding.
            let lo = fold(
                Mux2,
                &[ins[0], ins[1], ins[4]],
                out,
                cse,
                inverted_from,
                const_nets,
            )?;
            let hi = fold(
                Mux2,
                &[ins[2], ins[3], ins[4]],
                out,
                cse,
                inverted_from,
                const_nets,
            )?;
            fold(Mux2, &[lo, hi, ins[5]], out, cse, inverted_from, const_nets)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;

    #[test]
    fn constant_folding_collapses_cone() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let zero = nl.add_const(false);
        let g = nl.add_gate(GateKind::And, &[a, zero]).unwrap();
        let h = nl.add_gate(GateKind::Or, &[g, a]).unwrap();
        nl.mark_output(h, "y");
        let opt = optimize(&nl).unwrap();
        // OR(0, a) = a: no gates remain.
        assert_eq!(opt.stats().gates, 0);
        assert_eq!(opt.eval_comb(&[Logic::One]), vec![Logic::One]);
        assert_eq!(opt.eval_comb(&[Logic::Zero]), vec![Logic::Zero]);
    }

    #[test]
    fn double_inverter_collapses() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let y = nl.add_gate(GateKind::Inv, &[x]).unwrap();
        let z = nl.add_gate(GateKind::Buf, &[y]).unwrap();
        nl.mark_output(z, "y");
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.stats().gates, 0);
    }

    #[test]
    fn structural_dedup_shares_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[b, a]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        nl.mark_output(y, "y");
        let opt = optimize(&nl).unwrap();
        // AND(a,b) == AND(b,a) -> XOR(x,x) = 0.
        assert_eq!(opt.stats().gates, 0);
        assert_eq!(opt.eval_comb(&[Logic::One, Logic::One]), vec![Logic::Zero]);
    }

    #[test]
    fn complementary_inputs_fold() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let y = nl.add_gate(GateKind::And, &[a, na]).unwrap();
        let z = nl.add_gate(GateKind::Or, &[a, na]).unwrap();
        nl.mark_output(y, "y");
        nl.mark_output(z, "z");
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.eval_comb(&[Logic::One]), vec![Logic::Zero, Logic::One]);
        assert_eq!(opt.eval_comb(&[Logic::Zero]), vec![Logic::Zero, Logic::One]);
        assert_eq!(opt.stats().gates, 0);
    }

    #[test]
    fn mux_with_constant_select_folds() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let one = nl.add_const(true);
        let y = nl.add_gate(GateKind::Mux2, &[a, b, one]).unwrap();
        nl.mark_output(y, "y");
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.stats().gates, 0);
        assert_eq!(opt.eval_comb(&[Logic::Zero, Logic::One]), vec![Logic::One]);
    }

    #[test]
    fn mux_as_inverter_recognized() {
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s");
        let one = nl.add_const(true);
        let zero = nl.add_const(false);
        let y = nl.add_gate(GateKind::Mux2, &[one, zero, s]).unwrap();
        nl.mark_output(y, "y");
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.stats().gates, 1, "a single inverter remains");
        assert_eq!(opt.eval_comb(&[Logic::One]), vec![Logic::Zero]);
    }

    #[test]
    fn dead_ff_swept_live_ff_kept() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let _dead_q = nl.add_dff_named(a, "dead").unwrap();
        let live_q = nl.add_dff_named(a, "live").unwrap();
        let y = nl.add_gate(GateKind::Buf, &[live_q]).unwrap();
        nl.mark_output(y, "y");
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.stats().dffs, 1);
    }

    #[test]
    fn sequential_behaviour_preserved() {
        use glitchlock_netlist::SeqState;
        // 3-bit LFSR-ish circuit.
        let mut nl = Netlist::new("t");
        let d0 = nl.add_net("d0");
        let q0 = nl.add_dff(d0).unwrap();
        let d1 = nl.add_net("d1");
        let q1 = nl.add_dff(d1).unwrap();
        let fb = nl.add_gate(GateKind::Xor, &[q0, q1]).unwrap();
        let ffs = nl.dff_cells().to_vec();
        nl.rewire_input(ffs[0], 0, fb).unwrap();
        nl.rewire_input(ffs[1], 0, q0).unwrap();
        nl.mark_output(q1, "y");
        let opt = optimize(&nl).unwrap();
        let mut s1 = SeqState::from_values(&nl, vec![Logic::One, Logic::Zero]);
        let mut s2 = SeqState::from_values(&opt, vec![Logic::One, Logic::Zero]);
        for _ in 0..8 {
            assert_eq!(s1.step(&nl, &[]), s2.step(&opt, &[]));
        }
    }

    #[test]
    fn constant_po_materialized() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[a, na]).unwrap();
        nl.mark_output(y, "y");
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.eval_comb(&[Logic::One]), vec![Logic::One]);
        assert_eq!(opt.eval_comb(&[Logic::Zero]), vec![Logic::One]);
    }
}
