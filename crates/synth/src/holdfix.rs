//! Hold fixing: pad fast paths with delay cells.
//!
//! With clock skew, a short flip-flop-to-flip-flop path can violate hold
//! (`LB_ij` in the paper's Eq. (1)). P&R flows fix this by inserting delay
//! buffers on the offending D pins — the same mechanism (and the same
//! library cells) the GK flow uses deliberately. Sharing the composer
//! keeps both honest about area cost.

use crate::{compose_delay, SynthError};
use glitchlock_netlist::Netlist;
use glitchlock_sta::{analyze, ClockModel};
use glitchlock_stdcell::{Library, Ps};

/// Report of one hold-fixing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HoldFixReport {
    /// Flip-flops that violated hold before the pass.
    pub violations_before: usize,
    /// Flip-flops still violating after the pass (0 on success).
    pub violations_after: usize,
    /// Delay cells inserted.
    pub cells_added: usize,
}

/// Inserts delay chains in front of every hold-violating flip-flop D pin
/// until the design meets hold (up to `max_rounds` refinement rounds; the
/// added delay also shifts max-arrival, so setup is re-checked and the
/// pass refuses fixes that would break it).
///
/// # Errors
///
/// Returns [`SynthError::Unreachable`] if a needed padding delay cannot be
/// composed, or [`SynthError::Netlist`] if padding a path would push its
/// max arrival past the setup deadline.
pub fn fix_hold(
    netlist: &mut Netlist,
    library: &Library,
    clock: &ClockModel,
    max_rounds: usize,
) -> Result<HoldFixReport, SynthError> {
    let mut report = HoldFixReport::default();
    let initial = analyze(netlist, library, clock);
    report.violations_before = initial.checks().iter().filter(|c| c.slack_hold < 0).count();
    report.violations_after = report.violations_before;
    if report.violations_before == 0 {
        return Ok(report);
    }
    for _round in 0..max_rounds {
        let sta = analyze(netlist, library, clock);
        let violators: Vec<_> = sta
            .checks()
            .iter()
            .filter(|c| c.slack_hold < 0)
            .map(|c| (c.ff, (-c.slack_hold) as u64, c.slack_setup))
            .collect();
        report.violations_after = violators.len();
        if violators.is_empty() {
            return Ok(report);
        }
        for (ff, shortfall, setup_slack) in violators {
            // Pad by the shortfall plus a small guard band.
            let pad = Ps(shortfall + 20);
            if setup_slack < pad.as_ps() as i64 {
                return Err(SynthError::Netlist(format!(
                    "hold fix of {pad} at {} would violate setup (slack {setup_slack}ps)",
                    netlist.cell(ff).name()
                )));
            }
            let d = netlist.cell(ff).inputs()[0];
            let (padded, cells, _) = compose_delay(netlist, library, d, pad, Ps(40))?;
            report.cells_added += cells.len();
            netlist
                .rewire_input(ff, 0, padded)
                .map_err(|e| SynthError::Netlist(e.to_string()))?;
        }
    }
    let sta = analyze(netlist, library, clock);
    report.violations_after = sta.checks().iter().filter(|c| c.slack_hold < 0).count();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    /// A fast FF→FF path with a late-capturing clock: a hold violation.
    fn skewed() -> (Netlist, glitchlock_netlist::CellId, ClockModel) {
        let mut nl = Netlist::new("h");
        let a = nl.add_input("a");
        let q1 = nl.add_dff_named(a, "ff1").unwrap();
        let buf = nl.add_gate(GateKind::Buf, &[q1]).unwrap();
        let q2 = nl.add_dff_named(buf, "ff2").unwrap();
        nl.mark_output(q2, "y");
        let ff2 = nl.dff_cells()[1];
        // Capture clock arrives 400ps late: LB = 400 + 35 = 435 >
        // clk_to_q(160) + BUF(55) = 215 -> hold violated by 220ps.
        let clock = ClockModel::new(Ps::from_ns(3)).with_skew(ff2, Ps(400));
        (nl, ff2, clock)
    }

    #[test]
    fn pads_until_hold_met() {
        let lib = Library::cl013g_like();
        let (mut nl, ff2, clock) = skewed();
        let before = analyze(&nl, &lib, &clock);
        assert!(before.check_of(ff2).unwrap().slack_hold < 0);
        let report = fix_hold(&mut nl, &lib, &clock, 4).unwrap();
        assert_eq!(report.violations_before, 1);
        assert_eq!(report.violations_after, 0);
        assert!(report.cells_added >= 1);
        let after = analyze(&nl, &lib, &clock);
        assert!(after.all_met(), "both setup and hold must now hold");
    }

    #[test]
    fn clean_design_untouched() {
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        nl.mark_output(q, "y");
        let clock = ClockModel::new(Ps::from_ns(3));
        let cells_before = nl.cell_count();
        let report = fix_hold(&mut nl, &lib, &clock, 4).unwrap();
        assert_eq!(report.violations_before, 0);
        assert_eq!(report.cells_added, 0);
        assert_eq!(nl.cell_count(), cells_before);
    }

    #[test]
    fn refuses_fix_that_would_break_setup() {
        // A capture flip-flop with *diverging* paths: the fast branch
        // violates hold under skew while the slow branch already sits past
        // the setup deadline — no padding can fix one without the other.
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("conflict");
        let a = nl.add_input("a");
        let q1 = nl.add_dff_named(a, "ff1").unwrap();
        let fast = nl.add_gate(GateKind::Buf, &[q1]).unwrap();
        let mut slow = q1;
        for _ in 0..2 {
            slow = nl.add_gate(GateKind::Buf, &[slow]).unwrap();
            let c = nl.net(slow).driver().unwrap();
            nl.bind_lib(c, lib.by_name("DLY8X1").unwrap()).unwrap();
        }
        let d = nl.add_gate(GateKind::And, &[fast, slow]).unwrap();
        let q2 = nl.add_dff_named(d, "ff2").unwrap();
        nl.mark_output(q2, "y");
        let ff2 = nl.dff_cells()[1];
        let clock = ClockModel::new(Ps::from_ns(3)).with_skew(ff2, Ps(400));
        let err = fix_hold(&mut nl, &lib, &clock, 4).unwrap_err();
        assert!(matches!(err, SynthError::Netlist(_)));
    }

    #[test]
    fn behaviour_preserved_by_padding() {
        use glitchlock_netlist::{Logic, SeqState};
        let lib = Library::cl013g_like();
        let (mut nl, _, clock) = skewed();
        let reference = nl.clone();
        fix_hold(&mut nl, &lib, &clock, 4).unwrap();
        let mut a = SeqState::reset(&reference);
        let mut b = SeqState::reset(&nl);
        for v in [Logic::One, Logic::Zero, Logic::One, Logic::One] {
            assert_eq!(a.step(&reference, &[v]), b.step(&nl, &[v]));
        }
    }
}
