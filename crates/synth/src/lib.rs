//! Synthesis-lite for `glitchlock`: delay-element mapping and netlist
//! optimization (the Design Compiler substitute).
//!
//! The paper inserts the GK's delay elements by "setting design constraints
//! on the path … Design Compiler maps delay elements from the library for
//! satisfying the constraints" (Sec. IV-B), and observes that the resulting
//! chains of discrete library cells dominate the area overhead (Sec. VI).
//! [`compose_delay`] reproduces exactly that mechanism: a greedy+DP
//! composition of dedicated delay cells (`DLY8…DLY1`) and buffers that hits
//! a requested path delay within a tolerance, charged at real library area.
//!
//! [`optimize`] provides the re-synthesis pass used before encryption and by
//! the removal attack's "remove TDB, re-synthesize, re-attack" flow:
//! constant folding, buffer/double-inverter collapsing, structural
//! de-duplication, and dead-logic sweeping, as a netlist rebuild.

#![deny(missing_docs)]

mod chain;
mod error;
mod holdfix;
mod overhead;
mod passes;
mod resize;

pub use chain::{compose_delay, plan_chain, trace_delay_chain, ChainPlan};
pub use error::SynthError;
pub use holdfix::{fix_hold, HoldFixReport};
pub use overhead::Overhead;
pub use passes::{optimize, optimize_sequential, sweep, sweep_sequential};
pub use resize::{upsize_high_fanout, ResizeReport};
