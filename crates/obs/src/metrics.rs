//! Typed metrics: counters, gauges, histograms in a thread-safe registry.
//!
//! Handles are cheap `Arc` clones; hot paths resolve a handle once (e.g.
//! at scratch-buffer allocation) and then pay a single relaxed atomic add
//! per batch. The registry keys metrics by name in a `BTreeMap` so every
//! snapshot iterates in a deterministic order — golden traces and
//! determinism tests depend on this (a `HashMap` here would leak the
//! per-process SipHash seed into emitted artifacts).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing event count. Cloning shares the underlying
/// cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point level (stored as `f64` bits in an
/// `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistInner {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Aggregating histogram over `u64` samples (nanoseconds by convention:
/// names end in `_ns`). Tracks count/sum/min/max — enough for reports and
/// overhead budgets without bucket bookkeeping on the hot path.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<HistInner>>);

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let mut h = self.0.lock().expect("histogram poisoned");
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram poisoned").count
    }

    /// Folds another histogram's aggregate into this one (used when a
    /// scoped per-job registry is merged back into its parent).
    pub fn absorb(&self, count: u64, sum: u64, min: u64, max: u64) {
        if count == 0 {
            return;
        }
        let mut h = self.0.lock().expect("histogram poisoned");
        if h.count == 0 {
            h.min = min;
            h.max = max;
        } else {
            h.min = h.min.min(min);
            h.max = h.max.max(max);
        }
        h.count += count;
        h.sum += sum;
    }

    fn snapshot(&self) -> MetricValue {
        let h = self.0.lock().expect("histogram poisoned");
        MetricValue::Hist {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Histogram),
}

/// A point-in-time reading of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram aggregate.
    Hist {
        /// Sample count.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Smallest sample (0 when empty).
        min: u64,
        /// Largest sample (0 when empty).
        max: u64,
    },
}

/// Name → metric map behind a mutex. Lookups are rare (handles are
/// cached); snapshots are deterministic (BTreeMap order).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// The counter registered under `name`, creating it on first use. If
    /// the name is already taken by a different metric kind, a detached
    /// (unregistered) handle is returned so callers never panic mid-run.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// The gauge registered under `name` (see [`Registry::counter`] for
    /// the kind-collision rule).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// The histogram registered under `name` (see [`Registry::counter`]
    /// for the kind-collision rule).
    pub fn hist(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Histogram::default()))
        {
            Metric::Hist(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// Folds a snapshot (typically from a scoped per-job registry) into
    /// this registry: counters add, gauges last-write-win, histograms
    /// merge their aggregates. Kind collisions follow the
    /// [`Registry::counter`] rule — the snapshot value is dropped rather
    /// than panicking.
    pub fn merge_snapshot(&self, snapshot: &[(String, MetricValue)]) {
        for (name, value) in snapshot {
            match value {
                MetricValue::Counter(v) => self.counter(name).add(*v),
                MetricValue::Gauge(v) => self.gauge(name).set(*v),
                MetricValue::Hist {
                    count,
                    sum,
                    min,
                    max,
                } => self.hist(name).absorb(*count, *sum, *min, *max),
            }
        }
    }

    /// All registered metrics in name order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().expect("registry poisoned");
        map.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Hist(h) => h.snapshot(),
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let r = Registry::default();
        r.counter("zeta").incr();
        r.gauge("alpha").set(1.5);
        r.hist("mid").observe(10);
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn kind_collision_returns_detached_handle() {
        let r = Registry::default();
        r.counter("x").incr();
        let g = r.gauge("x");
        g.set(9.0);
        assert_eq!(r.snapshot()[0].1, MetricValue::Counter(1));
    }

    #[test]
    fn merge_snapshot_adds_counters_and_merges_hists() {
        let a = Registry::default();
        a.counter("c").add(3);
        a.gauge("g").set(2.0);
        a.hist("h").observe(10);
        let b = Registry::default();
        b.counter("c").add(4);
        b.gauge("g").set(9.0);
        b.hist("h").observe(2);
        b.hist("h").observe(20);
        a.merge_snapshot(&b.snapshot());
        let got: std::collections::BTreeMap<String, MetricValue> =
            a.snapshot().into_iter().collect();
        assert_eq!(got["c"], MetricValue::Counter(7));
        assert_eq!(got["g"], MetricValue::Gauge(9.0));
        assert_eq!(
            got["h"],
            MetricValue::Hist {
                count: 3,
                sum: 32,
                min: 2,
                max: 20
            }
        );
    }

    #[test]
    fn histogram_tracks_min_max() {
        let h = Histogram::default();
        h.observe(5);
        h.observe(2);
        h.observe(9);
        assert_eq!(
            h.snapshot(),
            MetricValue::Hist {
                count: 3,
                sum: 16,
                min: 2,
                max: 9
            }
        );
    }
}
