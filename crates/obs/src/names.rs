//! The canonical metric-name registry.
//!
//! Every instrumentation site in the workspace registers under one of
//! these names, so bench snapshots, live `--metrics` reports, and traced
//! runs are comparable by string equality. [`expected_sites`] lists, per
//! CLI domain, the probes that any healthy run of that domain must fire
//! at least once — `glk trace-check --sites <domain>` fails when one
//! reads zero (dead-probe detection).

/// DIP-eliminating iterations of the oracle-guided SAT attack.
pub const SAT_ITERATIONS: &str = "sat.iterations";
/// Distinguishing input patterns found.
pub const SAT_DIPS: &str = "sat.dips";
/// CDCL solver invocations (find-DIP + key extraction).
pub const SAT_SOLVER_CALLS: &str = "sat.solver.calls";
/// Per-call solver wall time (histogram).
pub const SAT_SOLVER_NS: &str = "sat.solver.ns";
/// CNF variable count after the last solver call (gauge).
pub const SAT_VARS: &str = "sat.vars";
/// CNF clause count after the last solver call (gauge).
pub const SAT_CLAUSES: &str = "sat.clauses";
/// CDCL conflicts analyzed across solver calls.
pub const SAT_CONFLICTS: &str = "sat.conflicts";
/// Literals propagated across solver calls.
pub const SAT_PROPAGATIONS: &str = "sat.propagations";
/// Solver restarts across solver calls.
pub const SAT_RESTARTS: &str = "sat.restarts";
/// Learnt clauses currently kept after the last solver call (gauge).
pub const SAT_LEARNT: &str = "sat.learnt";
/// Learnt-clause database reductions across solver calls.
pub const SAT_REDUCTIONS: &str = "sat.reductions";
/// Mean learnt-clause LBD after the last solver call, in thousandths
/// (gauge; integer so traces stay deterministic).
pub const SAT_MEAN_LBD_MILLI: &str = "sat.mean_lbd_milli";

/// AppSAT rounds (DIP burst + probe batch).
pub const APPSAT_ROUNDS: &str = "appsat.rounds";
/// AppSAT DIPs added.
pub const APPSAT_DIPS: &str = "appsat.dips";
/// AppSAT random probe patterns evaluated.
pub const APPSAT_PROBES: &str = "appsat.probes";

/// Sequential (unrolled) SAT attack iterations.
pub const SEQSAT_ITERATIONS: &str = "seqsat.iterations";
/// Sequential SAT solver invocations.
pub const SEQSAT_SOLVER_CALLS: &str = "seqsat.solver.calls";

/// Patterns sampled by the removal attack's signal-skew scan.
pub const REMOVAL_SKEW_SAMPLES: &str = "removal.skew.samples";
/// Point-function candidates located by skew.
pub const REMOVAL_CANDIDATES: &str = "removal.candidates";
/// Structural GK sites located (MUX+XOR/XNOR motif).
pub const REMOVAL_GK_SITES: &str = "removal.gk_sites";
/// TDK delay buffers stripped.
pub const REMOVAL_TDK_STRIPPED: &str = "removal.tdk_stripped";

/// GK sites probed by the scan-chain hypothesis attack.
pub const SCAN_SITES: &str = "scan.sites";
/// Scan patterns evaluated against buffer/inverter hypotheses.
pub const SCAN_SAMPLES: &str = "scan.samples";
/// Sites resolved to a consistent buffer/inverter model.
pub const SCAN_RESOLVED: &str = "scan.resolved";

/// Timed characteristic-function frames built.
pub const TCF_FRAMES: &str = "tcf.frames";
/// Frames whose capture is undefined (glitch-masked).
pub const TCF_UNDEFINED: &str = "tcf.undefined";

/// Enhanced (locate-replace-SAT) attack runs.
pub const ENHANCED_RUNS: &str = "enhanced.runs";

/// Oracle queries answered (scalar + packed lanes).
pub const ORACLE_QUERIES: &str = "oracle.queries";

/// Gate evaluations: packed adds `instrs × 64` per pass, scalar adds the
/// combinational-cell count per pass, so the two paths agree pattern for
/// pattern.
pub const EVAL_GATE_EVALS: &str = "eval.gate_evals";
/// 64-lane packed evaluation passes.
pub const EVAL_PACKED_PASSES: &str = "eval.packed_passes";
/// Scalar (`eval_nets`) evaluation passes.
pub const EVAL_SCALAR_PASSES: &str = "eval.scalar_passes";

/// Heap events popped by the event-driven simulator.
pub const SIM_EVENTS: &str = "sim.events";
/// Net value changes applied (waveform edges).
pub const SIM_NET_CHANGES: &str = "sim.net_changes";
/// Events swallowed by inertial cancellation.
pub const SIM_CANCELLED: &str = "sim.cancelled";
/// Clock edges sampled.
pub const SIM_CLOCK_EDGES: &str = "sim.clock_edges";
/// Glitch pulses observed (consecutive edges closer than the observation
/// window).
pub const SIM_GLITCHES: &str = "sim.glitches";
/// Setup/hold violations recorded.
pub const SIM_VIOLATIONS: &str = "sim.violations";

/// Designs locked (any scheme, GK included).
pub const LOCK_DESIGNS: &str = "lock.designs";
/// Key bits inserted across schemes.
pub const LOCK_KEYBITS: &str = "lock.keybits";
/// GK candidate sites accepted by the Eqs. (1)–(6) window checks.
pub const LOCK_GK_FEASIBLE: &str = "lock.gk.sites.feasible";
/// GK candidate sites rejected, any verdict.
pub const LOCK_GK_REJECTED: &str = "lock.gk.sites.rejected";
/// Glitch key-gates actually inserted.
pub const LOCK_GK_INSERTED: &str = "lock.gk.inserted";
/// KEYGEN macros built (≤ inserted when shared).
pub const LOCK_GK_KEYGENS: &str = "lock.gk.keygens";

/// Campaign jobs expanded from the spec and handed to the pool.
pub const JOBS_SCHEDULED: &str = "jobs.scheduled";
/// Campaign jobs that ran to completion (any verdict, including skips).
pub const JOBS_COMPLETED: &str = "jobs.completed";
/// Job attempts beyond the first (bounded-retry re-executions).
pub const JOBS_RETRIES: &str = "jobs.retries";
/// Jobs killed at their per-job wall-clock timeout.
pub const JOBS_TIMEOUTS: &str = "jobs.timeouts";
/// Jobs that exhausted their retry budget.
pub const JOBS_FAILURES: &str = "jobs.failures";
/// Jobs skipped on `--resume` because the journal already records them.
pub const JOBS_RESUME_SKIPS: &str = "jobs.resume_skips";

/// Client connections accepted by the `glk serve` daemon.
pub const SERVE_CONNECTIONS: &str = "serve.connections";
/// Requests parsed off connections (every op, including rejected ones).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Responses written back to clients (busy and error replies included).
pub const SERVE_RESPONSES: &str = "serve.responses";
/// Explicit `busy` responses (in-flight window or batcher queue full).
pub const SERVE_BUSY: &str = "serve.busy";
/// Typed error responses (bad frames, bad JSON, unknown designs, …).
pub const SERVE_ERRORS: &str = "serve.errors";
/// Connections dropped mid-request (torn frame, reset, write failure).
pub const SERVE_DISCONNECTS: &str = "serve.disconnects";
/// Designs loaded into the oracle table.
pub const SERVE_DESIGNS: &str = "serve.designs";
/// Oracle patterns answered through the batcher (single + bulk + sweep).
pub const SERVE_ORACLE_PATTERNS: &str = "serve.oracle.patterns";
/// Batcher flushes (each one or more 64-lane packed passes).
pub const SERVE_ORACLE_BATCHES: &str = "serve.oracle.batches";
/// Work items coalesced into a flush beyond the first — lanes filled by
/// *other* connections' queries riding the same packed pass.
pub const SERVE_ORACLE_COALESCED: &str = "serve.oracle.coalesced";
/// Lock/attack/campaign jobs accepted by the daemon.
pub const SERVE_JOBS: &str = "serve.jobs";
/// Jobs hard-killed at the server's job timeout.
pub const SERVE_JOB_TIMEOUTS: &str = "serve.jobs.timeouts";

/// Per-request-type counter name (`serve.req.<op>`), one per protocol op.
pub fn serve_req(op: &str) -> String {
    format!("serve.req.{op}")
}

/// Per-client counter name (`serve.client.<n>.requests`), keyed by the
/// daemon's connection sequence number.
pub fn serve_client_requests(client: u64) -> String {
    format!("serve.client.{client}.requests")
}

/// Dataflow analysis runs (one per `AnalysisFacts` computation).
pub const ANALYSIS_RUNS: &str = "analysis.runs";
/// Worklist transfer-function applications summed over all domains.
pub const ANALYSIS_ITERATIONS: &str = "analysis.iterations";
/// Nets covered by a dataflow run (per run, not per domain).
pub const ANALYSIS_NETS: &str = "analysis.nets";
/// Key bits tracked by the taint domains.
pub const ANALYSIS_KEY_BITS: &str = "analysis.key_bits";
/// Nets forced up the lattice by widening (deep sequential feedback).
pub const ANALYSIS_WIDENED: &str = "analysis.widened";

/// Removal-attack point-function candidates discarded because no key
/// taint reaches them.
pub const REMOVAL_TAINT_PRUNED: &str = "removal.taint_pruned";

/// Corruption-score computations (one per locked design scored).
pub const COUNT_RUNS: &str = "count.runs";
/// Individual scores produced (err / dip / wrong-keys, skipped excluded).
pub const COUNT_SCORES: &str = "count.scores";
/// SAT solver invocations spent in hash-count cell enumeration.
pub const COUNT_SOLVER_CALLS: &str = "count.solver.calls";
/// Random XOR parity rows drawn and encoded onto miter CNFs.
pub const COUNT_XOR_ROWS: &str = "count.xor_rows";
/// Exhaustive ground-truth sweeps (one per key value swept).
pub const COUNT_EXHAUSTIVE_SWEEPS: &str = "count.exhaustive.sweeps";

/// Fuzz cases executed.
pub const FUZZ_CASES: &str = "fuzz.cases";
/// Referee verdicts returned (pass + skip + fail).
pub const FUZZ_VERDICTS: &str = "fuzz.verdicts";
/// Referee passes.
pub const FUZZ_PASSES: &str = "fuzz.passes";
/// Referee skips.
pub const FUZZ_SKIPS: &str = "fuzz.skips";
/// Failures recorded (after shrinking).
pub const FUZZ_FAILURES: &str = "fuzz.failures";
/// Shrink-oracle calls spent minimizing failures.
pub const FUZZ_SHRINK_STEPS: &str = "fuzz.shrink_steps";
/// Throughput gauge (volatile; excluded from determinism checks).
pub const FUZZ_CASES_PER_SEC: &str = "fuzz.cases_per_sec";

/// Probes that must be non-zero after any healthy run of the domain.
/// `None` for unknown domains.
pub fn expected_sites(domain: &str) -> Option<&'static [&'static str]> {
    match domain {
        // The exact SAT attack queries the oracle one DIP at a time, so
        // only the scalar evaluation path fires (packed is for batches).
        "attack" => Some(&[
            SAT_ITERATIONS,
            SAT_DIPS,
            SAT_SOLVER_CALLS,
            SAT_PROPAGATIONS,
            ORACLE_QUERIES,
            EVAL_GATE_EVALS,
            EVAL_SCALAR_PASSES,
        ]),
        "sim" => Some(&[
            SIM_EVENTS,
            SIM_NET_CHANGES,
            SIM_CLOCK_EDGES,
            EVAL_SCALAR_PASSES,
        ]),
        "lock-gk" => Some(&[
            LOCK_DESIGNS,
            LOCK_GK_FEASIBLE,
            LOCK_GK_INSERTED,
            LOCK_GK_KEYGENS,
        ]),
        "fuzz" => Some(&[
            FUZZ_CASES,
            FUZZ_VERDICTS,
            FUZZ_PASSES,
            LOCK_DESIGNS,
            EVAL_GATE_EVALS,
            EVAL_SCALAR_PASSES,
            EVAL_PACKED_PASSES,
            SIM_EVENTS,
        ]),
        // `glk analyze` always runs every domain over at least one key
        // bit (analyzing an unkeyed netlist is legal but not what the
        // gate traces). `analysis.widened` stays off the list: it is
        // legitimately zero on shallow or combinational designs.
        "analyze" => Some(&[
            ANALYSIS_RUNS,
            ANALYSIS_ITERATIONS,
            ANALYSIS_NETS,
            ANALYSIS_KEY_BITS,
        ]),
        // Any campaign locks designs and evaluates gates; per-job scoped
        // snapshots are folded back into the campaign collector, so these
        // read non-zero in the trace regardless of the attack mix.
        "campaign" => Some(&[
            JOBS_SCHEDULED,
            JOBS_COMPLETED,
            LOCK_DESIGNS,
            EVAL_GATE_EVALS,
        ]),
        // Any healthy daemon session accepts a connection, answers
        // requests, loads a design, and pushes oracle patterns through the
        // batcher. Busy/error/timeout counters are legitimately zero on a
        // clean session and stay off the list.
        "serve" => Some(&[
            SERVE_CONNECTIONS,
            SERVE_REQUESTS,
            SERVE_RESPONSES,
            SERVE_DESIGNS,
            SERVE_ORACLE_PATTERNS,
            SERVE_ORACLE_BATCHES,
        ]),
        // `glk count` always runs both the exhaustive sweep and the
        // estimator on its (small) gate designs. `count.xor_rows` stays
        // off the list: every projected space of the traced design may
        // legitimately fit under the pivot, in which case base
        // enumeration is exact and no hash round ever runs.
        "count" => Some(&[
            COUNT_RUNS,
            COUNT_SCORES,
            COUNT_SOLVER_CALLS,
            COUNT_EXHAUSTIVE_SWEEPS,
            EVAL_GATE_EVALS,
            EVAL_PACKED_PASSES,
        ]),
        _ => None,
    }
}

/// Every domain [`expected_sites`] knows about.
pub const DOMAINS: [&str; 8] = [
    "attack", "sim", "lock-gk", "analyze", "fuzz", "campaign", "serve", "count",
];
