//! Trace schema validation and golden-trace normalization.
//!
//! The trace schema is deliberately small: every line is a JSON object
//! with a string `kind`, a string `name`, and a non-negative numeric `ts`
//! (nanoseconds, non-decreasing within a file). Metric lines (`kind` =
//! `counter` | `gauge` | `hist`) additionally carry `value` (or `count`
//! for histograms), which is what dead-probe detection reads.

use crate::json::{self, Value};
use std::collections::BTreeMap;

/// Keys that hold wall-clock-dependent values on *every* line.
const VOLATILE_KEYS: [&str; 5] = ["ts", "dur_ns", "sum_ns", "min_ns", "max_ns"];

/// Aggregate view of a validated trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Validated line count.
    pub lines: usize,
    /// Line count per `kind`.
    pub kinds: BTreeMap<String, usize>,
    /// Final metric values by name: counter/gauge `value`s, histogram
    /// `count`s.
    pub metrics: BTreeMap<String, f64>,
}

/// Validates one trace line against the schema.
///
/// # Errors
///
/// Returns a message describing the first schema violation.
pub fn validate_line(line: &str) -> Result<Value, String> {
    let v = json::parse(line)?;
    if !matches!(v, Value::Obj(_)) {
        return Err("line is not a JSON object".to_string());
    }
    match v.get("kind").and_then(Value::as_str) {
        Some(k) if !k.is_empty() => {}
        _ => return Err("missing or non-string `kind`".to_string()),
    }
    if v.get("name").and_then(Value::as_str).is_none() {
        return Err("missing or non-string `name`".to_string());
    }
    match v.get("ts").and_then(Value::as_num) {
        Some(ts) if ts >= 0.0 => {}
        _ => return Err("missing, non-numeric, or negative `ts`".to_string()),
    }
    Ok(v)
}

/// Validates a whole JSONL trace: every line parses against the schema
/// and timestamps never decrease.
///
/// # Errors
///
/// Returns `"line N: reason"` for the first offending line.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut last_ts = 0.0f64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = v.get("kind").and_then(Value::as_str).expect("validated");
        let name = v.get("name").and_then(Value::as_str).expect("validated");
        let ts = v.get("ts").and_then(Value::as_num).expect("validated");
        if ts < last_ts {
            return Err(format!(
                "line {}: ts went backwards ({ts} after {last_ts})",
                i + 1
            ));
        }
        last_ts = ts;
        summary.lines += 1;
        *summary.kinds.entry(kind.to_string()).or_insert(0) += 1;
        let metric_value = match kind {
            "counter" | "gauge" => v.get("value").and_then(Value::as_num),
            "hist" => v.get("count").and_then(Value::as_num),
            _ => None,
        };
        if let Some(value) = metric_value {
            summary.metrics.insert(name.to_string(), value);
        }
    }
    Ok(summary)
}

/// True when `name` names a timing-derived metric whose *value* is
/// volatile (nanosecond histograms/gauges, rates, elapsed clocks).
pub fn volatile_metric(name: &str) -> bool {
    name.ends_with("_ns")
        || name.ends_with(".ns")
        || name.ends_with("per_sec")
        || name.ends_with("ns_per_iter")
        || name.contains("elapsed")
}

/// Normalizes one validated trace line for golden comparison: zeroes
/// timestamp/duration keys everywhere and the `value`/`count` of
/// timing-derived metrics, then re-renders canonically (sorted keys).
///
/// # Errors
///
/// Propagates schema violations from [`validate_line`].
pub fn normalize_for_golden(line: &str) -> Result<String, String> {
    let mut v = validate_line(line)?;
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .expect("validated")
        .to_string();
    for key in VOLATILE_KEYS {
        if let Some(slot) = v.get_mut(key) {
            *slot = Value::Num(0.0);
        }
    }
    if volatile_metric(&name) {
        for key in ["value", "count"] {
            if let Some(slot) = v.get_mut(key) {
                *slot = Value::Num(0.0);
            }
        }
    }
    Ok(v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_schema_lines_and_summarizes() {
        let text = "\
{\"kind\":\"dip\",\"name\":\"sat\",\"ts\":10,\"iter\":1}\n\
{\"kind\":\"counter\",\"name\":\"sat.dips\",\"ts\":20,\"value\":1}\n";
        let s = check_trace(text).expect("valid");
        assert_eq!(s.lines, 2);
        assert_eq!(s.kinds.get("dip"), Some(&1));
        assert_eq!(s.metrics.get("sat.dips"), Some(&1.0));
    }

    #[test]
    fn rejects_missing_fields_and_time_travel() {
        assert!(validate_line("{\"name\":\"x\",\"ts\":1}").is_err());
        assert!(validate_line("{\"kind\":\"x\",\"ts\":1}").is_err());
        assert!(validate_line("{\"kind\":\"x\",\"name\":\"y\"}").is_err());
        assert!(validate_line("not json").is_err());
        let back = "\
{\"kind\":\"a\",\"name\":\"n\",\"ts\":10}\n\
{\"kind\":\"a\",\"name\":\"n\",\"ts\":5}\n";
        assert!(check_trace(back).is_err());
    }

    #[test]
    fn normalization_zeroes_volatile_fields_only() {
        let line =
            "{\"kind\":\"span\",\"name\":\"attack.sat\",\"ts\":123456,\"dur_ns\":999,\"iters\":4}";
        let n = normalize_for_golden(line).expect("valid");
        assert_eq!(
            n,
            "{\"dur_ns\":0,\"iters\":4,\"kind\":\"span\",\"name\":\"attack.sat\",\"ts\":0}"
        );
        let hist = "{\"kind\":\"hist\",\"name\":\"sat.solver.ns\",\"ts\":5,\"count\":3,\"sum_ns\":7,\"min_ns\":1,\"max_ns\":4}";
        let n = normalize_for_golden(hist).expect("valid");
        assert!(n.contains("\"count\":0"), "{n}");
        let stable = "{\"kind\":\"counter\",\"name\":\"sat.dips\",\"ts\":5,\"value\":7}";
        let n = normalize_for_golden(stable).expect("valid");
        assert!(n.contains("\"value\":7"), "{n}");
    }
}
