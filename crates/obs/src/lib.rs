//! # glitchlock-obs
//!
//! Dependency-free structured tracing + metrics for the glitchlock
//! workspace (the same no-external-deps rule as `glitchlock-prng`).
//!
//! Three layers:
//!
//! * **Metrics** — typed [`Counter`]s, [`Gauge`]s and [`Histogram`]s in a
//!   thread-safe, deterministically ordered [`Registry`]. Handles are
//!   `Arc` clones; hot paths cache one and pay a relaxed atomic add per
//!   batch. Always on — counting is cheap enough to never gate.
//! * **Tracing** — [`Event`]s (JSON lines with fixed `kind`/`name`/`ts`
//!   leaders) and [`SpanGuard`]s flowing into a [`Sink`]. Off by default:
//!   [`event`] returns an inert builder until a sink is installed, so
//!   un-traced runs pay one atomic load per would-be event.
//! * **Reports** — an end-of-run [`MetricsReport`] rendered as text or
//!   JSON, plus [`schema`] validation/normalization for golden-trace
//!   tests and `glk trace-check`.
//!
//! The process has one global collector ([`global`]); tests wanting
//! isolation run under a thread-scoped one ([`scoped`]):
//!
//! ```rust
//! use glitchlock_obs as obs;
//! use std::sync::Arc;
//!
//! let mine = Arc::new(obs::Collector::new());
//! let evals = obs::scoped(&mine, || {
//!     obs::add(obs::names::EVAL_GATE_EVALS, 64);
//!     obs::counter(obs::names::EVAL_GATE_EVALS).get()
//! });
//! assert_eq!(evals, 64);
//! ```

#![warn(missing_docs)]

mod collector;
mod event;
pub mod json;
mod metrics;
pub mod names;
mod report;
pub mod schema;
mod sink;

pub use collector::{Collector, SharedCollector};
pub use event::{Event, FieldValue};
pub use metrics::{Counter, Gauge, Histogram, MetricValue, Registry};
pub use report::MetricsReport;
pub use sink::{JsonlSink, MemSink, NullSink, Sink};

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static GLOBAL: OnceLock<SharedCollector> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<SharedCollector>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide collector (created on first use).
pub fn global() -> &'static SharedCollector {
    GLOBAL.get_or_init(|| Arc::new(Collector::new()))
}

/// The collector in effect on this thread: the innermost [`scoped`] one,
/// else the global.
pub fn current() -> SharedCollector {
    SCOPED
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| global().clone())
}

/// Runs `f` with `collector` as this thread's current collector. Scopes
/// nest; the previous collector is restored even if `f` panics.
pub fn scoped<T>(collector: &SharedCollector, f: impl FnOnce() -> T) -> T {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SCOPED.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    SCOPED.with(|s| s.borrow_mut().push(collector.clone()));
    let _guard = PopOnDrop;
    f()
}

/// The counter registered under `name` in the current collector.
pub fn counter(name: &str) -> Counter {
    current().counter(name)
}

/// Adds `n` to the counter `name` (one registry lookup; hot paths should
/// cache the handle from [`counter`] instead).
pub fn add(name: &str, n: u64) {
    current().counter(name).add(n);
}

/// Adds 1 to the counter `name`.
pub fn incr(name: &str) {
    add(name, 1);
}

/// Sets the gauge `name`.
pub fn gauge_set(name: &str, v: f64) {
    current().gauge(name).set(v);
}

/// Records one sample in the histogram `name`.
pub fn observe(name: &str, v: u64) {
    current().hist(name).observe(v);
}

/// True when the current collector has a live sink.
pub fn trace_enabled() -> bool {
    current().tracing()
}

/// Starts building an event. Inert (fields discarded) when tracing is
/// off, so call sites need no `if` guards.
pub fn event(kind: &str, name: &str) -> EventBuilder {
    let collector = current();
    if collector.tracing() {
        let ts = collector.now_ns();
        EventBuilder {
            target: Some((collector, Event::new(kind, name, ts))),
        }
    } else {
        EventBuilder { target: None }
    }
}

/// Fluent event construction; see [`event`].
#[must_use = "call .emit() to send the event"]
pub struct EventBuilder {
    target: Option<(SharedCollector, Event)>,
}

impl EventBuilder {
    /// Appends an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        if let Some((_, e)) = self.target.as_mut() {
            e.push(key, FieldValue::U64(v));
        }
        self
    }

    /// Appends a signed integer field.
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        if let Some((_, e)) = self.target.as_mut() {
            e.push(key, FieldValue::I64(v));
        }
        self
    }

    /// Appends a float field.
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        if let Some((_, e)) = self.target.as_mut() {
            e.push(key, FieldValue::F64(v));
        }
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        if let Some((_, e)) = self.target.as_mut() {
            e.push(key, FieldValue::Bool(v));
        }
        self
    }

    /// Appends a string field. The value is only materialized when
    /// tracing is on (take care to keep argument construction cheap, or
    /// pass a closure via [`EventBuilder::str_with`]).
    pub fn str(mut self, key: &str, v: impl Into<String>) -> Self {
        if let Some((_, e)) = self.target.as_mut() {
            e.push(key, FieldValue::Str(v.into()));
        }
        self
    }

    /// Appends a lazily computed string field — `f` only runs when the
    /// event will actually be emitted.
    pub fn str_with(mut self, key: &str, f: impl FnOnce() -> String) -> Self {
        if let Some((_, e)) = self.target.as_mut() {
            e.push(key, FieldValue::Str(f()));
        }
        self
    }

    /// Sends the event to the current sink.
    pub fn emit(self) {
        if let Some((collector, event)) = self.target {
            collector.emit(&event);
        }
    }
}

/// Opens a span: on drop it records the duration in the histogram
/// `span.<name>.ns` and (when tracing) emits a `span` event carrying
/// `dur_ns`.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard {
        name: name.to_string(),
        collector: current(),
        start: Instant::now(),
    }
}

/// Guard returned by [`span`].
#[must_use = "a span measures until dropped"]
pub struct SpanGuard {
    name: String,
    collector: SharedCollector,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.collector
            .hist(&format!("span.{}.ns", self.name))
            .observe(dur);
        if self.collector.tracing() {
            let mut e = Event::new("span", self.name.clone(), self.collector.now_ns());
            e.push("dur_ns", FieldValue::U64(dur));
            self.collector.emit(&e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_collector_isolates_counters() {
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        scoped(&a, || add("x", 2));
        scoped(&b, || {
            add("x", 5);
            // Nested scope shadows the outer one.
            scoped(&a, || add("x", 1));
        });
        assert_eq!(a.counter("x").get(), 3);
        assert_eq!(b.counter("x").get(), 5);
    }

    #[test]
    fn events_flow_to_mem_sink_with_monotonic_ts() {
        let mem = Arc::new(MemSink::default());
        let c = Arc::new(Collector::with_sink(Box::new(mem.clone())));
        scoped(&c, || {
            event("dip", "sat").u64("iter", 1).emit();
            event("result", "sat").str("outcome", "ok").emit();
        });
        let events = mem.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "dip");
        assert!(events[1].ts >= events[0].ts);
    }

    #[test]
    fn events_are_inert_without_a_sink() {
        let c = Arc::new(Collector::new());
        scoped(&c, || {
            assert!(!trace_enabled());
            let mut ran = false;
            event("x", "y")
                .str_with("big", || {
                    ran = true;
                    "expensive".to_string()
                })
                .emit();
            assert!(!ran, "lazy field must not materialize when tracing is off");
        });
    }

    #[test]
    fn span_records_histogram_and_event() {
        let mem = Arc::new(MemSink::default());
        let c = Arc::new(Collector::with_sink(Box::new(mem.clone())));
        scoped(&c, || {
            let _s = span("unit.test");
        });
        assert_eq!(c.hist("span.unit.test.ns").count(), 1);
        let events = mem.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "span");
        assert_eq!(events[0].name, "unit.test");
    }

    #[test]
    fn finish_emits_metric_lines() {
        let mem = Arc::new(MemSink::default());
        let c = Arc::new(Collector::with_sink(Box::new(mem.clone())));
        c.counter("sat.dips").add(3);
        c.gauge("rate").set(1.5);
        c.finish();
        let events = mem.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"counter"));
        assert!(kinds.contains(&"gauge"));
        let line = events
            .iter()
            .find(|e| e.name == "sat.dips")
            .expect("counter line")
            .to_jsonl();
        assert!(line.contains("\"value\":3"), "{line}");
        schema::validate_line(&line).expect("schema-valid");
    }
}
