//! Event sinks: where trace lines go.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives serialized events. Implementations must be cheap when unused —
/// the collector checks its tracing flag before building events, so a
/// sink only ever sees lines the user asked for.
pub trait Sink: Send {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes buffered output (end of run).
    fn flush(&self);
}

impl<S: Sink + Send + Sync + ?Sized> Sink for std::sync::Arc<S> {
    fn emit(&self, event: &Event) {
        (**self).emit(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards everything (tracing disabled).
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
    fn flush(&self) {}
}

/// Appends one JSON line per event to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when the file cannot be created.
    pub fn create(path: &Path) -> Result<Self, String> {
        let file =
            File::create(path).map_err(|e| format!("creating trace {}: {e}", path.display()))?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().expect("sink poisoned");
        let _ = writeln!(w, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

/// Collects events in memory (tests).
#[derive(Debug, Default)]
pub struct MemSink {
    events: Mutex<Vec<Event>>,
}

impl MemSink {
    /// All events emitted so far.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink poisoned"))
    }
}

impl Sink for MemSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("sink poisoned")
            .push(event.clone());
    }

    fn flush(&self) {}
}
