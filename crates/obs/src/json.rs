//! Minimal JSON parser + canonical writer (the workspace carries no
//! serde). Used by the trace schema checker, golden-trace normalization,
//! and metrics round-trip tests. Objects are `BTreeMap`s, so re-rendering
//! is canonical: key-sorted, compact, deterministic.

use crate::event::{write_json_f64, write_json_str};
use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 is exact for the u64 ranges traces use in
    /// practice; counters stay below 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member access for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Mutable member access for objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Obj(m) => m.get_mut(key),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    /// Canonical compact rendering (sorted object keys).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_json_f64(out, *x),
        Value::Str(s) => write_json_str(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_trace_lines() {
        let line = r#"{"kind":"dip","name":"sat","ts":42,"iter":3,"ok":true,"x":null}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("dip"));
        assert_eq!(v.get("ts").and_then(Value::as_num), Some(42.0));
        let rendered = v.to_string();
        assert_eq!(parse(&rendered).expect("reparses"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = parse(r#"{"s":"aA\n","arr":[1,-2.5e1,{}]}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\n"));
        match v.get("arr") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0], Value::Num(1.0));
                assert_eq!(items[1], Value::Num(-25.0));
            }
            other => panic!("bad arr: {other:?}"),
        }
    }
}
