//! The collector: one registry + one sink + a monotonic epoch.
//!
//! A process has a lazily-created global collector; tests (and any caller
//! wanting isolation) can push a scoped collector for the current thread
//! with [`crate::scoped`]. All free functions in the crate root resolve
//! the *current* collector: the innermost scoped one, else the global.

use crate::event::{Event, FieldValue};
use crate::metrics::{Counter, Gauge, Histogram, MetricValue, Registry};
use crate::report::MetricsReport;
use crate::sink::{NullSink, Sink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Metrics registry + trace sink + timestamp epoch.
pub struct Collector {
    registry: Registry,
    sink: Mutex<Box<dyn Sink>>,
    tracing: AtomicBool,
    epoch: Instant,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("tracing", &self.tracing.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector with a null sink and tracing disabled.
    pub fn new() -> Self {
        Collector {
            registry: Registry::default(),
            sink: Mutex::new(Box::new(NullSink)),
            tracing: AtomicBool::new(false),
            epoch: Instant::now(),
        }
    }

    /// A collector that traces into `sink` from the start.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        let c = Collector::new();
        c.set_sink(sink);
        c
    }

    /// Installs `sink` and enables tracing.
    pub fn set_sink(&self, sink: Box<dyn Sink>) {
        *self.sink.lock().expect("sink slot poisoned") = sink;
        self.tracing.store(true, Ordering::Release);
    }

    /// True when events should be built and emitted.
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Acquire)
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Nanoseconds since this collector was created (monotonic, saturating
    /// at `u64::MAX`).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Shorthand for `registry().counter(name)`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Shorthand for `registry().gauge(name)`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Shorthand for `registry().hist(name)`.
    pub fn hist(&self, name: &str) -> Histogram {
        self.registry.hist(name)
    }

    /// Sends one event to the sink (no-op when tracing is off).
    pub fn emit(&self, event: &Event) {
        if self.tracing() {
            self.sink.lock().expect("sink slot poisoned").emit(event);
        }
    }

    /// A deterministic point-in-time metrics report.
    pub fn report(&self) -> MetricsReport {
        MetricsReport::new(self.registry.snapshot())
    }

    /// Ends a traced run: emits every registered metric as one trace line
    /// (`kind` = `counter` | `gauge` | `hist`) so a trace file is
    /// self-contained — schema checkers can do dead-probe detection from
    /// the trace alone — then flushes the sink.
    pub fn finish(&self) {
        if self.tracing() {
            let ts = self.now_ns();
            for (name, value) in self.registry.snapshot() {
                let e = match value {
                    MetricValue::Counter(v) => {
                        let mut e = Event::new("counter", name, ts);
                        e.push("value", FieldValue::U64(v));
                        e
                    }
                    MetricValue::Gauge(v) => {
                        let mut e = Event::new("gauge", name, ts);
                        e.push("value", FieldValue::F64(v));
                        e
                    }
                    MetricValue::Hist {
                        count,
                        sum,
                        min,
                        max,
                    } => {
                        let mut e = Event::new("hist", name, ts);
                        e.push("count", FieldValue::U64(count));
                        e.push("sum_ns", FieldValue::U64(sum));
                        e.push("min_ns", FieldValue::U64(min));
                        e.push("max_ns", FieldValue::U64(max));
                        e
                    }
                };
                self.sink.lock().expect("sink slot poisoned").emit(&e);
            }
        }
        self.sink.lock().expect("sink slot poisoned").flush();
    }
}

/// Shared handle to a collector.
pub type SharedCollector = Arc<Collector>;
