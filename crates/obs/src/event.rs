//! Structured trace events and their JSONL encoding.
//!
//! Every event serializes to one JSON object per line with a fixed field
//! order: `kind`, `name`, `ts`, then the typed payload fields in insertion
//! order. Fixed ordering keeps golden traces byte-diffable.

use std::fmt::Write as _;

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// One structured trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event class: `span`, `counter`, `gauge`, `hist`, `dip`,
    /// `solver-call`, `probe`, `placement`, `result`, …
    pub kind: String,
    /// Event name within the kind (probe site, span name, metric name).
    pub name: String,
    /// Monotonic nanoseconds since the collector's epoch.
    pub ts: u64,
    /// Typed payload, serialized in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// A new event stamped with `ts`.
    pub fn new(kind: impl Into<String>, name: impl Into<String>, ts: u64) -> Self {
        Event {
            kind: kind.into(),
            name: name.into(),
            ts,
            fields: Vec::new(),
        }
    }

    /// Appends a payload field.
    pub fn push(&mut self, key: impl Into<String>, value: FieldValue) {
        self.fields.push((key.into(), value));
    }

    /// The single-line JSON encoding (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"kind\":");
        write_json_str(&mut s, &self.kind);
        s.push_str(",\"name\":");
        write_json_str(&mut s, &self.name);
        let _ = write!(s, ",\"ts\":{}", self.ts);
        for (k, v) in &self.fields {
            s.push(',');
            write_json_str(&mut s, k);
            s.push(':');
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(s, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(s, "{n}");
                }
                FieldValue::F64(x) => write_json_f64(&mut s, *x),
                FieldValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
                FieldValue::Str(t) => write_json_str(&mut s, t),
            }
        }
        s.push('}');
        s
    }
}

/// Writes `text` as a JSON string literal (quotes + escapes) onto `out`.
pub fn write_json_str(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite `f64` as JSON (integral values without a fraction;
/// non-finite values as `null`, which JSON cannot represent).
pub fn write_json_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_has_fixed_field_order() {
        let mut e = Event::new("dip", "sat", 42);
        e.push("iter", FieldValue::U64(3));
        e.push("pattern", FieldValue::Str("0b01".into()));
        assert_eq!(
            e.to_jsonl(),
            r#"{"kind":"dip","name":"sat","ts":42,"iter":3,"pattern":"0b01"}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut e = Event::new("result", "x\"y", 0);
        e.push("msg", FieldValue::Str("a\nb\\c".into()));
        assert_eq!(
            e.to_jsonl(),
            r#"{"kind":"result","name":"x\"y","ts":0,"msg":"a\nb\\c"}"#
        );
    }

    #[test]
    fn floats_render_compactly() {
        let mut s = String::new();
        write_json_f64(&mut s, 3.0);
        s.push(' ');
        write_json_f64(&mut s, 0.5);
        s.push(' ');
        write_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "3 0.5 null");
    }
}
