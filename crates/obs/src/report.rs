//! End-of-run metrics reports, renderable as aligned text or JSON.

use crate::event::{write_json_f64, write_json_str};
use crate::metrics::MetricValue;
use std::fmt::Write as _;

/// A deterministic (name-ordered) snapshot of every registered metric.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsReport {
    /// Wraps a registry snapshot.
    pub fn new(entries: Vec<(String, MetricValue)>) -> Self {
        MetricsReport { entries }
    }

    /// The snapshot entries in name order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// The value of a counter, when registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Human-readable multi-line rendering.
    pub fn render_text(&self) -> String {
        if self.entries.is_empty() {
            return "metrics: (none registered)\n".to_string();
        }
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::from("metrics:\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "  {name:<width$}  counter  {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "  {name:<width$}  gauge    {v:.3}");
                }
                MetricValue::Hist {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let _ = writeln!(
                        out,
                        "  {name:<width$}  hist     count={count} sum={sum}ns min={min}ns max={max}ns"
                    );
                }
            }
        }
        out
    }

    /// Single-line JSON rendering: `{"metrics":{name:{...},...}}` with
    /// names in deterministic (sorted) order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str("{\"kind\":\"gauge\",\"value\":");
                    write_json_f64(&mut out, *v);
                    out.push('}');
                }
                MetricValue::Hist {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"hist\",\"count\":{count},\"sum_ns\":{sum},\"min_ns\":{min},\"max_ns\":{max}}}"
                    );
                }
            }
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn json_rendering_parses_back() {
        let report = MetricsReport::new(vec![
            ("a.count".to_string(), MetricValue::Counter(7)),
            ("b.rate".to_string(), MetricValue::Gauge(2.5)),
            (
                "c.ns".to_string(),
                MetricValue::Hist {
                    count: 2,
                    sum: 30,
                    min: 10,
                    max: 20,
                },
            ),
        ]);
        let v = json::parse(&report.render_json()).expect("valid json");
        let metrics = v.get("metrics").expect("metrics key");
        assert_eq!(
            metrics.get("a.count").and_then(|m| m.get("value")),
            Some(&json::Value::Num(7.0))
        );
        assert_eq!(report.counter("a.count"), Some(7));
    }

    #[test]
    fn text_rendering_mentions_every_metric() {
        let report = MetricsReport::new(vec![("sat.dips".to_string(), MetricValue::Counter(3))]);
        let text = report.render_text();
        assert!(text.contains("sat.dips"));
        assert!(text.contains('3'));
    }
}
