//! Simulation configuration: delay model and clocking.

use glitchlock_netlist::CellId;
use glitchlock_stdcell::Ps;
use std::collections::HashMap;

/// How gate delays filter pulses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DelayModel {
    /// Every transition propagates; narrow pulses survive. The glitch
    /// key-gate is designed under this model.
    #[default]
    Transport,
    /// A gate output keeps only its most recently scheduled transition:
    /// pulses shorter than the propagation delay are swallowed.
    Inertial,
}

/// Clock description: a single global clock with optional per-flip-flop skew.
///
/// Flip-flop `i` sees rising edges at `first_edge + skew(i) + k·period`
/// for `k = 0, 1, …` — `skew(i)` is the paper's clock arrival time `T_i`
/// offset.
#[derive(Clone, Debug)]
pub struct ClockSpec {
    /// Clock period (`T_clk`).
    pub period: Ps,
    /// Time of the first rising edge at a zero-skew flip-flop.
    pub first_edge: Ps,
    /// Per-flip-flop clock arrival offset.
    pub skew: HashMap<CellId, Ps>,
}

impl ClockSpec {
    /// A zero-skew clock whose first edge lands one full period after t=0.
    pub fn new(period: Ps) -> Self {
        ClockSpec {
            period,
            first_edge: period,
            skew: HashMap::new(),
        }
    }

    /// Sets the first-edge time (useful for aligning diagrams with the
    /// paper's figures).
    pub fn with_first_edge(mut self, t: Ps) -> Self {
        self.first_edge = t;
        self
    }

    /// Adds clock skew for one flip-flop.
    pub fn with_skew(mut self, ff: CellId, skew: Ps) -> Self {
        self.skew.insert(ff, skew);
        self
    }

    /// Clock arrival offset of a flip-flop (the paper's `T_i` relative to
    /// the common edge).
    pub fn skew_of(&self, ff: CellId) -> Ps {
        self.skew.get(&ff).copied().unwrap_or(Ps::ZERO)
    }

    /// Rising-edge times of a flip-flop within `[0, until]`.
    pub fn edges_for(&self, ff: CellId, until: Ps) -> Vec<Ps> {
        let mut t = self.first_edge + self.skew_of(ff);
        let mut edges = Vec::new();
        while t <= until {
            edges.push(t);
            t += self.period;
        }
        edges
    }
}

/// Complete simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Pulse-filtering model.
    pub delay_model: DelayModel,
    /// When true, ordinary gates have zero delay and only cells explicitly
    /// bound to library **delay cells** (`DLYx`) keep their delay. This
    /// mirrors the paper's Sec. II exposition, which "first ignores gate
    /// delays" to isolate the delay-element behaviour.
    pub ideal_gates: bool,
    /// Clock description.
    pub clock: ClockSpec,
}

impl SimConfig {
    /// Transport delay, real library delays, 10ns clock.
    pub fn new() -> Self {
        SimConfig {
            delay_model: DelayModel::Transport,
            ideal_gates: false,
            clock: ClockSpec::new(Ps::from_ns(10)),
        }
    }

    /// Transport delay with idealized (zero-delay) gates — only delay cells
    /// delay. Matches the paper's timing diagrams (Figs. 4, 6, 9).
    pub fn ideal() -> Self {
        SimConfig {
            ideal_gates: true,
            ..SimConfig::new()
        }
    }

    /// Replaces the clock.
    pub fn with_clock(mut self, clock: ClockSpec) -> Self {
        self.clock = clock;
        self
    }

    /// Replaces the delay model.
    pub fn with_delay_model(mut self, model: DelayModel) -> Self {
        self.delay_model = model;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_respect_skew_and_period() {
        let ff = CellId::from_index(0);
        let clk = ClockSpec::new(Ps::from_ns(8)).with_skew(ff, Ps::from_ns(1));
        let edges = clk.edges_for(ff, Ps::from_ns(26));
        assert_eq!(
            edges,
            vec![Ps::from_ns(9), Ps::from_ns(17), Ps::from_ns(25)]
        );
        let other = CellId::from_index(1);
        assert_eq!(clk.skew_of(other), Ps::ZERO);
        assert_eq!(
            clk.edges_for(other, Ps::from_ns(16)),
            vec![Ps::from_ns(8), Ps::from_ns(16)]
        );
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::ideal().with_delay_model(DelayModel::Inertial);
        assert!(cfg.ideal_gates);
        assert_eq!(cfg.delay_model, DelayModel::Inertial);
        let cfg = SimConfig::default()
            .with_clock(ClockSpec::new(Ps::from_ns(4)).with_first_edge(Ps::from_ns(2)));
        assert_eq!(cfg.clock.period, Ps::from_ns(4));
        assert_eq!(cfg.clock.first_edge, Ps::from_ns(2));
    }
}
