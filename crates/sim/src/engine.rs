//! The discrete-event simulation engine.

use crate::{DelayModel, SimConfig, Stimulus, Waveform};
use glitchlock_netlist::{CellId, Logic, NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_stdcell::{Library, Ps};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Which stability window a flip-flop data transition violated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// D changed inside `(T - T_setup, T]`.
    Setup,
    /// D changed inside `(T, T + T_hold)`.
    Hold,
}

/// A recorded setup/hold violation at a flip-flop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated flip-flop.
    pub ff: CellId,
    /// The rising clock edge the violation belongs to.
    pub edge: Ps,
    /// Setup or hold.
    pub kind: ViolationKind,
    /// The offending D-pin transition time.
    pub change_at: Ps,
}

/// The output of a simulation run: one waveform per net, per-flip-flop
/// samples, and all setup/hold violations.
#[derive(Clone, Debug)]
pub struct SimResult {
    waveforms: Vec<Waveform>,
    samples: HashMap<CellId, Vec<(Ps, Logic)>>,
    violations: Vec<Violation>,
    until: Ps,
}

impl SimResult {
    /// The recorded waveform of a net.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range net id.
    pub fn waveform(&self, net: NetId) -> &Waveform {
        &self.waveforms[net.index()]
    }

    /// `(edge-time, sampled-value)` pairs for a flip-flop, in edge order.
    pub fn samples_of(&self, ff: CellId) -> &[(Ps, Logic)] {
        self.samples.get(&ff).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All recorded setup/hold violations, in edge order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations at one flip-flop.
    pub fn violations_of(&self, ff: CellId) -> Vec<Violation> {
        self.violations
            .iter()
            .copied()
            .filter(|v| v.ff == ff)
            .collect()
    }

    /// The simulation horizon.
    pub fn until(&self) -> Ps {
        self.until
    }

    /// Final value of a net at the horizon.
    pub fn final_value(&self, net: NetId) -> Logic {
        self.waveform(net).value_at(self.until)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    /// A net takes a new value (generation tag used for inertial
    /// cancellation; input-driven events carry the live generation too).
    NetChange { net: NetId, value: Logic, gen: u64 },
    /// A rising clock edge at one flip-flop.
    ClockEdge { ff: CellId },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Event {
    time: Ps,
    /// Net changes apply before clock edges at the same instant.
    class: u8,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.class, other.seq).cmp(&(self.time, self.class, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event-driven timing simulator. See the crate docs for semantics.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a validated netlist.
    pub fn new(netlist: &'a Netlist, library: &'a Library, config: SimConfig) -> Self {
        Simulator {
            netlist,
            library,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn gate_delay(&self, cell: CellId) -> Ps {
        let lib = self.library.resolve(self.netlist, cell);
        if self.config.ideal_gates && !lib.is_delay_cell() {
            return Ps::ZERO;
        }
        let fanout = self
            .netlist
            .net(self.netlist.cell(cell).output())
            .fanout()
            .len();
        lib.delay_with_fanout(fanout)
    }

    /// Runs the simulation until `until` (inclusive) and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation (combinational cycle,
    /// undriven read net).
    pub fn run(&self, stimulus: &Stimulus, until: Ps) -> SimResult {
        let nl = self.netlist;
        let n_nets = nl.net_count();

        // Settled initial state at t = 0.
        let initial_inputs: Vec<Logic> = nl
            .input_nets()
            .iter()
            .map(|&n| stimulus.initial_of(n))
            .collect();
        let initial_q: Vec<Logic> = nl
            .dff_cells()
            .iter()
            .map(|&ff| stimulus.initial_ff_of(ff))
            .collect();
        let mut values = nl.eval_nets(&initial_inputs, Some(&initial_q));
        let mut projected = values.clone();
        let mut gen = vec![0u64; n_nets];
        let mut waveforms: Vec<Waveform> = values.iter().map(|&v| Waveform::constant(v)).collect();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time: Ps, class: u8, kind: EventKind| {
            heap.push(Event {
                time,
                class,
                seq,
                kind,
            });
            seq += 1;
        };

        for (t, net, v) in stimulus.sorted_events() {
            // External stimulus always carries the live generation (bumped
            // lazily below at schedule time for internal nets only).
            push(
                &mut heap,
                t,
                0,
                EventKind::NetChange {
                    net,
                    value: v,
                    gen: u64::MAX,
                },
            );
        }
        for &ff in nl.dff_cells() {
            for edge in self.config.clock.edges_for(ff, until) {
                push(&mut heap, edge, 1, EventKind::ClockEdge { ff });
            }
        }

        let mut samples: HashMap<CellId, Vec<(Ps, Logic)>> = HashMap::new();
        let mut in_buf: Vec<Logic> = Vec::with_capacity(8);
        // Local accumulators, published to the obs registry once per run
        // so the event loop pays zero atomic traffic.
        let mut n_events = 0u64;
        let mut n_cancelled = 0u64;
        let mut n_changes = 0u64;
        let mut n_edges = 0u64;

        while let Some(ev) = heap.pop() {
            if ev.time > until {
                break;
            }
            n_events += 1;
            match ev.kind {
                EventKind::NetChange {
                    net,
                    value,
                    gen: evgen,
                } => {
                    if evgen != u64::MAX && evgen != gen[net.index()] {
                        n_cancelled += 1;
                        continue; // cancelled by inertial replacement
                    }
                    if evgen == u64::MAX {
                        // External drive overrides whatever was projected.
                        projected[net.index()] = value;
                    }
                    if values[net.index()] == value {
                        continue;
                    }
                    values[net.index()] = value;
                    n_changes += 1;
                    waveforms[net.index()].push(ev.time, value);
                    // Propagate to combinational sinks.
                    let fanout: Vec<(CellId, usize)> = nl.net(net).fanout().to_vec();
                    for (sink, _) in fanout {
                        let cell = nl.cell(sink);
                        if !cell.kind().is_combinational() {
                            continue; // flip-flops sample at clock edges
                        }
                        in_buf.clear();
                        in_buf.extend(cell.inputs().iter().map(|n| values[n.index()]));
                        let new_out = cell.kind().eval(&in_buf);
                        let delay = self.gate_delay(sink);
                        let out = cell.output();
                        self.schedule(
                            &mut heap,
                            &mut seq,
                            &mut projected,
                            &mut gen,
                            out,
                            new_out,
                            ev.time + delay,
                        );
                    }
                }
                EventKind::ClockEdge { ff } => {
                    n_edges += 1;
                    let cell = nl.cell(ff);
                    let d_net = cell.inputs()[0];
                    let d = values[d_net.index()];
                    samples.entry(ff).or_default().push((ev.time, d));
                    let timing = self.library.ff_timing(nl, ff);
                    let q = cell.output();
                    self.schedule(
                        &mut heap,
                        &mut seq,
                        &mut projected,
                        &mut gen,
                        q,
                        d,
                        ev.time + timing.clk_to_q,
                    );
                }
            }
        }

        let violations = self.collect_violations(&waveforms, until);
        let collector = obs::current();
        collector.counter(names::SIM_EVENTS).add(n_events);
        collector.counter(names::SIM_CANCELLED).add(n_cancelled);
        collector.counter(names::SIM_NET_CHANGES).add(n_changes);
        collector.counter(names::SIM_CLOCK_EDGES).add(n_edges);
        collector
            .counter(names::SIM_VIOLATIONS)
            .add(violations.len() as u64);
        collector
            .counter(names::SIM_GLITCHES)
            .add(count_glitch_pulses(&waveforms, OBS_GLITCH_WINDOW));
        SimResult {
            waveforms,
            samples,
            violations,
            until,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule(
        &self,
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        projected: &mut [Logic],
        gen: &mut [u64],
        net: NetId,
        value: Logic,
        time: Ps,
    ) {
        if projected[net.index()] == value {
            return; // the net is already headed to this value
        }
        projected[net.index()] = value;
        let evgen = match self.config.delay_model {
            DelayModel::Transport => gen[net.index()],
            DelayModel::Inertial => {
                // Cancel any pending transition: last write wins, so pulses
                // shorter than the gate delay are swallowed.
                gen[net.index()] += 1;
                gen[net.index()]
            }
        };
        heap.push(Event {
            time,
            class: 0,
            seq: *seq,
            kind: EventKind::NetChange {
                net,
                value,
                gen: evgen,
            },
        });
        *seq += 1;
    }

    fn collect_violations(&self, waveforms: &[Waveform], until: Ps) -> Vec<Violation> {
        let mut out = Vec::new();
        for &ff in self.netlist.dff_cells() {
            let timing = self.library.ff_timing(self.netlist, ff);
            let d_net = self.netlist.cell(ff).inputs()[0];
            let wave = &waveforms[d_net.index()];
            for edge in self.config.clock.edges_for(ff, until) {
                let setup_from = edge.saturating_sub(timing.setup);
                for &(t, _) in wave.changes() {
                    if t > setup_from && t <= edge {
                        out.push(Violation {
                            ff,
                            edge,
                            kind: ViolationKind::Setup,
                            change_at: t,
                        });
                    } else if t > edge && t < edge + timing.hold {
                        out.push(Violation {
                            ff,
                            edge,
                            kind: ViolationKind::Hold,
                            change_at: t,
                        });
                    }
                }
            }
        }
        out.sort_by_key(|v| (v.edge, v.change_at));
        out
    }
}

/// Observation window for glitch counting: two transitions on the same
/// net closer than this count as one glitch pulse. Matches the paper's
/// default glitch length scale (l_glitch ~ 1 ns).
const OBS_GLITCH_WINDOW: Ps = Ps(1000);

/// Counts short pulses (pairs of consecutive transitions within `window`)
/// across all waveforms — the `sim.glitches` probe.
fn count_glitch_pulses(waveforms: &[Waveform], window: Ps) -> u64 {
    let mut pulses = 0u64;
    for wave in waveforms {
        for pair in wave.changes().windows(2) {
            if pair[1].0.saturating_sub(pair[0].0) <= window {
                pulses += 1;
            }
        }
    }
    pulses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use glitchlock_netlist::GateKind;
    use Logic::{One, Zero};

    fn lib() -> Library {
        Library::cl013g_like()
    }

    fn bind_delay(nl: &mut Netlist, net: NetId, lib: &Library, name: &str) {
        let cell = nl.net(net).driver().unwrap();
        nl.bind_lib(cell, lib.by_name(name).unwrap()).unwrap();
    }

    #[test]
    fn inverter_chain_accumulates_delay() {
        let lib = lib();
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let x1 = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let x2 = nl.add_gate(GateKind::Inv, &[x1]).unwrap();
        nl.mark_output(x2, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Zero).rise(Ps(1000), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(5000));
        // Each INVX1 at fanout 1 contributes 25ps.
        assert_eq!(res.waveform(x2).changes(), &[(Ps(1050), One)]);
        assert_eq!(res.waveform(x1).changes(), &[(Ps(1025), Zero)]);
    }

    #[test]
    fn transport_preserves_narrow_pulse() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        bind_delay(&mut nl, y, &lib, "DLY4X1"); // 1000ps delay
        nl.mark_output(y, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Zero).pulse(Ps(2000), Ps(100), a, One); // 100ps pulse
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(6000));
        // Transport: pulse survives, shifted by 1000ps.
        assert_eq!(
            res.waveform(y).changes(),
            &[(Ps(3000), One), (Ps(3100), Zero)]
        );
    }

    #[test]
    fn inertial_swallows_narrow_pulse() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        bind_delay(&mut nl, y, &lib, "DLY4X1");
        nl.mark_output(y, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Zero).pulse(Ps(2000), Ps(100), a, One);
        let cfg = SimConfig::new().with_delay_model(DelayModel::Inertial);
        let res = Simulator::new(&nl, &lib, cfg).run(&stim, Ps(6000));
        assert!(
            res.waveform(y).changes().is_empty(),
            "pulse must be swallowed"
        );
    }

    #[test]
    fn inertial_passes_wide_pulse() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        bind_delay(&mut nl, y, &lib, "DLY1X1"); // 250ps
        nl.mark_output(y, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Zero).pulse(Ps(2000), Ps(800), a, One);
        let cfg = SimConfig::new().with_delay_model(DelayModel::Inertial);
        let res = Simulator::new(&nl, &lib, cfg).run(&stim, Ps(6000));
        assert_eq!(
            res.waveform(y).changes(),
            &[(Ps(2250), One), (Ps(3050), Zero)]
        );
    }

    #[test]
    fn dff_samples_on_each_edge_and_drives_q() {
        let lib = lib();
        let mut nl = Netlist::new("ff");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        nl.mark_output(q, "q");
        let ff = nl.dff_cells()[0];
        let mut stim = Stimulus::new();
        stim.set(a, Zero).set_ff(ff, Zero).rise(Ps::from_ns(5), a);
        let cfg = SimConfig::new(); // 10ns clock, first edge at 10ns
        let res = Simulator::new(&nl, &lib, cfg).run(&stim, Ps::from_ns(25));
        assert_eq!(
            res.samples_of(ff),
            &[(Ps::from_ns(10), One), (Ps::from_ns(20), One)]
        );
        // clk->q = 160ps.
        assert_eq!(res.waveform(q).changes(), &[(Ps(10_160), One)]);
        assert!(res.violations().is_empty());
    }

    #[test]
    fn setup_violation_detected() {
        let lib = lib();
        let mut nl = Netlist::new("ff");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        nl.mark_output(q, "q");
        let ff = nl.dff_cells()[0];
        let mut stim = Stimulus::new();
        // Setup time is 90ps: change 50ps before the 10ns edge.
        stim.set(a, Zero).set_ff(ff, Zero).rise(Ps(9950), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps::from_ns(12));
        let v = res.violations_of(ff);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Setup);
        assert_eq!(v[0].change_at, Ps(9950));
        assert_eq!(v[0].edge, Ps::from_ns(10));
    }

    #[test]
    fn hold_violation_detected() {
        let lib = lib();
        let mut nl = Netlist::new("ff");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        nl.mark_output(q, "q");
        let ff = nl.dff_cells()[0];
        let mut stim = Stimulus::new();
        // Hold time is 35ps: change 20ps after the 10ns edge.
        stim.set(a, One).set_ff(ff, Zero).fall(Ps(10_020), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps::from_ns(12));
        let v = res.violations_of(ff);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Hold);
    }

    #[test]
    fn stable_data_through_window_is_clean() {
        let lib = lib();
        let mut nl = Netlist::new("ff");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        nl.mark_output(q, "q");
        let ff = nl.dff_cells()[0];
        let mut stim = Stimulus::new();
        // Change well before setup and after hold windows.
        stim.set(a, Zero)
            .set_ff(ff, Zero)
            .rise(Ps(9000), a)
            .fall(Ps(10_500), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps::from_ns(12));
        assert!(res.violations().is_empty());
        assert_eq!(res.samples_of(ff), &[(Ps::from_ns(10), One)]);
    }

    /// Hand-built glitch key-gate (paper Fig. 3(a)) reproducing the Fig. 4
    /// timing diagram under ideal gates: with x = 1 and DA = 2ns, DB = 3ns,
    /// a rising key transition at 3ns yields a glitch of length DB and a
    /// falling transition at 11ns yields a glitch of length DA.
    #[test]
    fn hand_built_gk_reproduces_fig4() {
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let key = nl.add_input("key");
        // Delay element A = 2ns (DLY8), B = 3ns (DLY8 + DLY4).
        let key_a = nl.add_gate(GateKind::Buf, &[key]).unwrap();
        bind_delay(&mut nl, key_a, &lib, "DLY8X1");
        let key_b1 = nl.add_gate(GateKind::Buf, &[key]).unwrap();
        bind_delay(&mut nl, key_b1, &lib, "DLY8X1");
        let key_b = nl.add_gate(GateKind::Buf, &[key_b1]).unwrap();
        bind_delay(&mut nl, key_b, &lib, "DLY4X1");
        let a_out = nl.add_gate(GateKind::Xnor, &[x, key_a]).unwrap();
        let b_out = nl.add_gate(GateKind::Xor, &[x, key_b]).unwrap();
        let y = nl.add_gate(GateKind::Mux2, &[a_out, b_out, key]).unwrap();
        nl.mark_output(y, "y");

        let mut stim = Stimulus::new();
        stim.set(x, One).set(key, Zero);
        stim.rise(Ps::from_ns(3), key).fall(Ps::from_ns(11), key);
        let res = Simulator::new(&nl, &lib, SimConfig::ideal()).run(&stim, Ps::from_ns(16));
        let w = res.waveform(y);
        // Steady inverter behaviour: y = x' = 0 outside the glitches.
        assert_eq!(w.initial(), Zero);
        // Glitch 1: (3ns, 6ns) at level 1 (buffer of x).
        // Glitch 2: (11ns, 13ns).
        assert_eq!(
            w.changes(),
            &[
                (Ps::from_ns(3), One),
                (Ps::from_ns(6), Zero),
                (Ps::from_ns(11), One),
                (Ps::from_ns(13), Zero)
            ]
        );
    }

    #[test]
    fn same_time_multi_input_change_settles_to_final_value() {
        let lib = lib();
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.mark_output(y, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Zero).set(b, Zero);
        stim.rise(Ps(1000), a).rise(Ps(1000), b);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(3000));
        // Both inputs flip simultaneously: XOR output returns to 0 at the
        // same timestamp, so no transition is recorded.
        assert!(res.waveform(y).changes().is_empty());
    }

    #[test]
    fn x_initial_state_resolves_after_stimulus() {
        let lib = lib();
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        nl.mark_output(y, "y");
        let stim_empty = Stimulus::new();
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim_empty, Ps(1000));
        assert_eq!(res.final_value(y), Logic::X);
        let mut stim = Stimulus::new();
        stim.at(Ps(100), a, One);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(1000));
        assert_eq!(res.final_value(y), Zero);
    }
}
