//! Switching-activity (dynamic power) accounting.
//!
//! Dynamic power is proportional to toggle count × switched capacitance.
//! Glitches are pure overhead in ordinary designs — and the GK *adds* one
//! deliberate glitch per locked flip-flop per cycle, so its power cost is a
//! natural companion metric to Table II's area numbers (not reported in
//! the paper; measured here as an extension).

use crate::SimResult;
use glitchlock_netlist::{EvalProgram, NetId, Netlist, PackedLogic, PackedSeqState};
use glitchlock_stdcell::Library;
use rand::Rng;

/// Switching-activity summary of a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ActivityReport {
    /// Total net transitions observed.
    pub toggles: u64,
    /// Capacitance-weighted toggles: each transition weighted by the
    /// driven fanout + 1 (a first-order switched-capacitance proxy).
    pub weighted_toggles: u64,
}

impl ActivityReport {
    /// Relative dynamic-power proxy against a baseline run (1.0 = equal).
    pub fn relative_to(&self, baseline: &ActivityReport) -> f64 {
        if baseline.weighted_toggles == 0 {
            return if self.weighted_toggles == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.weighted_toggles as f64 / baseline.weighted_toggles as f64
    }
}

/// Tallies switching activity over every net of a finished run.
pub fn activity(netlist: &Netlist, result: &SimResult) -> ActivityReport {
    let mut report = ActivityReport::default();
    for (net_id, net) in netlist.nets() {
        let toggles = result.waveform(net_id).transition_count() as u64;
        report.toggles += toggles;
        report.weighted_toggles += toggles * (net.fanout().len() as u64 + 1);
    }
    report
}

/// Convenience: the library is accepted for future per-cell capacitance
/// models; the first-order proxy only needs fanout counts.
pub fn activity_with_library(
    netlist: &Netlist,
    _library: &Library,
    result: &SimResult,
) -> ActivityReport {
    activity(netlist, result)
}

/// Zero-delay switching-activity estimate from random stimulus: runs 64
/// independent random input streams bit-parallel through a compiled
/// [`EvalProgram`] for `cycles` clock cycles (flip-flops reset to 0) and
/// counts, per net, every definite `0↔1` value change between consecutive
/// cycles across all lanes.
///
/// Unlike [`activity`] this sees no glitches — it is the *functional*
/// toggle floor (64 streams' worth; divide by [`LANES`] for a per-stream
/// average), useful for quick relative comparisons when a full timed
/// simulation is too slow.
///
/// # Panics
///
/// Panics if the netlist has a combinational cycle.
pub fn estimate_zero_delay_activity<R: Rng>(
    netlist: &Netlist,
    cycles: usize,
    rng: &mut R,
) -> ActivityReport {
    let program = EvalProgram::compile(netlist).expect("netlist is acyclic");
    let mut buf = program.scratch();
    let mut state = PackedSeqState::reset(&program);
    let weights: Vec<u64> = netlist
        .nets()
        .map(|(_, net)| net.fanout().len() as u64 + 1)
        .collect();
    let mut prev: Vec<PackedLogic> = vec![PackedLogic::X; netlist.net_count()];
    let mut report = ActivityReport::default();
    let n_pi = netlist.input_nets().len();
    for cycle in 0..cycles {
        let inputs: Vec<PackedLogic> = (0..n_pi)
            .map(|_| PackedLogic {
                val: rng.gen::<u64>(),
                known: !0,
            })
            .collect();
        state.step(&program, &inputs, &mut buf);
        for (i, w) in weights.iter().enumerate() {
            let cur = buf.net(NetId::from_index(i));
            if cycle > 0 {
                let toggled = (prev[i].val ^ cur.val) & prev[i].known & cur.known;
                let t = u64::from(toggled.count_ones());
                report.toggles += t;
                report.weighted_toggles += t * w;
            }
            prev[i] = cur;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator, Stimulus};
    use glitchlock_netlist::{GateKind, Logic, LANES};
    use glitchlock_stdcell::Ps;

    #[test]
    fn toggles_counted_and_weighted() {
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        // Fanout of 2 on the inverter output.
        let b1 = nl.add_gate(GateKind::Buf, &[y]).unwrap();
        let b2 = nl.add_gate(GateKind::Buf, &[y]).unwrap();
        nl.mark_output(b1, "o1");
        nl.mark_output(b2, "o2");
        let mut stim = Stimulus::new();
        stim.set(a, Logic::Zero).rise(Ps(1000), a).fall(Ps(2000), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(5000));
        let report = activity(&nl, &res);
        // a toggles twice, y twice, b1 twice, b2 twice = 8.
        assert_eq!(report.toggles, 8);
        // Weights: a drives 1 sink (2 each), y drives 2 (3 each), b1/b2
        // drive 0 (1 each): 2*2 + 2*3 + 2*1 + 2*1 = 14.
        assert_eq!(report.weighted_toggles, 14);
        assert_eq!(report.relative_to(&report), 1.0);
    }

    #[test]
    fn zero_delay_estimate_counts_functional_toggles() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Toggle flip-flop: q and !q both flip every cycle in every lane.
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        let q = nl.add_dff_named(d, "ff").unwrap();
        let nq = nl.add_gate(GateKind::Inv, &[q]).unwrap();
        nl.rewire_input(nl.dff_cells()[0], 0, nq).unwrap();
        nl.mark_output(q, "q");
        let mut rng = StdRng::seed_from_u64(7);
        let report = estimate_zero_delay_activity(&nl, 5, &mut rng);
        // 4 cycle transitions × 2 nets × 64 lanes.
        assert_eq!(report.toggles, 4 * 2 * LANES as u64);
        // q and nq each drive one sink (weight 2); the dangling placeholder
        // net never toggles.
        assert_eq!(report.weighted_toggles, 2 * 4 * 2 * LANES as u64);
    }

    #[test]
    fn glitching_raises_activity() {
        // An XOR hazard generator toggles more under transport delay than
        // the same circuit with the hazard masked.
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("g");
        let a = nl.add_input("a");
        let slow = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.bind_lib(
            nl.net(slow).driver().unwrap(),
            lib.by_name("DLY4X1").unwrap(),
        )
        .unwrap();
        let y = nl.add_gate(GateKind::Xor, &[a, slow]).unwrap();
        nl.mark_output(y, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Logic::Zero).rise(Ps(1000), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(5000));
        let glitchy = activity(&nl, &res);
        // Same stimulus, inertial model: the 1ns pulse survives the XOR (it
        // is wider than the XOR delay), so compare against a steady input
        // instead: no transition at all.
        let calm_stim = {
            let mut s = Stimulus::new();
            s.set(a, Logic::Zero);
            s
        };
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&calm_stim, Ps(5000));
        let calm = activity(&nl, &res);
        assert!(glitchy.toggles > calm.toggles);
        assert!(glitchy.relative_to(&calm).is_infinite() || glitchy.relative_to(&calm) > 1.0);
    }
}
