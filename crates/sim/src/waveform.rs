//! Recorded signal waveforms.

use glitchlock_netlist::Logic;
use glitchlock_stdcell::Ps;
use std::fmt;

/// The recorded history of one net: an initial value plus a sorted list of
/// `(time, new-value)` changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waveform {
    initial: Logic,
    changes: Vec<(Ps, Logic)>,
}

impl Waveform {
    /// A waveform that holds `initial` forever (until changes are pushed).
    pub fn constant(initial: Logic) -> Self {
        Waveform {
            initial,
            changes: Vec::new(),
        }
    }

    /// Appends a change. Same-time changes collapse to the last value;
    /// no-op changes are dropped.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `time` is before the last recorded change.
    pub fn push(&mut self, time: Ps, value: Logic) {
        if let Some(last) = self.changes.last_mut() {
            debug_assert!(time >= last.0, "waveform changes must be time-ordered");
            if last.0 == time {
                last.1 = value;
                // Collapse a change that lands back on the previous level.
                let prev = self
                    .changes
                    .len()
                    .checked_sub(2)
                    .map(|i| self.changes[i].1)
                    .unwrap_or(self.initial);
                if prev == value {
                    self.changes.pop();
                }
                return;
            }
            if last.1 == value {
                return;
            }
        } else if self.initial == value {
            return;
        }
        self.changes.push((time, value));
    }

    /// Value at time `t` (changes take effect exactly at their timestamp).
    pub fn value_at(&self, t: Ps) -> Logic {
        match self.changes.binary_search_by_key(&t, |&(ct, _)| ct) {
            Ok(i) => self.changes[i].1,
            Err(0) => self.initial,
            Err(i) => self.changes[i - 1].1,
        }
    }

    /// Initial value.
    pub fn initial(&self) -> Logic {
        self.initial
    }

    /// The `(time, value)` change list.
    pub fn changes(&self) -> &[(Ps, Logic)] {
        &self.changes
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.changes.len()
    }

    /// True if the signal holds a single value across `[from, to]`
    /// (inclusive of both endpoints).
    pub fn stable_in(&self, from: Ps, to: Ps) -> bool {
        !self.changes.iter().any(|&(t, _)| t > from && t <= to)
    }

    /// Maximal constant-level intervals as `(start, end, level)`, with the
    /// final interval ending at `until`.
    pub fn levels(&self, until: Ps) -> Vec<(Ps, Ps, Logic)> {
        let mut out = Vec::new();
        let mut cur_start = Ps::ZERO;
        let mut cur_val = self.initial;
        for &(t, v) in &self.changes {
            if t > until {
                break;
            }
            if t > cur_start {
                out.push((cur_start, t, cur_val));
            }
            cur_start = t;
            cur_val = v;
        }
        if cur_start < until {
            out.push((cur_start, until, cur_val));
        }
        out
    }

    /// Pulses (maximal intervals) at `level` that are strictly shorter than
    /// `max_width` — the classic glitch query. Returns `(start, end)` pairs.
    pub fn pulses_shorter_than(&self, level: Logic, max_width: Ps, until: Ps) -> Vec<(Ps, Ps)> {
        self.levels(until)
            .into_iter()
            .filter(|&(s, e, v)| v == level && e - s < max_width && s > Ps::ZERO)
            .map(|(s, e, _)| (s, e))
            .collect()
    }

    /// The first pulse at `level` starting at or after `from`, if any.
    pub fn pulse_after(&self, level: Logic, from: Ps, until: Ps) -> Option<(Ps, Ps)> {
        self.levels(until)
            .into_iter()
            .find(|&(s, _, v)| v == level && s >= from)
            .map(|(s, e, _)| (s, e))
    }

    /// Renders the waveform as an ASCII strip with one character per
    /// `step` of time, e.g. `"___~~~___"` (`_` low, `~` high, `?` unknown).
    pub fn ascii(&self, until: Ps, step: Ps) -> String {
        assert!(step > Ps::ZERO, "step must be positive");
        let mut s = String::new();
        let mut t = Ps::ZERO;
        while t < until {
            s.push(match self.value_at(t) {
                Logic::Zero => '_',
                Logic::One => '~',
                Logic::X => '?',
            });
            t += step;
        }
        s
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.initial)?;
        for &(t, v) in &self.changes {
            write!(f, " -[{t}]-> {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::{One, Zero, X};

    fn pulse_wave() -> Waveform {
        let mut w = Waveform::constant(Zero);
        w.push(Ps(3000), One);
        w.push(Ps(6000), Zero);
        w
    }

    #[test]
    fn value_at_boundaries() {
        let w = pulse_wave();
        assert_eq!(w.value_at(Ps(0)), Zero);
        assert_eq!(w.value_at(Ps(2999)), Zero);
        assert_eq!(w.value_at(Ps(3000)), One, "change applies at its timestamp");
        assert_eq!(w.value_at(Ps(5999)), One);
        assert_eq!(w.value_at(Ps(6000)), Zero);
    }

    #[test]
    fn noop_and_sametime_changes_collapse() {
        let mut w = Waveform::constant(Zero);
        w.push(Ps(10), Zero); // no-op
        assert_eq!(w.transition_count(), 0);
        w.push(Ps(20), One);
        w.push(Ps(20), Zero); // same-time revert collapses entirely
        assert_eq!(w.transition_count(), 0);
        w.push(Ps(30), One);
        w.push(Ps(30), X); // same-time override keeps the last value
        assert_eq!(w.changes(), &[(Ps(30), X)]);
    }

    #[test]
    fn stability_windows() {
        let w = pulse_wave();
        assert!(w.stable_in(Ps(3000), Ps(5999)), "level of the pulse");
        assert!(!w.stable_in(Ps(2999), Ps(3000)), "edge inside window");
        assert!(!w.stable_in(Ps(2500), Ps(6500)));
        assert!(w.stable_in(Ps(6000), Ps(9000)));
    }

    #[test]
    fn levels_partition_time() {
        let w = pulse_wave();
        assert_eq!(
            w.levels(Ps(8000)),
            vec![
                (Ps(0), Ps(3000), Zero),
                (Ps(3000), Ps(6000), One),
                (Ps(6000), Ps(8000), Zero)
            ]
        );
    }

    #[test]
    fn glitch_query_finds_short_pulse() {
        let w = pulse_wave();
        assert_eq!(
            w.pulses_shorter_than(One, Ps(4000), Ps(10_000)),
            vec![(Ps(3000), Ps(6000))]
        );
        assert!(w.pulses_shorter_than(One, Ps(3000), Ps(10_000)).is_empty());
        assert_eq!(
            w.pulse_after(One, Ps(1000), Ps(10_000)),
            Some((Ps(3000), Ps(6000)))
        );
        assert_eq!(w.pulse_after(One, Ps(6001), Ps(10_000)), None);
    }

    #[test]
    fn ascii_render() {
        let w = pulse_wave();
        assert_eq!(w.ascii(Ps(9000), Ps(1000)), "___~~~___");
    }

    #[test]
    fn display_lists_changes() {
        let w = pulse_wave();
        let s = w.to_string();
        assert!(s.starts_with('0'));
        assert!(s.contains("3.0ns"));
    }
}
