//! Value Change Dump (VCD) export — the waveform interchange format every
//! EDA waveform viewer reads (the role Synopsys Verdi plays in the paper's
//! flow).

use crate::SimResult;
use glitchlock_netlist::{Logic, NetId, Netlist};
use glitchlock_stdcell::Ps;
use std::fmt::Write as _;

/// Writes selected nets of a simulation result as VCD text.
///
/// Pass `nets = None` to dump every net. Identifiers are generated from
/// the VCD printable-character alphabet; net names are taken from the
/// netlist (sanitized for whitespace).
pub fn to_vcd(netlist: &Netlist, result: &SimResult, nets: Option<&[NetId]>) -> String {
    let selected: Vec<NetId> = match nets {
        Some(list) => list.to_vec(),
        None => netlist.nets().map(|(id, _)| id).collect(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "$date synthetic $end");
    let _ = writeln!(out, "$version glitchlock sim $end");
    let _ = writeln!(out, "$timescale 1ps $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(netlist.name()));
    let ids: Vec<String> = (0..selected.len()).map(vcd_id).collect();
    for (net, id) in selected.iter().zip(&ids) {
        let _ = writeln!(
            out,
            "$var wire 1 {id} {} $end",
            sanitize(netlist.net(*net).name())
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for (net, id) in selected.iter().zip(&ids) {
        let _ = writeln!(out, "{}{id}", level_char(result.waveform(*net).initial()));
    }
    let _ = writeln!(out, "$end");

    // Merge all change lists into a single time-ordered dump.
    let mut events: Vec<(Ps, usize, Logic)> = Vec::new();
    for (i, net) in selected.iter().enumerate() {
        for &(t, v) in result.waveform(*net).changes() {
            events.push((t, i, v));
        }
    }
    events.sort_by_key(|&(t, i, _)| (t, i));
    let mut last_time: Option<Ps> = None;
    for (t, i, v) in events {
        if last_time != Some(t) {
            let _ = writeln!(out, "#{}", t.as_ps());
            last_time = Some(t);
        }
        let _ = writeln!(out, "{}{}", level_char(v), ids[i]);
    }
    let _ = writeln!(out, "#{}", result.until().as_ps());
    out
}

fn level_char(v: Logic) -> char {
    match v {
        Logic::Zero => '0',
        Logic::One => '1',
        Logic::X => 'x',
    }
}

/// Short printable identifier for signal `i` (base-94 over `!`..`~`).
fn vcd_id(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator, Stimulus};
    use glitchlock_netlist::GateKind;
    use glitchlock_stdcell::Library;

    fn run_toy() -> (Netlist, SimResult, NetId, NetId) {
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("toy top");
        let a = nl.add_input("a");
        let y = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        nl.mark_output(y, "y");
        let mut stim = Stimulus::new();
        stim.set(a, Logic::Zero).rise(Ps(1000), a).fall(Ps(2000), a);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps(3000));
        (nl, res, a, y)
    }

    #[test]
    fn header_and_structure() {
        let (nl, res, a, y) = run_toy();
        let vcd = to_vcd(&nl, &res, Some(&[a, y]));
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$scope module toy_top $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        // The second selected net uses the next identifier and its
        // netlist-internal name.
        assert!(vcd.contains(&format!("$var wire 1 \" {} $end", nl.net(y).name())));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn dumps_initial_values_and_changes_in_time_order() {
        let (nl, res, a, y) = run_toy();
        let vcd = to_vcd(&nl, &res, Some(&[a, y]));
        // Initial: a=0, y=1.
        let init = vcd.split("$dumpvars").nth(1).unwrap();
        assert!(init.contains("0!"));
        assert!(init.contains("1\""));
        // a rises at 1000, y falls at 1025 (INV delay).
        let t1000 = vcd.find("#1000").expect("change at 1000");
        let t1025 = vcd.find("#1025").expect("change at 1025");
        let t2000 = vcd.find("#2000").expect("change at 2000");
        assert!(t1000 < t1025 && t1025 < t2000, "time-ordered dump");
    }

    #[test]
    fn dump_all_nets_by_default() {
        let (nl, res, _, _) = run_toy();
        let vcd = to_vcd(&nl, &res, None);
        let vars = vcd.matches("$var wire").count();
        assert_eq!(vars, nl.net_count());
    }

    #[test]
    fn id_alphabet_round_trips_uniquely() {
        let ids: Vec<String> = (0..500).map(vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "identifiers must be unique");
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(93), "~");
        assert_eq!(vcd_id(94), "!\"");
    }
}
