//! Event-driven gate-level timing simulation for `glitchlock`.
//!
//! Glitches — the phenomenon the paper's key-gate is built on — only exist
//! in the timing domain, so this crate provides a discrete-event simulator
//! with per-cell propagation delays resolved from the standard-cell library:
//!
//! * **Transport delay** ([`DelayModel::Transport`], the default): every
//!   input transition propagates; pulses narrower than the gate delay
//!   survive. This is the model under which the glitch key-gate operates.
//! * **Inertial delay** ([`DelayModel::Inertial`]): a gate swallows pulses
//!   shorter than its propagation delay (classic pulse rejection), available
//!   for margin studies.
//!
//! Flip-flops sample their D pin on each rising clock edge (per-FF edge
//! times support clock skew, `T_i`/`T_j` in the paper's Eq. (1)) and the
//! result records **setup/hold stability-window violations** exactly the way
//! the paper reasons about them: a D-pin transition inside
//! `(T - T_setup, T + T_hold)` is a violation; a glitch that starts before
//! the setup window and ends after the hold window transmits its level
//! cleanly (Fig. 7(a)).
//!
//! # Example: observing a glitch
//!
//! ```rust
//! use glitchlock_netlist::{Netlist, GateKind, Logic};
//! use glitchlock_sim::{Simulator, SimConfig, Stimulus};
//! use glitchlock_stdcell::{Library, Ps};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::cl013g_like();
//! let mut nl = Netlist::new("pulse");
//! let a = nl.add_input("a");
//! let slow = nl.add_gate(GateKind::Buf, &[a])?;
//! nl.bind_lib(nl.net(slow).driver().unwrap(), lib.by_name("DLY4X1").unwrap())?;
//! let y = nl.add_gate(GateKind::Xor, &[a, slow])?; // hazard generator
//! nl.mark_output(y, "y");
//!
//! let mut stim = Stimulus::new();
//! stim.set(a, Logic::Zero);
//! stim.at(Ps::from_ns(2), a, Logic::One);
//! let cfg = SimConfig::ideal(); // zero gate delay, delay cells keep theirs
//! let result = Simulator::new(&nl, &lib, cfg).run(&stim, Ps::from_ns(10));
//! let wave = result.waveform(y);
//! // The XOR emits a 1ns-wide pulse while the delayed copy catches up.
//! assert_eq!(wave.value_at(Ps::from_ns(2) + Ps(500)), Logic::One);
//! assert_eq!(wave.value_at(Ps::from_ns(4)), Logic::Zero);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod config;
mod engine;
mod stimulus;
mod waveform;

pub mod activity;
pub mod vcd;

pub use config::{ClockSpec, DelayModel, SimConfig};
pub use engine::{SimResult, Simulator, Violation, ViolationKind};
pub use stimulus::Stimulus;
pub use waveform::Waveform;
