//! Input stimulus description.

use glitchlock_netlist::{CellId, Logic, NetId};
use glitchlock_stdcell::Ps;
use std::collections::HashMap;

/// Input waveforms and initial state for a simulation run.
///
/// Values not set default to `X`. The circuit is assumed settled at t = 0
/// with the initial values (the simulator seeds every internal net with the
/// zero-delay evaluation of the initial assignment).
#[derive(Clone, Debug, Default)]
pub struct Stimulus {
    initial: HashMap<NetId, Logic>,
    initial_ff: HashMap<CellId, Logic>,
    events: Vec<(Ps, NetId, Logic)>,
}

impl Stimulus {
    /// An empty stimulus (all inputs and flip-flops start at `X`).
    pub fn new() -> Self {
        Stimulus::default()
    }

    /// Sets the initial (t = 0) value of an input net.
    pub fn set(&mut self, net: NetId, value: Logic) -> &mut Self {
        self.initial.insert(net, value);
        self
    }

    /// Sets the initial Q value of a flip-flop.
    pub fn set_ff(&mut self, ff: CellId, value: Logic) -> &mut Self {
        self.initial_ff.insert(ff, value);
        self
    }

    /// Schedules an input net to change to `value` at `time`.
    pub fn at(&mut self, time: Ps, net: NetId, value: Logic) -> &mut Self {
        self.events.push((time, net, value));
        self
    }

    /// Schedules a positive pulse `[start, start+width)` on an input that is
    /// otherwise low, or the inverse for an input that is high at `start`.
    pub fn pulse(&mut self, start: Ps, width: Ps, net: NetId, level: Logic) -> &mut Self {
        self.at(start, net, level);
        self.at(start + width, net, !level);
        self
    }

    /// Schedules a rising transition at `time` (0 before, 1 after).
    pub fn rise(&mut self, time: Ps, net: NetId) -> &mut Self {
        self.at(time, net, Logic::One)
    }

    /// Schedules a falling transition at `time`.
    pub fn fall(&mut self, time: Ps, net: NetId) -> &mut Self {
        self.at(time, net, Logic::Zero)
    }

    /// Initial value of an input net (default `X`).
    pub fn initial_of(&self, net: NetId) -> Logic {
        self.initial.get(&net).copied().unwrap_or(Logic::X)
    }

    /// Initial Q of a flip-flop (default `X`).
    pub fn initial_ff_of(&self, ff: CellId) -> Logic {
        self.initial_ff.get(&ff).copied().unwrap_or(Logic::X)
    }

    /// The scheduled input events, sorted by time (stable for equal times).
    pub fn sorted_events(&self) -> Vec<(Ps, NetId, Logic)> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|&(t, _, _)| t);
        ev
    }

    /// Number of scheduled events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_x() {
        let stim = Stimulus::new();
        assert_eq!(stim.initial_of(NetId::from_index(0)), Logic::X);
        assert_eq!(stim.initial_ff_of(CellId::from_index(0)), Logic::X);
    }

    #[test]
    fn pulse_schedules_two_edges() {
        let n = NetId::from_index(3);
        let mut stim = Stimulus::new();
        stim.set(n, Logic::Zero)
            .pulse(Ps(100), Ps(50), n, Logic::One);
        let ev = stim.sorted_events();
        assert_eq!(
            ev,
            vec![(Ps(100), n, Logic::One), (Ps(150), n, Logic::Zero)]
        );
    }

    #[test]
    fn events_sorted_stably() {
        let a = NetId::from_index(0);
        let b = NetId::from_index(1);
        let mut stim = Stimulus::new();
        stim.at(Ps(200), a, Logic::One)
            .at(Ps(100), b, Logic::One)
            .at(Ps(200), b, Logic::Zero);
        let ev = stim.sorted_events();
        assert_eq!(ev[0].1, b);
        assert_eq!(ev[1], (Ps(200), a, Logic::One));
        assert_eq!(ev[2], (Ps(200), b, Logic::Zero));
        assert_eq!(stim.event_count(), 3);
    }

    #[test]
    fn rise_and_fall_shorthand() {
        let n = NetId::from_index(0);
        let mut stim = Stimulus::new();
        stim.rise(Ps(10), n).fall(Ps(20), n);
        assert_eq!(
            stim.sorted_events(),
            vec![(Ps(10), n, Logic::One), (Ps(20), n, Logic::Zero)]
        );
    }
}
