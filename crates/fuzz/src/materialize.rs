//! Recipe → test-case materialization.
//!
//! Turns a [`Recipe`] into a concrete netlist plus lock outcome. The
//! mapping is *total* and deterministic: every recipe yields a valid,
//! acyclic netlist (gate sources are reduced modulo the nets available at
//! each point), and lockers that cannot be applied (too few sites, no
//! feasible flip-flops) produce [`LockOutcome::Skipped`] rather than an
//! error, so the fuzz loop and the shrinker never have to special-case
//! half-built designs.

use crate::recipe::{GateGene, LockGene, NetlistGene, Recipe};
use glitchlock_circuits::custom_profile;
use glitchlock_core::gk::GkDesign;
use glitchlock_core::locking::{AntiSat, LockScheme, Locked, MuxLock, SarLock, Tdk, XorLock};
use glitchlock_core::{GkEncryptor, GkLocked};
use glitchlock_netlist::{NetId, Netlist};
use glitchlock_sta::ClockModel;
use glitchlock_stdcell::{Library, Ps};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What locking produced for a case.
#[derive(Clone, Debug)]
pub enum LockOutcome {
    /// The recipe asked for no lock.
    Unlocked,
    /// The locker declined (e.g. not enough sites / no feasible flip-flop).
    Skipped {
        /// Scheme that was attempted.
        scheme: &'static str,
        /// Why it could not be applied.
        reason: String,
    },
    /// A statically-keyed lock (XOR, MUX, SARLock, Anti-SAT, TDK).
    Static(Box<Locked>),
    /// A glitch-key-gate lock with KEYGEN (timing-domain key).
    Gk(Box<GkLocked>),
}

/// A materialized fuzz case.
#[derive(Clone, Debug)]
pub struct TestCase {
    /// The genotype this case was built from.
    pub recipe: Recipe,
    /// The original (unlocked) netlist.
    pub netlist: Netlist,
    /// Clock period the case is judged at.
    pub period: Ps,
    /// Lock result.
    pub lock: LockOutcome,
}

/// Salt mixed into the recipe seed for the locking RNG, so netlist-level
/// and lock-level randomness stay independent.
const LOCK_SALT: u64 = 0x6c6f_636b_5f73_616c;

/// Builds the netlist and applies the lock.
pub fn materialize(recipe: &Recipe, library: &Library) -> TestCase {
    let (netlist, period) = match &recipe.netlist {
        NetlistGene::Gates {
            n_inputs,
            n_ffs,
            gates,
            ff_taps,
            po_taps,
        } => (
            build_gates(*n_inputs, *n_ffs, gates, ff_taps, po_taps),
            Ps::from_ns(3),
        ),
        NetlistGene::Profile {
            cells,
            ffs,
            inputs,
            outputs,
            period_ns,
            coverage,
            seed,
        } => {
            let profile = custom_profile(
                *cells,
                *ffs,
                *inputs,
                *outputs,
                Ps::from_ns(*period_ns),
                *coverage,
                *seed,
            );
            (
                glitchlock_circuits::generate(&profile),
                profile.clock_period,
            )
        }
    };
    let lock = apply_lock(recipe, &netlist, period, library);
    TestCase {
        recipe: recipe.clone(),
        netlist,
        period,
        lock,
    }
}

fn apply_lock(recipe: &Recipe, netlist: &Netlist, period: Ps, library: &Library) -> LockOutcome {
    let mut rng = StdRng::seed_from_u64(recipe.seed ^ LOCK_SALT);
    let static_lock =
        |scheme: &'static str, r: Result<Locked, glitchlock_core::CoreError>| -> LockOutcome {
            match r {
                Ok(locked) => LockOutcome::Static(Box::new(locked)),
                Err(e) => LockOutcome::Skipped {
                    scheme,
                    reason: e.to_string(),
                },
            }
        };
    match recipe.lock {
        LockGene::None => LockOutcome::Unlocked,
        LockGene::Xor { bits } => static_lock("xor", XorLock::new(bits).lock(netlist, &mut rng)),
        LockGene::Mux { bits } => static_lock("mux", MuxLock::new(bits).lock(netlist, &mut rng)),
        LockGene::SarLock { bits } => {
            static_lock("sarlock", SarLock::new(bits).lock(netlist, &mut rng))
        }
        LockGene::AntiSat { n } => static_lock("antisat", AntiSat::new(n).lock(netlist, &mut rng)),
        LockGene::Tdk { n } => static_lock(
            "tdk",
            Tdk::new(n)
                .lock_with_library(netlist, library, &mut rng)
                .map(|t| t.locked),
        ),
        LockGene::Gk {
            n_gks,
            mix,
            share,
            glitch_ps,
        } => {
            let encryptor = GkEncryptor {
                mix_schemes: mix,
                share_keygens: share,
                design: GkDesign {
                    l_glitch: Ps(glitch_ps),
                    ..GkDesign::paper_default()
                },
                ..GkEncryptor::new(n_gks)
            };
            match encryptor.encrypt(netlist, library, &ClockModel::new(period), &mut rng) {
                Ok(locked) => LockOutcome::Gk(Box::new(locked)),
                Err(e) => LockOutcome::Skipped {
                    scheme: "gk",
                    reason: e.to_string(),
                },
            }
        }
    }
}

/// Materializes the gate genome. Total: any gene vector yields a valid
/// netlist (sources reduced modulo the pool, arities repaired by cycling).
fn build_gates(
    n_inputs: usize,
    n_ffs: usize,
    gates: &[GateGene],
    ff_taps: &[usize],
    po_taps: &[usize],
) -> Netlist {
    let n_inputs = n_inputs.max(1);
    let mut nl = Netlist::new("fuzzcase");
    let mut pool: Vec<NetId> = (0..n_inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    // Flip-flops initially feed from input 0; D pins are rewired to their
    // taps once the whole pool exists (no dangling placeholder nets).
    let mut ff_cells = Vec::with_capacity(n_ffs);
    for i in 0..n_ffs {
        let q = nl
            .add_dff_named(pool[0], format!("ff{i}"))
            .expect("dff arity");
        ff_cells.push(nl.net(q).driver().expect("dff drives q"));
        pool.push(q);
    }
    for gene in gates {
        let avail = pool.len();
        let arity = match gene.kind.fixed_arity() {
            Some(a) => a,
            // n-ary gates: keep the gene's width, clamped to a sane range.
            None => gene.srcs.len().clamp(2, 6),
        };
        let srcs: Vec<NetId> = (0..arity)
            .map(|j| {
                let raw = gene
                    .srcs
                    .get(j % gene.srcs.len().max(1))
                    .copied()
                    .unwrap_or(j);
                pool[raw % avail]
            })
            .collect();
        let y = nl
            .add_gate(gene.kind, &srcs)
            .expect("repaired arity is legal");
        pool.push(y);
    }
    for (i, &ff) in ff_cells.iter().enumerate() {
        let tap = ff_taps.get(i).copied().unwrap_or(i) % pool.len();
        nl.rewire_input(ff, 0, pool[tap]).expect("ff exists");
    }
    for (i, t) in po_taps.iter().enumerate() {
        nl.mark_output(pool[t % pool.len()], format!("po{i}"));
    }
    nl.validate().expect("materialized netlist is valid");
    nl
}

/// Re-expresses a netlist as an explicit gate genome, so the shrinker can
/// delta-debug cases that were born from a [`NetlistGene::Profile`].
///
/// Returns `None` when the netlist uses a cell the genome cannot express
/// or contains a combinational cycle.
pub fn genes_from_netlist(netlist: &Netlist, lock: LockGene, seed: u64) -> Option<Recipe> {
    let order = netlist.topo_order_cached().ok()?;
    let mut pool_index = std::collections::HashMap::new();
    for (i, &pi) in netlist.input_nets().iter().enumerate() {
        pool_index.insert(pi, i);
    }
    let n_inputs = netlist.input_nets().len();
    let n_ffs = netlist.dff_cells().len();
    for (i, &ff) in netlist.dff_cells().iter().enumerate() {
        pool_index.insert(netlist.cell(ff).output(), n_inputs + i);
    }
    let mut gates = Vec::with_capacity(order.len());
    for &cell in order {
        let c = netlist.cell(cell);
        crate::recipe::kind_name(c.kind())?;
        let srcs: Option<Vec<usize>> = c
            .inputs()
            .iter()
            .map(|n| pool_index.get(n).copied())
            .collect();
        gates.push(GateGene {
            kind: c.kind(),
            srcs: srcs?,
        });
        pool_index.insert(c.output(), n_inputs + n_ffs + gates.len() - 1);
    }
    let ff_taps: Option<Vec<usize>> = netlist
        .dff_cells()
        .iter()
        .map(|&ff| pool_index.get(&netlist.cell(ff).inputs()[0]).copied())
        .collect();
    let po_taps: Option<Vec<usize>> = netlist
        .output_ports()
        .iter()
        .map(|(n, _)| pool_index.get(n).copied())
        .collect();
    Some(Recipe {
        seed,
        netlist: NetlistGene::Gates {
            n_inputs,
            n_ffs,
            gates,
            ff_taps: ff_taps?,
            po_taps: po_taps?,
        },
        lock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::random_recipe;
    use glitchlock_netlist::{GateKind, Logic, SeqState};

    fn lib() -> Library {
        Library::cl013g_like().with_gk_delay_macros()
    }

    #[test]
    fn materialization_is_deterministic_and_valid() {
        let library = lib();
        for seed in 0..30 {
            let r = random_recipe(seed);
            let a = materialize(&r, &library);
            let b = materialize(&r, &library);
            a.netlist.validate().unwrap();
            assert_eq!(
                glitchlock_netlist::bench_format::emit(&a.netlist),
                glitchlock_netlist::bench_format::emit(&b.netlist),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn degenerate_genes_still_materialize() {
        // Empty gate list, out-of-range taps, zero inputs: all repaired.
        let r = Recipe {
            seed: 1,
            netlist: NetlistGene::Gates {
                n_inputs: 0,
                n_ffs: 2,
                gates: vec![GateGene {
                    kind: GateKind::Mux4,
                    srcs: vec![999],
                }],
                ff_taps: vec![77, 88],
                po_taps: vec![1234],
            },
            lock: LockGene::Xor { bits: 1 },
        };
        let case = materialize(&r, &lib());
        case.netlist.validate().unwrap();
        assert_eq!(case.netlist.stats().inputs, 1);
    }

    #[test]
    fn genes_round_trip_preserves_sequential_behaviour() {
        let library = lib();
        for seed in [3u64, 11, 19] {
            let r = random_recipe(seed);
            let case = materialize(&r, &library);
            let Some(back) = genes_from_netlist(&case.netlist, LockGene::None, r.seed) else {
                panic!("gene netlists are always expressible");
            };
            let rebuilt = materialize(&back, &library).netlist;
            let n_in = case.netlist.input_nets().len();
            assert_eq!(rebuilt.input_nets().len(), n_in);
            let mut sa = SeqState::reset(&case.netlist);
            let mut sb = SeqState::reset(&rebuilt);
            let mut rng = StdRng::seed_from_u64(99);
            use rand::Rng;
            for _ in 0..12 {
                let pat: Vec<Logic> = (0..n_in).map(|_| Logic::from_bool(rng.gen())).collect();
                assert_eq!(
                    sa.step(&case.netlist, &pat),
                    sb.step(&rebuilt, &pat),
                    "seed {seed}"
                );
            }
        }
    }
}
