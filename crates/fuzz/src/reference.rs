//! Independent reference evaluator.
//!
//! A second, deliberately separate implementation of zero-delay
//! three-valued netlist semantics: its own Kahn scheduling and its own
//! gate equations, sharing no code with [`glitchlock_netlist::CombView`]
//! or the packed [`glitchlock_netlist::EvalProgram`]. Differential
//! referees compare this machine against the production engines; a bug in
//! either side shows up as a disagreement instead of cancelling out.
//!
//! [`Inject`] deliberately mis-wires one gate equation so CI can prove
//! the fuzzer *detects* and *shrinks* a real semantic divergence.

use glitchlock_netlist::{CellId, GateKind, Logic, Netlist};
use std::collections::VecDeque;

/// A deliberate semantic fault for negative testing of the fuzz loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Inject {
    /// No fault: faithful reference semantics.
    #[default]
    None,
    /// Evaluate `XNOR` as `XOR` (dropped output inversion).
    XnorFlip,
}

impl Inject {
    /// Parses the CLI spelling of an injection.
    pub fn from_name(name: &str) -> Option<Inject> {
        match name {
            "none" => Some(Inject::None),
            "xnor-flip" => Some(Inject::XnorFlip),
            _ => None,
        }
    }
}

/// The reference machine: a pre-scheduled evaluation order for one netlist.
#[derive(Clone, Debug)]
pub struct RefMachine {
    /// Combinational cells in a self-derived dependency order.
    order: Vec<CellId>,
    inject: Inject,
}

impl RefMachine {
    /// Schedules `netlist` with an independent worklist Kahn sort.
    ///
    /// # Panics
    ///
    /// Panics if the combinational logic is cyclic (materialized fuzz
    /// cases are validated acyclic before they reach any referee).
    pub fn new(netlist: &Netlist, inject: Inject) -> Self {
        let n = netlist.cells().len();
        let is_comb = |c: CellId| {
            let k = netlist.cell(c).kind();
            k.is_combinational() && k != GateKind::Input
        };
        let mut indeg = vec![0usize; n];
        let mut queue = VecDeque::new();
        for (id, cell) in netlist.cells() {
            if !is_comb(id) {
                continue;
            }
            let d = cell
                .inputs()
                .iter()
                .filter(|&&net| netlist.net(net).driver().is_some_and(is_comb))
                .count();
            indeg[id.index()] = d;
            if d == 0 {
                queue.push_back(id);
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &(reader, _) in netlist.net(netlist.cell(c).output()).fanout() {
                if is_comb(reader) {
                    indeg[reader.index()] -= 1;
                    if indeg[reader.index()] == 0 {
                        queue.push_back(reader);
                    }
                }
            }
        }
        let n_comb = netlist.cells().filter(|&(id, _)| is_comb(id)).count();
        assert_eq!(order.len(), n_comb, "combinational cycle in fuzz case");
        RefMachine { order, inject }
    }

    /// Evaluates every net from primary-input and flip-flop-Q values
    /// (both in netlist declaration order). Unset nets stay `X`.
    pub fn eval_nets(&self, netlist: &Netlist, inputs: &[Logic], q: &[Logic]) -> Vec<Logic> {
        let mut nets = vec![Logic::X; netlist.net_count()];
        for (i, &pi) in netlist.input_nets().iter().enumerate() {
            nets[pi.index()] = inputs.get(i).copied().unwrap_or(Logic::X);
        }
        for (i, &ff) in netlist.dff_cells().iter().enumerate() {
            nets[netlist.cell(ff).output().index()] = q.get(i).copied().unwrap_or(Logic::X);
        }
        for &c in &self.order {
            let cell = netlist.cell(c);
            let ins: Vec<Logic> = cell.inputs().iter().map(|n| nets[n.index()]).collect();
            nets[cell.output().index()] = ref_gate(cell.kind(), &ins, self.inject);
        }
        nets
    }

    /// Primary-output values from a completed [`Self::eval_nets`] vector.
    pub fn outputs_of(&self, netlist: &Netlist, nets: &[Logic]) -> Vec<Logic> {
        netlist
            .output_ports()
            .iter()
            .map(|(n, _)| nets[n.index()])
            .collect()
    }

    /// Flip-flop D-pin values from a completed [`Self::eval_nets`] vector,
    /// in [`Netlist::dff_cells`] order.
    pub fn dff_d_of(&self, netlist: &Netlist, nets: &[Logic]) -> Vec<Logic> {
        netlist
            .dff_cells()
            .iter()
            .map(|&ff| nets[netlist.cell(ff).inputs()[0].index()])
            .collect()
    }

    /// One synchronous cycle: returns the outputs and advances `q` to the
    /// sampled D values.
    pub fn step(&self, netlist: &Netlist, q: &mut Vec<Logic>, inputs: &[Logic]) -> Vec<Logic> {
        let nets = self.eval_nets(netlist, inputs, q);
        let po = self.outputs_of(netlist, &nets);
        *q = self.dff_d_of(netlist, &nets);
        po
    }
}

/// Reference gate equations, written from the gate definitions rather
/// than the production code: fold-free, explicit counting semantics.
fn ref_gate(kind: GateKind, ins: &[Logic], inject: Inject) -> Logic {
    let any_x = ins.iter().any(|v| !v.is_known());
    let zeros = ins.iter().filter(|&&v| v == Logic::Zero).count();
    let ones = ins.iter().filter(|&&v| v == Logic::One).count();
    let parity = if any_x {
        Logic::X
    } else {
        Logic::from_bool(ones % 2 == 1)
    };
    match kind {
        GateKind::Input => ins.first().copied().unwrap_or(Logic::X),
        GateKind::Const0 => Logic::Zero,
        GateKind::Const1 => Logic::One,
        GateKind::Buf => ins[0],
        GateKind::Inv => match ins[0] {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        },
        GateKind::And | GateKind::Nand => {
            let and = if zeros > 0 {
                Logic::Zero
            } else if any_x {
                Logic::X
            } else {
                Logic::One
            };
            if kind == GateKind::And {
                and
            } else {
                !and
            }
        }
        GateKind::Or | GateKind::Nor => {
            let or = if ones > 0 {
                Logic::One
            } else if any_x {
                Logic::X
            } else {
                Logic::Zero
            };
            if kind == GateKind::Or {
                or
            } else {
                !or
            }
        }
        GateKind::Xor => parity,
        GateKind::Xnor => match inject {
            Inject::XnorFlip => parity,
            Inject::None => !parity,
        },
        GateKind::Mux2 => ref_mux(ins[2], ins[0], ins[1]),
        GateKind::Mux4 => ref_mux(
            ins[5],
            ref_mux(ins[4], ins[0], ins[1]),
            ref_mux(ins[4], ins[2], ins[3]),
        ),
        GateKind::Dff => unreachable!("flip-flops are not scheduled combinationally"),
    }
}

/// Reference 2:1 mux with the X-agreement rule.
fn ref_mux(sel: Logic, a: Logic, b: Logic) -> Logic {
    match sel.to_bool() {
        Some(false) => a,
        Some(true) => b,
        None => {
            if a == b && a.is_known() {
                a
            } else {
                Logic::X
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::CombView;

    fn all_patterns(n: usize) -> Vec<Vec<Logic>> {
        let mut out = Vec::new();
        let mut pat = vec![Logic::Zero; n];
        fn rec(i: usize, pat: &mut Vec<Logic>, out: &mut Vec<Vec<Logic>>) {
            if i == pat.len() {
                out.push(pat.clone());
                return;
            }
            for v in Logic::ALL {
                pat[i] = v;
                rec(i + 1, pat, out);
            }
        }
        rec(0, &mut pat, &mut out);
        out
    }

    #[test]
    fn matches_comb_view_on_every_gate_kind() {
        let mut nl = Netlist::new("kinds");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let y = nl.add_gate(kind, &[a, b, c]).unwrap();
            nl.mark_output(y, format!("{kind}_y"));
        }
        let m2 = nl.add_gate(GateKind::Mux2, &[a, b, c]).unwrap();
        nl.mark_output(m2, "m2");
        let inv = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        nl.mark_output(inv, "inv");
        let m4 = nl.add_gate(GateKind::Mux4, &[a, b, c, inv, m2, a]).unwrap();
        nl.mark_output(m4, "m4");
        let machine = RefMachine::new(&nl, Inject::None);
        let view = CombView::new(&nl);
        for pat in all_patterns(3) {
            let nets = machine.eval_nets(&nl, &pat, &[]);
            assert_eq!(
                machine.outputs_of(&nl, &nets),
                view.eval(&nl, &pat),
                "pattern {pat:?}"
            );
        }
    }

    #[test]
    fn xnor_flip_diverges_only_on_xnor() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Xnor, &[a, b]).unwrap();
        nl.mark_output(y, "y");
        let faulty = RefMachine::new(&nl, Inject::XnorFlip);
        let nets = faulty.eval_nets(&nl, &[Logic::One, Logic::One], &[]);
        assert_eq!(faulty.outputs_of(&nl, &nets), vec![Logic::Zero]);
    }
}
