//! The referee registry: independent oracles that must agree on every case.
//!
//! Each referee cross-checks two implementations that should be
//! observationally identical — e.g. the hand-rolled scalar evaluator
//! against the packed bit-parallel engine, or the event-driven simulator
//! against zero-delay stepping. A [`Verdict::Fail`] means two engines
//! disagreed (or an invariant like wrong-key corruption was violated);
//! the runner then shrinks the recipe to a minimal reproducer.

use crate::materialize::{LockOutcome, TestCase};
use crate::reference::{Inject, RefMachine};
use glitchlock_attacks::sat_attack::key_match_rate;
use glitchlock_attacks::{SatAttack, SatOutcome};
use glitchlock_core::insertion::timed_trace;
use glitchlock_core::{KeyVector, Locked};
use glitchlock_lint::{Level, LintContext, LintRunner};
use glitchlock_netlist::{
    bench_format, verilog, Aig, CombView, EvalProgram, Logic, NetId, Netlist, PackedLogic,
    SeqState, LANES,
};
use glitchlock_sat::equiv::{bounded_equiv, EquivResult};
use glitchlock_sim::{ClockSpec, SimConfig, Simulator, Stimulus};
use glitchlock_sta::{analyze, ClockModel};
use glitchlock_stdcell::{Library, Ps};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a referee may consult about one case.
pub struct RefereeCtx<'a> {
    /// The materialized case.
    pub case: &'a TestCase,
    /// The standard-cell library (with GK delay macros).
    pub library: &'a Library,
    /// Deliberate reference-evaluator fault, for negative testing.
    pub inject: Inject,
}

/// A referee's judgement of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All compared engines agree.
    Pass,
    /// The referee does not apply to this case (with the reason).
    Skip(String),
    /// Two engines disagree; the message pinpoints the divergence.
    Fail(String),
}

/// A named differential oracle.
pub struct Referee {
    /// Stable name used by `--referee` filters and reports.
    pub name: &'static str,
    /// One-line description for `--list-referees`.
    pub about: &'static str,
    run: fn(&RefereeCtx<'_>) -> Verdict,
}

impl Referee {
    /// Judges one case.
    pub fn run(&self, ctx: &RefereeCtx<'_>) -> Verdict {
        (self.run)(ctx)
    }
}

/// The full registry, in the order referees run.
pub fn registry() -> Vec<Referee> {
    vec![
        Referee {
            name: "scalar-vs-packed",
            about: "independent scalar evaluator vs packed engine, every net, every lane",
            run: scalar_vs_packed,
        },
        Referee {
            name: "sim-vs-packed",
            about: "event-driven zero-delay simulation vs packed sequential stepping",
            run: sim_vs_packed,
        },
        Referee {
            name: "sat-equiv",
            about: "correct-key locked design is SAT-equivalent to the oracle",
            run: sat_equiv,
        },
        Referee {
            name: "sat-backend-equiv",
            about: "legacy and modern CDCL backends agree on the SAT-attack outcome",
            run: sat_backend_equiv,
        },
        Referee {
            name: "wrong-key",
            about: "every single-bit key flip corrupts some output or transition",
            run: wrong_key,
        },
        Referee {
            name: "round-trip",
            about: "bench/verilog print-parse fixpoint and semantic preservation",
            run: round_trip,
        },
        Referee {
            name: "const-prop-vs-packed",
            about: "dataflow constant lattice vs packed engine, exhaustive at <=8 inputs",
            run: const_prop_vs_packed,
        },
        Referee {
            name: "aig-equiv",
            about:
                "netlist -> AIG -> netlist round trip vs packed engine, exhaustive at <=8 inputs",
            run: aig_equiv,
        },
        Referee {
            name: "count-vs-exhaustive",
            about: "ApproxMC-style hash-count estimator vs exhaustive sweep on small lockings",
            run: count_vs_exhaustive,
        },
        Referee {
            name: "lint-clean",
            about: "structural lint cleanliness; timing battery on GK-locked designs",
            run: lint_clean,
        },
    ]
}

/// The netlists a case exposes for engine-vs-engine comparison.
fn case_views(case: &TestCase) -> Vec<(&'static str, &Netlist)> {
    let mut v = vec![("original", &case.netlist)];
    match &case.lock {
        LockOutcome::Static(l) => v.push(("locked", &l.netlist)),
        LockOutcome::Gk(g) => v.push(("attack-view", &g.attack_view)),
        LockOutcome::Unlocked | LockOutcome::Skipped { .. } => {}
    }
    v
}

fn random_logic(rng: &mut StdRng) -> Logic {
    match rng.gen_range(0u32..5) {
        0 | 1 => Logic::Zero,
        2 | 3 => Logic::One,
        _ => Logic::X,
    }
}

/// Transposes per-lane patterns into per-signal packed words.
fn transpose(patterns: &[Vec<Logic>], width: usize) -> Vec<PackedLogic> {
    (0..width)
        .map(|i| {
            let lane_vals: Vec<Logic> = patterns.iter().map(|p| p[i]).collect();
            PackedLogic::from_lanes(&lane_vals)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// scalar-vs-packed
// ---------------------------------------------------------------------------

fn scalar_vs_packed(ctx: &RefereeCtx<'_>) -> Verdict {
    let mut rng = StdRng::seed_from_u64(ctx.case.recipe.seed ^ 0x5ca1a);
    for (view, nl) in case_views(ctx.case) {
        let program = match EvalProgram::compile(nl) {
            Ok(p) => p,
            Err(e) => return Verdict::Fail(format!("{view}: packed compile failed: {e}")),
        };
        let machine = RefMachine::new(nl, ctx.inject);
        let n_in = nl.input_nets().len();
        let n_ff = nl.dff_cells().len();
        let mut buf = program.scratch();

        // Combinational: 2 × 64 lanes of three-valued patterns over PIs and
        // free flip-flop Q values, compared on EVERY net.
        for word in 0..2 {
            let pats: Vec<Vec<Logic>> = (0..LANES)
                .map(|_| (0..n_in + n_ff).map(|_| random_logic(&mut rng)).collect())
                .collect();
            let in_words = transpose(&pats, n_in);
            let q_lanes: Vec<Vec<Logic>> = pats.iter().map(|p| p[n_in..].to_vec()).collect();
            let q_words = transpose(&q_lanes, n_ff);
            program.eval(&in_words, Some(&q_words), &mut buf);
            for (lane, pat) in pats.iter().enumerate() {
                let nets = machine.eval_nets(nl, &pat[..n_in], &pat[n_in..]);
                for (idx, &reference) in nets.iter().enumerate() {
                    let id = NetId::from_index(idx);
                    let packed = buf.net(id).get(lane);
                    if reference != packed {
                        return Verdict::Fail(format!(
                            "{view}: net {:?} disagrees on combinational word {word} \
                             lane {lane}: reference {reference} vs packed {packed}",
                            nl.net(id).name()
                        ));
                    }
                }
            }
        }

        // Sequential: 8 cycles × 64 lanes from reset, comparing outputs and
        // the latched next state each cycle.
        let mut packed_q = vec![PackedLogic::splat(Logic::Zero); n_ff];
        let mut ref_q: Vec<Vec<Logic>> = vec![vec![Logic::Zero; n_ff]; LANES];
        for cycle in 0..8 {
            let pats: Vec<Vec<Logic>> = (0..LANES)
                .map(|_| (0..n_in).map(|_| random_logic(&mut rng)).collect())
                .collect();
            let in_words = transpose(&pats, n_in);
            program.eval(&in_words, Some(&packed_q), &mut buf);
            let po_words = program.outputs(&buf);
            let next_q = program.dff_d(&buf);
            for (lane, pat) in pats.iter().enumerate() {
                let nets = machine.eval_nets(nl, pat, &ref_q[lane]);
                let po_ref = machine.outputs_of(nl, &nets);
                for (o, (r, w)) in po_ref.iter().zip(&po_words).enumerate() {
                    if *r != w.get(lane) {
                        return Verdict::Fail(format!(
                            "{view}: output {o} disagrees at cycle {cycle} lane {lane}: \
                             reference {r} vs packed {}",
                            w.get(lane)
                        ));
                    }
                }
                let d_ref = machine.dff_d_of(nl, &nets);
                for (i, (r, w)) in d_ref.iter().zip(&next_q).enumerate() {
                    if *r != w.get(lane) {
                        return Verdict::Fail(format!(
                            "{view}: flip-flop {i} next state disagrees at cycle {cycle} \
                             lane {lane}: reference {r} vs packed {}",
                            w.get(lane)
                        ));
                    }
                }
                ref_q[lane] = d_ref;
            }
            packed_q = next_q;
        }
    }
    Verdict::Pass
}

// ---------------------------------------------------------------------------
// sim-vs-packed
// ---------------------------------------------------------------------------

fn sim_vs_packed(ctx: &RefereeCtx<'_>) -> Verdict {
    let nl = &ctx.case.netlist;
    let period = ctx.case.period;
    let cycles = 6usize;
    let mut rng = StdRng::seed_from_u64(ctx.case.recipe.seed ^ 0x51b);
    let n_in = nl.input_nets().len();
    let inputs: Vec<Vec<Logic>> = (0..cycles)
        .map(|_| (0..n_in).map(|_| Logic::from_bool(rng.gen())).collect())
        .collect();

    // Drive the event-driven simulator exactly like `timed_trace`: FFs
    // reset to 0, inputs launched shortly after each opening edge, outputs
    // sampled just before the closing edge — but with idealized gates, so
    // the timing domain must agree with zero-delay semantics bit-for-bit.
    let mut stim = Stimulus::new();
    for &ff in nl.dff_cells() {
        stim.set_ff(ff, Logic::Zero);
    }
    for (c, pat) in inputs.iter().enumerate() {
        let t = period * (c as u64 + 1) + Ps(200);
        for (i, &net) in nl.input_nets().iter().enumerate() {
            if c == 0 {
                stim.set(net, pat[i]);
            }
            stim.at(t, net, pat[i]);
        }
    }
    let cfg = SimConfig::ideal().with_clock(ClockSpec::new(period));
    let res = Simulator::new(nl, ctx.library, cfg).run(&stim, period * (cycles as u64 + 2));
    let pos = nl.output_nets();
    let states: Vec<Vec<Logic>> = (0..=cycles)
        .map(|c| {
            nl.dff_cells()
                .iter()
                .map(|&ff| {
                    res.samples_of(ff)
                        .get(c)
                        .map(|&(_, v)| v)
                        .unwrap_or(Logic::X)
                })
                .collect()
        })
        .collect();

    let program = match EvalProgram::compile(nl) {
        Ok(p) => p,
        Err(e) => return Verdict::Fail(format!("packed compile failed: {e}")),
    };
    let mut buf = program.scratch();
    for c in 0..cycles {
        let sample_at = period * (c as u64 + 2) - Ps(1);
        let po_sim: Vec<Logic> = pos
            .iter()
            .map(|&n| res.waveform(n).value_at(sample_at))
            .collect();
        let q_words: Vec<PackedLogic> = states[c].iter().map(|&v| PackedLogic::splat(v)).collect();
        let in_words: Vec<PackedLogic> = inputs[c].iter().map(|&v| PackedLogic::splat(v)).collect();
        program.eval(&in_words, Some(&q_words), &mut buf);
        let po_packed: Vec<Logic> = program.outputs(&buf).iter().map(|w| w.get(0)).collect();
        if po_sim != po_packed {
            return Verdict::Fail(format!(
                "cycle {c}: simulated outputs {po_sim:?} vs packed {po_packed:?}"
            ));
        }
        let next_packed: Vec<Logic> = program.dff_d(&buf).iter().map(|w| w.get(0)).collect();
        if states[c + 1] != next_packed {
            return Verdict::Fail(format!(
                "cycle {c}: simulated next state {:?} vs packed {next_packed:?}",
                states[c + 1]
            ));
        }
    }
    Verdict::Pass
}

// ---------------------------------------------------------------------------
// sat-equiv
// ---------------------------------------------------------------------------

/// Rewires every reader of each key input to a constant, leaving the key
/// PIs dangling (interface preserved for the BMC).
fn tie_keys(locked: &Netlist, keys: &[NetId], values: &[bool]) -> Netlist {
    let mut tied = locked.clone();
    for (&k, &v) in keys.iter().zip(values) {
        let c = tied.add_const(v);
        let readers: Vec<_> = tied.net(k).fanout().to_vec();
        for (cell, pin) in readers {
            tied.rewire_input(cell, pin, c).expect("reader exists");
        }
    }
    tied
}

/// Pads the oracle with dummy primary inputs matching the locked design's
/// dangling key PIs, so the BMC sees aligned interfaces.
fn pad_oracle(original: &Netlist, tied: &Netlist) -> Option<Netlist> {
    let mut oracle = original.clone();
    for &pi in tied.input_nets() {
        let name = tied.net(pi).name().to_string();
        if oracle.net_by_name(&name).is_none() {
            oracle.add_input(name);
        }
    }
    (oracle.input_nets().len() == tied.input_nets().len()).then_some(oracle)
}

fn sat_equiv(ctx: &RefereeCtx<'_>) -> Verdict {
    let original = &ctx.case.netlist;
    match &ctx.case.lock {
        LockOutcome::Unlocked | LockOutcome::Skipped { .. } => {
            // Still differential: the BMC referees the bench printer/parser.
            let reparsed = match bench_format::parse(&bench_format::emit(original)) {
                Ok(n) => n,
                Err(e) => return Verdict::Fail(format!("bench round trip failed: {e}")),
            };
            match bounded_equiv(original, &reparsed, 3) {
                EquivResult::Equivalent => Verdict::Pass,
                EquivResult::Counterexample { inputs } => Verdict::Fail(format!(
                    "reparsed netlist differs from original on input sequence {inputs:?}"
                )),
            }
        }
        LockOutcome::Static(locked) => {
            let tied = tie_keys(&locked.netlist, &locked.key_inputs, &locked.correct_key);
            let tied = match glitchlock_synth::sweep_sequential(&tied) {
                Ok(n) => n,
                Err(e) => return Verdict::Fail(format!("sweep after tying keys failed: {e}")),
            };
            let Some(oracle) = pad_oracle(original, &tied) else {
                return Verdict::Skip("key input name collides with an oracle net".into());
            };
            match bounded_equiv(&oracle, &tied, 3) {
                EquivResult::Equivalent => Verdict::Pass,
                EquivResult::Counterexample { inputs } => Verdict::Fail(format!(
                    "correct key is not equivalent to the oracle; distinguishing \
                     sequence {inputs:?}"
                )),
            }
        }
        LockOutcome::Gk(_) => Verdict::Skip(
            "GK correct key lives in the timing domain; zero-delay BMC does not apply".into(),
        ),
    }
}

// ---------------------------------------------------------------------------
// sat-backend-equiv
// ---------------------------------------------------------------------------

/// Classifies one backend's attack result the way `glk campaign` does.
/// `None` means the run hit its iteration budget — budget-dependent, so
/// not comparable across backends (they spend conflicts differently).
fn classify_attack(
    view: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    result: &glitchlock_attacks::SatAttackResult,
    sample_seed: u64,
) -> Option<String> {
    const PERFECT: f64 = 0.999_999;
    let mut rng = StdRng::seed_from_u64(sample_seed);
    let rate_of =
        |key: &[bool], rng: &mut StdRng| key_match_rate(view, key_inputs, key, oracle, 256, rng);
    Some(match &result.outcome {
        SatOutcome::KeyRecovered { key } => {
            if rate_of(key, &mut rng) >= PERFECT {
                "key-recovered".to_string()
            } else {
                "key-recovered-wrong".to_string()
            }
        }
        SatOutcome::NoDipAtFirstIteration { arbitrary_key } => {
            if rate_of(arbitrary_key, &mut rng) >= PERFECT {
                "statically-transparent".to_string()
            } else {
                "wrong-key-under-static-abstraction".to_string()
            }
        }
        SatOutcome::IterationLimit => return None,
        SatOutcome::Cancelled => return None,
    })
}

/// Runs the full SAT attack once per CDCL backend and demands the same
/// outcome class from both. Recovered keys may legitimately differ when
/// the locker admits several correct keys, so the comparison is on the
/// classified verdict (which folds in a sampled functional check with a
/// shared RNG seed), not the key bits.
fn sat_backend_equiv(ctx: &RefereeCtx<'_>) -> Verdict {
    use glitchlock_sat::SolverBackend;
    let (view, key_inputs): (&Netlist, &[NetId]) = match &ctx.case.lock {
        LockOutcome::Static(l) => (&l.netlist, &l.key_inputs),
        LockOutcome::Gk(g) => (&g.attack_view, &g.attack_key_inputs),
        LockOutcome::Unlocked | LockOutcome::Skipped { .. } => {
            return Verdict::Skip("no locked view to attack".into())
        }
    };
    let oracle = &ctx.case.netlist;
    let sample_seed = ctx.case.recipe.seed ^ 0xbacbac;
    let mut verdicts = Vec::new();
    for backend in [SolverBackend::Legacy, SolverBackend::Modern] {
        let mut attack = SatAttack::new(view, key_inputs.to_vec(), oracle);
        attack.max_iterations = 64;
        attack.backend = backend;
        let result = attack.run();
        match classify_attack(view, key_inputs, oracle, &result, sample_seed) {
            Some(v) => verdicts.push((backend, v, result.iterations)),
            None => {
                return Verdict::Skip(format!(
                    "{backend} backend hit the iteration budget; outcome is \
                     budget-dependent"
                ))
            }
        }
    }
    let (_, ref legacy, legacy_iters) = verdicts[0];
    let (_, ref modern, modern_iters) = verdicts[1];
    if legacy == modern {
        Verdict::Pass
    } else {
        Verdict::Fail(format!(
            "backend verdicts diverge: legacy={legacy} ({legacy_iters} DIPs) \
             modern={modern} ({modern_iters} DIPs)"
        ))
    }
}

// ---------------------------------------------------------------------------
// wrong-key
// ---------------------------------------------------------------------------

/// Assembles per-PI packed words for the locked netlist: key inputs are
/// splatted constants, data inputs come from `data` in order.
fn locked_input_words(locked: &Locked, data: &[PackedLogic], key: &[bool]) -> Vec<PackedLogic> {
    let mut out = Vec::with_capacity(locked.netlist.input_nets().len());
    let mut di = 0;
    for &net in locked.netlist.input_nets() {
        if let Some(ki) = locked.key_inputs.iter().position(|&k| k == net) {
            out.push(PackedLogic::splat(Logic::from_bool(key[ki])));
        } else {
            out.push(data[di]);
            di += 1;
        }
    }
    out
}

/// Outputs + next-state words for one 64-lane chunk of bool patterns.
fn eval_chunk(
    program: &EvalProgram,
    inputs: &[PackedLogic],
    q: &[PackedLogic],
) -> (Vec<PackedLogic>, Vec<PackedLogic>) {
    let mut buf = program.scratch();
    program.eval(inputs, Some(q), &mut buf);
    (program.outputs(&buf), program.dff_d(&buf))
}

/// The combinational sweep space for the wrong-key referee: bool patterns
/// over data inputs and (free) flip-flop state.
struct Sweep {
    /// Patterns, each `n_data + n_ff` bools.
    patterns: Vec<Vec<bool>>,
    /// True when `patterns` covers the whole space.
    exhaustive: bool,
}

fn build_sweep(n_data: usize, n_ff: usize, locked: &Locked, rng: &mut StdRng) -> Sweep {
    let width = n_data + n_ff;
    if width <= 11 {
        let patterns = (0..1usize << width)
            .map(|p| (0..width).map(|b| p >> b & 1 == 1).collect())
            .collect();
        return Sweep {
            patterns,
            exhaustive: true,
        };
    }
    let mut patterns: Vec<Vec<bool>> = (0..512)
        .map(|_| (0..width).map(|_| rng.gen()).collect())
        .collect();
    patterns.push(vec![false; width]);
    patterns.push(vec![true; width]);
    // Point-function lockers (SARLock, Anti-SAT) only corrupt on patterns
    // tied to key values; seed those deliberately, for the correct key and
    // every single-bit flip of it.
    let mut keyed = vec![locked.correct_key.clone()];
    for i in 0..locked.correct_key.len() {
        let mut k = locked.correct_key.clone();
        k[i] = !k[i];
        keyed.push(k);
    }
    for k in keyed {
        for fill in [false, true] {
            let mut p = vec![fill; width];
            for (b, &v) in k.iter().enumerate().take(n_data) {
                p[b] = v;
            }
            patterns.push(p);
        }
    }
    Sweep {
        patterns,
        exhaustive: false,
    }
}

/// Evaluates the original or locked design over the sweep, returning
/// per-pattern (outputs, next state).
#[allow(clippy::type_complexity)]
fn sweep_design(
    program: &EvalProgram,
    sweep: &Sweep,
    n_data: usize,
    key: Option<(&Locked, &[bool])>,
) -> Vec<(Vec<Logic>, Vec<Logic>)> {
    let mut results = Vec::with_capacity(sweep.patterns.len());
    for chunk in sweep.patterns.chunks(LANES) {
        let data_words: Vec<PackedLogic> = (0..n_data)
            .map(|i| {
                let lane_vals: Vec<Logic> = chunk.iter().map(|p| Logic::from_bool(p[i])).collect();
                PackedLogic::from_lanes(&lane_vals)
            })
            .collect();
        let n_ff = chunk[0].len() - n_data;
        let q_words: Vec<PackedLogic> = (0..n_ff)
            .map(|i| {
                let lane_vals: Vec<Logic> = chunk
                    .iter()
                    .map(|p| Logic::from_bool(p[n_data + i]))
                    .collect();
                PackedLogic::from_lanes(&lane_vals)
            })
            .collect();
        let inputs = match key {
            Some((locked, bits)) => locked_input_words(locked, &data_words, bits),
            None => data_words,
        };
        let (po, dd) = eval_chunk(program, &inputs, &q_words);
        for lane in 0..chunk.len() {
            results.push((
                po.iter().map(|w| w.get(lane)).collect(),
                dd.iter().map(|w| w.get(lane)).collect(),
            ));
        }
    }
    results
}

fn wrong_key(ctx: &RefereeCtx<'_>) -> Verdict {
    match &ctx.case.lock {
        LockOutcome::Unlocked | LockOutcome::Skipped { .. } => {
            Verdict::Skip("no lock to judge".into())
        }
        LockOutcome::Static(locked) => wrong_key_static(ctx, locked),
        LockOutcome::Gk(gk) => wrong_key_gk(ctx, gk),
    }
}

fn wrong_key_static(ctx: &RefereeCtx<'_>, locked: &Locked) -> Verdict {
    let original = &ctx.case.netlist;
    let n_data = original.input_nets().len();
    let n_ff = original.dff_cells().len();
    if locked.netlist.dff_cells().len() != n_ff {
        return Verdict::Skip("locker changed the flip-flop count".into());
    }
    let mut rng = StdRng::seed_from_u64(ctx.case.recipe.seed ^ 0xbadc0de);
    let sweep = build_sweep(n_data, n_ff, locked, &mut rng);
    let orig_program = match EvalProgram::compile(original) {
        Ok(p) => p,
        Err(e) => return Verdict::Fail(format!("original compile failed: {e}")),
    };
    let lock_program = match EvalProgram::compile(&locked.netlist) {
        Ok(p) => p,
        Err(e) => return Verdict::Fail(format!("locked compile failed: {e}")),
    };
    let baseline = sweep_design(&orig_program, &sweep, n_data, None);

    // (a) The correct key must reproduce the oracle on every pattern —
    // outputs AND next-state, with flip-flop state left free.
    let with_correct = sweep_design(
        &lock_program,
        &sweep,
        n_data,
        Some((locked, &locked.correct_key)),
    );
    if let Some(i) = (0..baseline.len()).find(|&i| baseline[i] != with_correct[i]) {
        return Verdict::Fail(format!(
            "correct key diverges from the oracle on pattern {:?}: oracle {:?} vs locked {:?}",
            sweep.patterns[i], baseline[i], with_correct[i]
        ));
    }

    // (b) Every single-bit flip must corrupt somewhere. A flip the sweep
    // cannot distinguish is cross-examined by the BMC: `Equivalent` means a
    // genuinely vacuous bit (legal on random netlists — e.g. a MUX decoy
    // that equals the target function); a counterexample against an
    // exhaustive sweep means the two engines disagree.
    for bit in 0..locked.correct_key.len() {
        let mut flipped = locked.correct_key.clone();
        flipped[bit] = !flipped[bit];
        let with_flip = sweep_design(&lock_program, &sweep, n_data, Some((locked, &flipped)));
        if with_flip != with_correct {
            continue; // corrupts: the flip is observable
        }
        let tied_ok = tie_keys(&locked.netlist, &locked.key_inputs, &locked.correct_key);
        let tied_bad = tie_keys(&locked.netlist, &locked.key_inputs, &flipped);
        match bounded_equiv(&tied_ok, &tied_bad, 3) {
            EquivResult::Equivalent => {} // vacuous key bit
            EquivResult::Counterexample { inputs } => {
                if sweep.exhaustive {
                    return Verdict::Fail(format!(
                        "key bit {bit}: exhaustive packed sweep saw no corruption but the \
                         BMC found distinguishing sequence {inputs:?}"
                    ));
                }
                // Sampled sweep simply missed it; the bit does corrupt.
            }
        }
    }
    Verdict::Pass
}

fn wrong_key_gk(ctx: &RefereeCtx<'_>, gk: &glitchlock_core::GkLocked) -> Verdict {
    let period = gk.clock_period;
    // Gate on the ORIGINAL design meeting timing: the locked netlist never
    // does by construction (the glitch paths intentionally toggle inside
    // the capture window, which STA reports as violations), but the timed
    // trace is only meaningful when the data paths themselves are clean.
    if !analyze(&gk.original, ctx.library, &ClockModel::new(period)).all_met() {
        return Verdict::Skip("base design misses timing; timed referee not applicable".into());
    }
    let Some(correct_bits) = gk.correct_key.as_bools() else {
        return Verdict::Skip("non-constant static key".into());
    };
    let locked = &gk.netlist;
    let oracle = &gk.original;
    let key_nets = &gk.key_inputs;
    let data_inputs: Vec<NetId> = locked
        .input_nets()
        .iter()
        .copied()
        .filter(|n| !key_nets.contains(n))
        .collect();
    let n_oracle_ffs = oracle.dff_cells().len();
    let tracked: Vec<_> = locked.dff_cells()[..n_oracle_ffs].to_vec();
    let mut rng = StdRng::seed_from_u64(ctx.case.recipe.seed ^ 0x6b6b);
    let cycles = 6usize;
    let inputs: Vec<Vec<Logic>> = (0..cycles)
        .map(|_| {
            (0..data_inputs.len())
                .map(|_| Logic::from_bool(rng.gen()))
                .collect()
        })
        .collect();

    let bad_cycles = |key: &KeyVector| -> usize {
        let keyed: Vec<_> = key_nets
            .iter()
            .copied()
            .zip(key.bits().iter().copied())
            .collect();
        let trace = timed_trace(
            locked,
            ctx.library,
            period,
            &keyed,
            &inputs,
            &data_inputs,
            &tracked,
        );
        (0..cycles)
            .filter(|&c| {
                let mut o = SeqState::from_values(oracle, trace.states[c].clone());
                let po = o.step(oracle, &inputs[c]);
                trace.po[c] != po || trace.states[c + 1] != o.values()
            })
            .count()
    };

    // Correct key: the chip must match the oracle cycle-for-cycle in the
    // timing domain (the paper's KEY ACCEPTED criterion).
    let bad = bad_cycles(&gk.correct_key);
    if bad != 0 {
        return Verdict::Fail(format!(
            "correct key corrupted {bad}/{cycles} cycles in the timing domain"
        ));
    }
    // Every single-bit flip of the static selection moves at least one GK
    // to a wrong KEYGEN output (constants and delays pair across the 2-bit
    // encoding), so each flip must corrupt at least one cycle.
    for bit in 0..correct_bits.len() {
        let mut k = gk.correct_key.clone();
        k.flip_const(bit);
        if bad_cycles(&k) == 0 {
            return Verdict::Fail(format!(
                "flipping key bit {bit} left all {cycles} cycles clean; wrong keys \
                 must corrupt"
            ));
        }
    }
    Verdict::Pass
}

// ---------------------------------------------------------------------------
// round-trip
// ---------------------------------------------------------------------------

/// Steps both netlists from reset over random definite inputs, comparing
/// primary outputs every cycle.
fn semantically_equal(a: &Netlist, b: &Netlist, seed: u64) -> Result<(), String> {
    if a.input_nets().len() != b.input_nets().len() {
        return Err(format!(
            "input count changed: {} vs {}",
            a.input_nets().len(),
            b.input_nets().len()
        ));
    }
    if a.output_ports().len() != b.output_ports().len() {
        return Err(format!(
            "output count changed: {} vs {}",
            a.output_ports().len(),
            b.output_ports().len()
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sa = SeqState::reset(a);
    let mut sb = SeqState::reset(b);
    for cycle in 0..16 {
        let pat: Vec<Logic> = (0..a.input_nets().len())
            .map(|_| Logic::from_bool(rng.gen()))
            .collect();
        let pa = sa.step(a, &pat);
        let pb = sb.step(b, &pat);
        if pa != pb {
            return Err(format!(
                "outputs diverge at cycle {cycle}: {pa:?} vs {pb:?}"
            ));
        }
    }
    Ok(())
}

/// Lowers every case view to an AIG, re-emits it as a netlist, and demands
/// that the original (via the packed engine), the AIG evaluator, and the
/// re-emitted netlist agree on every combinational output — exhaustively
/// when the view has at most 8 inputs, on `2 * LANES` random boolean
/// patterns otherwise.
fn aig_equiv(ctx: &RefereeCtx<'_>) -> Verdict {
    let mut rng = StdRng::seed_from_u64(ctx.case.recipe.seed ^ 0x000a_16e9);
    for (view_name, nl) in case_views(ctx.case) {
        if nl.topo_order().is_err() {
            return Verdict::Skip(format!("{view_name}: cyclic netlist"));
        }
        let view = CombView::new(nl);
        let aig = Aig::from_comb(nl, &view);
        let back = aig.to_netlist("aig_round_trip");
        let back_view = CombView::new(&back);
        if back_view.num_inputs() != view.num_inputs()
            || back_view.num_outputs() != view.num_outputs()
        {
            return Verdict::Fail(format!(
                "{view_name}: round trip changed the interface: {}x{} vs {}x{}",
                view.num_inputs(),
                view.num_outputs(),
                back_view.num_inputs(),
                back_view.num_outputs()
            ));
        }
        let n_in = view.num_inputs();
        let patterns: Vec<Vec<Logic>> = if n_in <= 8 {
            (0u32..1 << n_in)
                .map(|bits| {
                    (0..n_in)
                        .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                        .collect()
                })
                .collect()
        } else {
            (0..2 * LANES)
                .map(|_| (0..n_in).map(|_| Logic::from_bool(rng.gen())).collect())
                .collect()
        };
        let program = match EvalProgram::compile(nl) {
            Ok(p) => p,
            Err(e) => return Verdict::Fail(format!("{view_name}: packed compile failed: {e}")),
        };
        let back_program = match EvalProgram::compile(&back) {
            Ok(p) => p,
            Err(e) => return Verdict::Fail(format!("{view_name}: round-trip compile failed: {e}")),
        };
        let want = view.eval_packed(&program, &patterns);
        let got = back_view.eval_packed(&back_program, &patterns);
        for (pat, (w, g)) in patterns.iter().zip(want.iter().zip(&got)) {
            let bools: Vec<bool> = pat.iter().map(|l| *l == Logic::One).collect();
            let direct: Vec<Logic> = aig.eval(&bools).into_iter().map(Logic::from_bool).collect();
            if w != g || *w != direct {
                return Verdict::Fail(format!(
                    "{view_name}: outputs disagree under inputs {pat:?}: \
                     packed {w:?} vs AIG {direct:?} vs round trip {g:?}"
                ));
            }
        }
    }
    Verdict::Pass
}

fn round_trip(ctx: &RefereeCtx<'_>) -> Verdict {
    for (view, nl) in case_views(ctx.case) {
        // .bench: one emit→parse may canonicalize (PO aliases become BUFF
        // gates); the second iteration must be a textual fixpoint, and the
        // parsed design must behave identically.
        let t1 = bench_format::emit(nl);
        let p1 = match bench_format::parse(&t1) {
            Ok(n) => n,
            Err(e) => return Verdict::Fail(format!("{view}: bench parse failed: {e}")),
        };
        let t2 = bench_format::emit(&p1);
        let p2 = match bench_format::parse(&t2) {
            Ok(n) => n,
            Err(e) => return Verdict::Fail(format!("{view}: bench re-parse failed: {e}")),
        };
        if t2 != bench_format::emit(&p2) {
            return Verdict::Fail(format!(
                "{view}: bench emit/parse is not a fixpoint after one round trip"
            ));
        }
        if let Err(e) = semantically_equal(nl, &p1, ctx.case.recipe.seed ^ 0xb3) {
            return Verdict::Fail(format!("{view}: bench round trip changed behaviour: {e}"));
        }

        // Verilog: same contract (bindings are dropped, semantics are not).
        let v1 = verilog::emit(nl);
        let q1 = match verilog::parse(&v1) {
            Ok(n) => n,
            Err(e) => return Verdict::Fail(format!("{view}: verilog parse failed: {e}")),
        };
        let v2 = verilog::emit(&q1);
        let q2 = match verilog::parse(&v2) {
            Ok(n) => n,
            Err(e) => return Verdict::Fail(format!("{view}: verilog re-parse failed: {e}")),
        };
        if v2 != verilog::emit(&q2) {
            return Verdict::Fail(format!(
                "{view}: verilog emit/parse is not a fixpoint after one round trip"
            ));
        }
        if let Err(e) = semantically_equal(nl, &q1, ctx.case.recipe.seed ^ 0x7e) {
            return Verdict::Fail(format!("{view}: verilog round trip changed behaviour: {e}"));
        }
    }
    Verdict::Pass
}

// ---------------------------------------------------------------------------
// count-vs-exhaustive
// ---------------------------------------------------------------------------

/// The hash-count estimator against the exhaustive packed sweep on small
/// locked cases. Zero counts and counts that fit under the pivot must
/// match *exactly* (UNSAT detection and base enumeration are
/// deterministic); hashed counts get a doubled (1+ε) envelope so the
/// referee only fires on genuine divergence, not the δ-probability tail
/// the estimator is allowed to hit.
fn count_vs_exhaustive(ctx: &RefereeCtx<'_>) -> Verdict {
    use glitchlock_count::{corruption_scores, ScoreConfig, ScoreMethod};

    let (view, keys): (&Netlist, &[NetId]) = match &ctx.case.lock {
        LockOutcome::Static(l) => (&l.netlist, &l.key_inputs),
        LockOutcome::Gk(g) => (&g.attack_view, &g.attack_key_inputs),
        LockOutcome::Unlocked | LockOutcome::Skipped { .. } => {
            return Verdict::Skip("no locked view to count".into())
        }
    };
    let oracle = &ctx.case.netlist;
    let data_bits = oracle.input_nets().len() + oracle.dff_cells().len();
    if data_bits > 8 {
        return Verdict::Skip(format!("{data_bits} data bits exceed the referee cap of 8"));
    }
    let cfg = ScoreConfig {
        exact_bits: 16,
        max_bits: 16,
        seed: ctx.case.recipe.seed,
        ..ScoreConfig::default()
    };
    let scores = match corruption_scores(view, keys, oracle, &cfg) {
        Ok(s) => s,
        Err(e) => return Verdict::Skip(format!("counting not applicable: {e}")),
    };
    if scores.method != ScoreMethod::Both {
        return Verdict::Skip(format!(
            "{} total bits exceed the exhaustive cutoff",
            scores.data_bits + scores.key_bits
        ));
    }
    let pivot = 26u64;
    for (label, score) in [
        ("err", &scores.err),
        ("dip", &scores.dip),
        ("wrong-keys", &scores.wrong_keys),
    ] {
        let (Some(exact), Some(estimate)) = (score.exact, score.estimate) else {
            return Verdict::Fail(format!("{label}: both engines ran but a value is missing"));
        };
        if exact <= pivot {
            if estimate != exact as f64 {
                return Verdict::Fail(format!(
                    "{label}: exhaustive {exact} but estimator {estimate} (under the pivot both are exact)"
                ));
            }
        } else {
            let slack = 2.0 * (1.0 + cfg.epsilon);
            let exact = exact as f64;
            if estimate < exact / slack || estimate > exact * slack {
                return Verdict::Fail(format!(
                    "{label}: exhaustive {exact} vs estimate {estimate} outside the {slack}x envelope"
                ));
            }
        }
    }
    Verdict::Pass
}

// ---------------------------------------------------------------------------
// lint-clean
// ---------------------------------------------------------------------------

const STRUCTURAL_DENY: [&str; 4] = [
    "undriven-net",
    "multiple-drivers",
    "dangling-output",
    "combinational-loop",
];

const GK_TIMING_DENY: [&str; 5] = [
    "setup-violated",
    "hold-violated",
    "gk-window-violated",
    "gk-glitch-too-short",
    "keygen-trigger-floor",
];

fn denied_codes(runner: &LintRunner, ctx: &LintContext<'_>) -> Vec<&'static str> {
    let report = runner.run(ctx);
    let mut codes: Vec<&'static str> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == glitchlock_lint::Severity::Error)
        .map(|d| d.code)
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

// ---------------------------------------------------------------------------
// const-prop-vs-packed
// ---------------------------------------------------------------------------

/// Checks the dataflow constant/X lattice against the packed engine: with
/// every primary input pinned, the fixpoint must land on exactly the value
/// the bit-parallel evaluator computes, on every net, with flip-flop Q
/// values free (`X`) in both engines. Views with at most 8 inputs get the
/// full `2^n` boolean sweep; larger ones get two 64-lane words of random
/// three-valued patterns, which also exercises the X absorption rules.
fn const_prop_vs_packed(ctx: &RefereeCtx<'_>) -> Verdict {
    let mut rng = StdRng::seed_from_u64(ctx.case.recipe.seed ^ 0xc0457);
    for (view, nl) in case_views(ctx.case) {
        let program = match EvalProgram::compile(nl) {
            Ok(p) => p,
            Err(e) => return Verdict::Fail(format!("{view}: packed compile failed: {e}")),
        };
        let n_in = nl.input_nets().len();
        let mut buf = program.scratch();
        let patterns: Vec<Vec<Logic>> = if n_in <= 8 {
            (0u32..1 << n_in)
                .map(|bits| {
                    (0..n_in)
                        .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                        .collect()
                })
                .collect()
        } else {
            (0..2 * LANES)
                .map(|_| (0..n_in).map(|_| random_logic(&mut rng)).collect())
                .collect()
        };
        for pats in patterns.chunks(LANES) {
            let in_words = transpose(pats, n_in);
            program.eval(&in_words, None, &mut buf);
            for (lane, pat) in pats.iter().enumerate() {
                let facts = glitchlock_dataflow::const_facts_for_inputs(nl, pat);
                for idx in 0..nl.net_count() {
                    let id = NetId::from_index(idx);
                    let packed = buf.net(id).get(lane);
                    let lattice = facts.net(id).to_logic();
                    if lattice != packed {
                        return Verdict::Fail(format!(
                            "{view}: net {:?} disagrees under inputs {pat:?}: \
                             constant lattice {lattice} vs packed {packed}",
                            nl.net(id).name()
                        ));
                    }
                }
            }
        }
    }
    Verdict::Pass
}

fn lint_clean(ctx: &RefereeCtx<'_>) -> Verdict {
    let mut structural = LintRunner::new();
    structural.set_level("all", Level::Allow);
    for code in STRUCTURAL_DENY {
        structural.set_level(code, Level::Deny);
    }
    for (view, nl) in case_views(ctx.case) {
        let lctx = LintContext::new(nl, ctx.library);
        let codes = denied_codes(&structural, &lctx);
        if !codes.is_empty() {
            return Verdict::Fail(format!(
                "{view}: structural lint violations: {}",
                codes.join(", ")
            ));
        }
    }
    // GK designs additionally face the timing battery: if the base design
    // meets timing at the insertion period, the locked design must keep
    // every GK window and every setup/hold check clean.
    if let LockOutcome::Gk(gk) = &ctx.case.lock {
        let mut timing = LintRunner::new();
        timing.set_level("all", Level::Allow);
        for code in GK_TIMING_DENY {
            timing.set_level(code, Level::Deny);
        }
        let clock = ClockModel::new(gk.clock_period);
        let base_ctx = LintContext::new(&gk.original, ctx.library).with_clock(clock.clone());
        if !denied_codes(&timing, &base_ctx).is_empty() {
            return Verdict::Skip("base design misses timing at the insertion period".into());
        }
        let lock_ctx = LintContext::new(&gk.netlist, ctx.library)
            .with_clock(clock)
            .with_key_prefix("gk");
        let codes = denied_codes(&timing, &lock_ctx);
        if !codes.is_empty() {
            return Verdict::Fail(format!(
                "GK-locked design fails the timing battery: {}",
                codes.join(", ")
            ));
        }
    }
    Verdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use crate::recipe::random_recipe;

    fn lib() -> Library {
        Library::cl013g_like().with_gk_delay_macros()
    }

    fn judge_all(seed: u64, inject: Inject) -> Vec<(&'static str, Verdict)> {
        let library = lib();
        let case = materialize(&random_recipe(seed), &library);
        let ctx = RefereeCtx {
            case: &case,
            library: &library,
            inject,
        };
        registry().iter().map(|r| (r.name, r.run(&ctx))).collect()
    }

    #[test]
    fn clean_reference_passes_every_referee() {
        for seed in 0..25 {
            for (name, verdict) in judge_all(seed, Inject::None) {
                assert!(
                    !matches!(verdict, Verdict::Fail(_)),
                    "seed {seed}, referee {name}: {verdict:?}"
                );
            }
        }
    }

    #[test]
    fn injected_xnor_fault_is_caught() {
        let caught = (0..40).any(|seed| {
            judge_all(seed, Inject::XnorFlip)
                .iter()
                .any(|(name, v)| *name == "scalar-vs-packed" && matches!(v, Verdict::Fail(_)))
        });
        assert!(caught, "40 seeds never exercised an XNOR disagreement");
    }

    #[test]
    fn referee_names_are_unique() {
        let mut names: Vec<_> = registry().iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
