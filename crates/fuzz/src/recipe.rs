//! Compact, replayable case recipes.
//!
//! A [`Recipe`] is the *genotype* of a fuzz case: a seed plus a structured
//! description of the netlist to build and the lock to apply. Recipes have
//! a stable line-oriented text form so every failing case can be persisted
//! under `tests/corpus/`, replayed bit-for-bit, and hand-edited while
//! debugging. The interpretation of a recipe is *total*: any gate source
//! index is reduced modulo the nets available at that point, so the
//! shrinker may drop arbitrary genes without ever producing an invalid
//! case.

use glitchlock_netlist::GateKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// One combinational gate gene: a kind plus source indices into the net
/// pool (primary inputs, then flip-flop outputs, then earlier gates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateGene {
    /// Gate function.
    pub kind: GateKind,
    /// Raw source indices; reduced modulo the pool size at materialization.
    pub srcs: Vec<usize>,
}

/// How to build the netlist under test.
#[derive(Clone, Debug, PartialEq)]
pub enum NetlistGene {
    /// An explicit gate-level genome (the shrinkable form).
    Gates {
        /// Primary-input count (at least 1 after materialization).
        n_inputs: usize,
        /// Flip-flop count.
        n_ffs: usize,
        /// Combinational gates in creation order.
        gates: Vec<GateGene>,
        /// D-pin tap per flip-flop (pool index, reduced modulo pool size).
        ff_taps: Vec<usize>,
        /// Primary-output taps (pool indices).
        po_taps: Vec<usize>,
    },
    /// A `circuits::generate` profile (layered cloud, STA-calibrated taps):
    /// the realistic sequential shape GK insertion needs.
    Profile {
        /// Target cell count.
        cells: usize,
        /// Flip-flop count.
        ffs: usize,
        /// Primary inputs.
        inputs: usize,
        /// Primary outputs.
        outputs: usize,
        /// Sign-off clock period in nanoseconds.
        period_ns: u64,
        /// GK-feasible coverage calibration in `[0, 1]`.
        coverage: f64,
        /// Generation seed (independent of the case seed).
        seed: u64,
    },
}

/// Which locking scheme to apply to the materialized netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockGene {
    /// Leave the design unlocked.
    None,
    /// XOR/XNOR key-gates.
    Xor {
        /// Key width.
        bits: usize,
    },
    /// MUX key-gates with decoy inputs.
    Mux {
        /// Key width.
        bits: usize,
    },
    /// SARLock point-function block.
    SarLock {
        /// Key width (uses the first `bits` primary inputs).
        bits: usize,
    },
    /// Anti-SAT block (`2n` key bits).
    AntiSat {
        /// AND-tree width.
        n: usize,
    },
    /// Tunable-delay key-gates (functional + delay key bit per gate).
    Tdk {
        /// TDK gate count.
        n: usize,
    },
    /// Glitch key-gates with KEYGEN (the paper's scheme).
    Gk {
        /// GK count.
        n_gks: usize,
        /// Mix inverter-steady and buffer-steady schemes.
        mix: bool,
        /// Share KEYGENs between GKs with identical trigger plans.
        share: bool,
        /// Designed glitch length in picoseconds (delay profile knob).
        glitch_ps: u64,
    },
}

/// A fully replayable fuzz case.
#[derive(Clone, Debug, PartialEq)]
pub struct Recipe {
    /// Seed for everything derived at materialization time (lock placement,
    /// referee patterns). The netlist genome is explicit, not seeded.
    pub seed: u64,
    /// The netlist to build.
    pub netlist: NetlistGene,
    /// The lock to apply.
    pub lock: LockGene,
}

/// Gate kinds a [`GateGene`] may use, with their recipe-text spellings.
const GENE_KINDS: &[(GateKind, &str)] = &[
    (GateKind::Buf, "buf"),
    (GateKind::Inv, "inv"),
    (GateKind::And, "and"),
    (GateKind::Nand, "nand"),
    (GateKind::Or, "or"),
    (GateKind::Nor, "nor"),
    (GateKind::Xor, "xor"),
    (GateKind::Xnor, "xnor"),
    (GateKind::Mux2, "mux2"),
    (GateKind::Mux4, "mux4"),
    (GateKind::Const0, "const0"),
    (GateKind::Const1, "const1"),
];

/// Recipe-text name of a gene gate kind.
pub fn kind_name(kind: GateKind) -> Option<&'static str> {
    GENE_KINDS
        .iter()
        .find(|&&(k, _)| k == kind)
        .map(|&(_, n)| n)
}

/// Gene gate kind for a recipe-text name.
pub fn kind_from_name(name: &str) -> Option<GateKind> {
    GENE_KINDS
        .iter()
        .find(|&&(_, n)| n == name)
        .map(|&(k, _)| k)
}

/// Parses the next whitespace token of a recipe line, or fails with the
/// pre-rendered error message.
fn take<T: std::str::FromStr>(
    tok: &mut std::str::SplitWhitespace<'_>,
    msg: String,
) -> Result<T, String> {
    tok.next().and_then(|t| t.parse().ok()).ok_or(msg)
}

impl Recipe {
    /// Serializes to the stable corpus text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "seed {}", self.seed);
        match &self.netlist {
            NetlistGene::Gates {
                n_inputs,
                n_ffs,
                gates,
                ff_taps,
                po_taps,
            } => {
                let _ = writeln!(out, "netlist gates");
                let _ = writeln!(out, "inputs {n_inputs}");
                let _ = writeln!(out, "ffs {n_ffs}");
                for g in gates {
                    let _ = write!(out, "gate {}", kind_name(g.kind).expect("gene kind"));
                    for s in &g.srcs {
                        let _ = write!(out, " {s}");
                    }
                    out.push('\n');
                }
                for t in ff_taps {
                    let _ = writeln!(out, "fftap {t}");
                }
                for t in po_taps {
                    let _ = writeln!(out, "po {t}");
                }
            }
            NetlistGene::Profile {
                cells,
                ffs,
                inputs,
                outputs,
                period_ns,
                coverage,
                seed,
            } => {
                let _ = writeln!(
                    out,
                    "netlist profile {cells} {ffs} {inputs} {outputs} {period_ns} {coverage} {seed}"
                );
            }
        }
        match self.lock {
            LockGene::None => {
                let _ = writeln!(out, "lock none");
            }
            LockGene::Xor { bits } => {
                let _ = writeln!(out, "lock xor {bits}");
            }
            LockGene::Mux { bits } => {
                let _ = writeln!(out, "lock mux {bits}");
            }
            LockGene::SarLock { bits } => {
                let _ = writeln!(out, "lock sarlock {bits}");
            }
            LockGene::AntiSat { n } => {
                let _ = writeln!(out, "lock antisat {n}");
            }
            LockGene::Tdk { n } => {
                let _ = writeln!(out, "lock tdk {n}");
            }
            LockGene::Gk {
                n_gks,
                mix,
                share,
                glitch_ps,
            } => {
                let _ = writeln!(
                    out,
                    "lock gk {n_gks} mix={} share={} glitch={glitch_ps}",
                    mix as u8, share as u8
                );
            }
        }
        out
    }

    /// Parses the corpus text form. Lines starting with `#` are comments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Recipe, String> {
        let mut seed = None;
        let mut netlist = None;
        let mut lock = None;
        // Gates-gene accumulators, live once `netlist gates` is seen.
        let mut gates_mode = false;
        let mut n_inputs = 0usize;
        let mut n_ffs = 0usize;
        let mut gates = Vec::new();
        let mut ff_taps = Vec::new();
        let mut po_taps = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let head = tok.next().expect("non-empty line has a token");
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            match head {
                "seed" => seed = Some(take(&mut tok, err("seed expects an integer"))?),
                "netlist" => match tok.next() {
                    Some("gates") => gates_mode = true,
                    Some("profile") => {
                        let msg =
                            "profile expects: cells ffs inputs outputs period_ns coverage seed";
                        netlist = Some(NetlistGene::Profile {
                            cells: take(&mut tok, err(msg))?,
                            ffs: take(&mut tok, err(msg))?,
                            inputs: take(&mut tok, err(msg))?,
                            outputs: take(&mut tok, err(msg))?,
                            period_ns: take(&mut tok, err(msg))?,
                            coverage: take(&mut tok, err(msg))?,
                            seed: take(&mut tok, err(msg))?,
                        });
                    }
                    _ => return Err(err("netlist expects 'gates' or 'profile'")),
                },
                "inputs" if gates_mode => {
                    n_inputs = take(&mut tok, err("inputs expects a count"))?;
                }
                "ffs" if gates_mode => n_ffs = take(&mut tok, err("ffs expects a count"))?,
                "gate" if gates_mode => {
                    let kind = tok
                        .next()
                        .and_then(kind_from_name)
                        .ok_or_else(|| err("unknown gate kind"))?;
                    let srcs: Result<Vec<usize>, _> = tok.map(|t| t.parse()).collect();
                    gates.push(GateGene {
                        kind,
                        srcs: srcs.map_err(|_| err("gate sources must be integers"))?,
                    });
                }
                "fftap" if gates_mode => {
                    ff_taps.push(take(&mut tok, err("fftap expects an index"))?);
                }
                "po" if gates_mode => po_taps.push(take(&mut tok, err("po expects an index"))?),
                "lock" => {
                    let scheme = tok.next().ok_or_else(|| err("lock expects a scheme"))?;
                    lock = Some(match scheme {
                        "none" => LockGene::None,
                        "xor" => LockGene::Xor {
                            bits: take(&mut tok, err("xor expects a key width"))?,
                        },
                        "mux" => LockGene::Mux {
                            bits: take(&mut tok, err("mux expects a key width"))?,
                        },
                        "sarlock" => LockGene::SarLock {
                            bits: take(&mut tok, err("sarlock expects a key width"))?,
                        },
                        "antisat" => LockGene::AntiSat {
                            n: take(&mut tok, err("antisat expects a width"))?,
                        },
                        "tdk" => LockGene::Tdk {
                            n: take(&mut tok, err("tdk expects a gate count"))?,
                        },
                        "gk" => {
                            let n_gks = take(&mut tok, err("gk expects a GK count"))?;
                            let mut mix = false;
                            let mut share = false;
                            let mut glitch_ps = 1000;
                            for opt in tok.by_ref() {
                                match opt.split_once('=') {
                                    Some(("mix", v)) => mix = v != "0",
                                    Some(("share", v)) => share = v != "0",
                                    Some(("glitch", v)) => {
                                        glitch_ps = v
                                            .parse()
                                            .map_err(|_| err("glitch expects picoseconds"))?
                                    }
                                    _ => return Err(err("unknown gk option")),
                                }
                            }
                            LockGene::Gk {
                                n_gks,
                                mix,
                                share,
                                glitch_ps,
                            }
                        }
                        _ => return Err(err("unknown lock scheme")),
                    });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        if gates_mode {
            netlist = Some(NetlistGene::Gates {
                n_inputs,
                n_ffs,
                gates,
                ff_taps,
                po_taps,
            });
        }
        Ok(Recipe {
            seed: seed.ok_or("missing 'seed' line")?,
            netlist: netlist.ok_or("missing 'netlist' line")?,
            lock: lock.unwrap_or(LockGene::None),
        })
    }
}

/// Draws a structured random recipe. Deterministic in `seed`; the genome is
/// written out explicitly so shrinking never needs to re-derive it.
pub fn random_recipe(seed: u64) -> Recipe {
    let mut rng = StdRng::seed_from_u64(seed);
    let netlist = if rng.gen_bool(0.8) {
        random_gates_gene(&mut rng)
    } else {
        NetlistGene::Profile {
            cells: rng.gen_range(40..121),
            ffs: rng.gen_range(4..15),
            inputs: rng.gen_range(4..11),
            outputs: rng.gen_range(2..9),
            period_ns: rng.gen_range(3..5),
            coverage: rng.gen_range(0.3..0.9),
            seed: rng.gen(),
        }
    };
    let n_inputs = match &netlist {
        NetlistGene::Gates { n_inputs, .. } => *n_inputs,
        NetlistGene::Profile { inputs, .. } => *inputs,
    };
    let lock = match rng.gen_range(0u32..100) {
        0..=14 => LockGene::None,
        15..=34 => LockGene::Xor {
            bits: rng.gen_range(1..7),
        },
        35..=49 => LockGene::Mux {
            bits: rng.gen_range(1..5),
        },
        50..=59 => LockGene::SarLock {
            bits: rng.gen_range(2usize..5).min(n_inputs.max(1)),
        },
        60..=69 => LockGene::AntiSat {
            n: rng.gen_range(2usize..4).min(n_inputs.max(1)),
        },
        70..=79 => LockGene::Tdk {
            n: rng.gen_range(1..4),
        },
        _ => {
            let mix = rng.gen_bool(0.3);
            LockGene::Gk {
                n_gks: rng.gen_range(1..4),
                mix,
                share: !mix && rng.gen_bool(0.3),
                glitch_ps: *[800u64, 1000, 1200]
                    .get(rng.gen_range(0usize..3))
                    .expect("index in range"),
            }
        }
    };
    Recipe {
        seed,
        netlist,
        lock,
    }
}

fn random_gates_gene(rng: &mut StdRng) -> NetlistGene {
    let n_inputs = rng.gen_range(2..9);
    let n_ffs = rng.gen_range(0..6);
    let n_gates = rng.gen_range(5..41);
    let mut gates = Vec::with_capacity(n_gates);
    for g in 0..n_gates {
        let pool = n_inputs + n_ffs + g;
        let kind = match rng.gen_range(0u32..100) {
            0..=9 => GateKind::Inv,
            10..=14 => GateKind::Buf,
            15..=29 => GateKind::And,
            30..=44 => GateKind::Nand,
            45..=56 => GateKind::Or,
            57..=68 => GateKind::Nor,
            69..=81 => GateKind::Xor,
            82..=91 => GateKind::Xnor,
            92..=97 => GateKind::Mux2,
            _ => GateKind::Mux4,
        };
        let arity = kind
            .fixed_arity()
            .unwrap_or_else(|| if rng.gen_bool(0.25) { 3 } else { 2 });
        let srcs = (0..arity).map(|_| rng.gen_range(0..pool)).collect();
        gates.push(GateGene { kind, srcs });
    }
    let pool = n_inputs + n_ffs + n_gates;
    let ff_taps = (0..n_ffs).map(|_| rng.gen_range(0..pool)).collect();
    let po_taps = (0..rng.gen_range(1..5))
        .map(|_| rng.gen_range(0..pool))
        .collect();
    NetlistGene::Gates {
        n_inputs,
        n_ffs,
        gates,
        ff_taps,
        po_taps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip_is_identity() {
        for seed in 0..40 {
            let r = random_recipe(seed);
            let parsed = Recipe::from_text(&r.to_text()).expect("own output parses");
            assert_eq!(r, parsed, "seed {seed}");
        }
    }

    #[test]
    fn random_recipes_are_deterministic() {
        assert_eq!(random_recipe(7), random_recipe(7));
        assert_ne!(random_recipe(7), random_recipe(8));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a reproducer\nseed 3\n\nnetlist gates\ninputs 2\nffs 0\ngate xnor 0 1\npo 2\n# trailing note\nlock xor 1\n";
        let r = Recipe::from_text(text).unwrap();
        assert_eq!(r.seed, 3);
        assert_eq!(r.lock, LockGene::Xor { bits: 1 });
        match r.netlist {
            NetlistGene::Gates { ref gates, .. } => {
                assert_eq!(gates.len(), 1);
                assert_eq!(gates[0].kind, GateKind::Xnor);
            }
            _ => panic!("expected gates gene"),
        }
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let e = Recipe::from_text("seed 1\nnetlist gates\ngate frobnicate 0\n").unwrap_err();
        assert!(e.contains("line 3"), "{e}");
        assert!(
            Recipe::from_text("netlist gates\n").is_err(),
            "missing seed"
        );
    }
}
