//! glitchlock-fuzz: deterministic differential fuzzing for the glitchlock
//! workspace.
//!
//! The crate closes the loop the ad-hoc tests cannot: it *generates*
//! structured random sequential netlists plus lock configurations from a
//! compact, replayable [`recipe::Recipe`], judges every case with a
//! registry of differential [`referees`] (scalar vs packed evaluation,
//! event-driven simulation vs zero-delay stepping, SAT equivalence under
//! the correct key, wrong-key corruption, print→parse round-trips, lint
//! cleanliness), and on any disagreement [`shrink`]s the recipe by
//! delta-debugging into a minimal reproducer persisted in the regression
//! [`corpus`].
//!
//! Everything is seeded: `glk fuzz --seed S --cases N` is bit-for-bit
//! reproducible, and each case's seed is derivable from the master seed
//! via [`runner::case_seed`], so a single case replays in isolation.

#![deny(missing_docs)]

pub mod corpus;
pub mod materialize;
pub mod recipe;
pub mod referees;
pub mod reference;
pub mod runner;
pub mod shrink;

pub use corpus::{load_corpus, save_case, CorpusEntry};
pub use materialize::{genes_from_netlist, materialize, LockOutcome, TestCase};
pub use recipe::{random_recipe, GateGene, LockGene, NetlistGene, Recipe};
pub use referees::{registry, Referee, RefereeCtx, Verdict};
pub use reference::{Inject, RefMachine};
pub use runner::{case_seed, run_fuzz, select_referees, FailureRecord, FuzzConfig, FuzzReport};
pub use shrink::shrink;
