//! The fuzz loop: generate → judge → shrink → persist.
//!
//! Case seeds are derived from the master seed with a splitmix64 chain, so
//! `--seed S --cases N` is bit-for-bit reproducible and each case can be
//! replayed in isolation from its own seed. Wall-clock only ever affects
//! *how many* cases run (`--time-budget`); it never changes what any
//! individual case does.

use crate::corpus::save_case;
use crate::materialize::{materialize, TestCase};
use crate::recipe::{random_recipe, Recipe};
use crate::referees::{registry, Referee, RefereeCtx, Verdict};
use crate::reference::Inject;
use crate::shrink::shrink;
use glitchlock_netlist::bench_format;
use glitchlock_obs::{self as obs, names};
use glitchlock_stdcell::Library;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration of one fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; every case seed derives from it deterministically.
    pub seed: u64,
    /// Number of cases to attempt.
    pub cases: usize,
    /// Optional wall-clock cutoff (checked between cases).
    pub time_budget: Option<Duration>,
    /// Referee-name filter; empty means the full registry.
    pub referees: Vec<String>,
    /// Deliberate reference fault for negative testing.
    pub inject: Inject,
    /// Where to persist shrunk reproducers (`None`: report only).
    pub corpus_dir: Option<PathBuf>,
    /// Oracle-call budget per shrink.
    pub shrink_budget: usize,
    /// Stop after this many distinct failures.
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            cases: 100,
            time_budget: None,
            referees: Vec::new(),
            inject: Inject::None,
            corpus_dir: None,
            shrink_budget: 300,
            max_failures: 3,
        }
    }
}

/// One caught, shrunk divergence.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Case index within the run.
    pub index: usize,
    /// Seed the failing case was generated from.
    pub case_seed: u64,
    /// Referee that failed.
    pub referee: String,
    /// The referee's divergence message (from the original, unshrunk case).
    pub message: String,
    /// The recipe as generated.
    pub recipe: Recipe,
    /// The minimized recipe (still failing the same referee).
    pub shrunk: Recipe,
    /// Oracle calls the shrinker spent.
    pub shrink_spent: usize,
    /// Where the reproducer was persisted, when a corpus dir was given.
    pub corpus_path: Option<PathBuf>,
}

/// Aggregate result of a fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases actually executed (≤ `cases` under a time budget).
    pub cases_run: usize,
    /// Pass counts per referee name.
    pub passes: BTreeMap<String, usize>,
    /// Skip counts per referee name.
    pub skips: BTreeMap<String, usize>,
    /// All failures, in discovery order.
    pub failures: Vec<FailureRecord>,
    /// Wall-clock the run took (reporting only; never affects verdicts).
    pub elapsed: Duration,
}

impl FuzzReport {
    /// True when every executed case passed every selected referee.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// splitmix64: the per-case seed chain. Public so replay tooling and
/// tests can reconstruct any case from `master_seed` + index.
pub fn case_seed(master_seed: u64, index: usize) -> u64 {
    let mut z = master_seed.wrapping_add(
        (index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one referee, turning a panic in any engine into a [`Verdict::Fail`]
/// (a crash on a valid netlist is as much a bug as a disagreement).
fn judge(referee: &Referee, ctx: &RefereeCtx<'_>) -> Verdict {
    match catch_unwind(AssertUnwindSafe(|| referee.run(ctx))) {
        Ok(v) => v,
        Err(payload) => Verdict::Fail(format!("panicked: {}", panic_text(&payload))),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Materializes a recipe, absorbing panics (`None` = the builder itself
/// crashed, which the shrink oracle treats as "still failing").
fn try_materialize(recipe: &Recipe, library: &Library) -> Option<TestCase> {
    catch_unwind(AssertUnwindSafe(|| materialize(recipe, library))).ok()
}

/// Selects referees by name; an empty filter selects everything.
///
/// # Errors
///
/// Returns the offending name when the filter names an unknown referee.
pub fn select_referees(filter: &[String]) -> Result<Vec<Referee>, String> {
    let all = registry();
    if filter.is_empty() {
        return Ok(all);
    }
    for want in filter {
        if !all.iter().any(|r| r.name == want) {
            return Err(format!("unknown referee `{want}` (try --list-referees)"));
        }
    }
    Ok(all
        .into_iter()
        .filter(|r| filter.iter().any(|w| w == r.name))
        .collect())
}

/// Runs the fuzz loop.
///
/// # Errors
///
/// Returns an error string for configuration problems (unknown referee
/// names) or corpus I/O failures; referee disagreements are *not* errors —
/// they are reported in [`FuzzReport::failures`].
pub fn run_fuzz(config: &FuzzConfig, library: &Library) -> Result<FuzzReport, String> {
    let _span = obs::span("fuzz.run");
    let collector = obs::current();
    let case_counter = collector.counter(names::FUZZ_CASES);
    let verdict_counter = collector.counter(names::FUZZ_VERDICTS);
    let pass_counter = collector.counter(names::FUZZ_PASSES);
    let skip_counter = collector.counter(names::FUZZ_SKIPS);
    let referees = select_referees(&config.referees)?;
    let started = Instant::now();
    let mut report = FuzzReport::default();
    for r in &referees {
        report.passes.insert(r.name.to_string(), 0);
        report.skips.insert(r.name.to_string(), 0);
    }
    for index in 0..config.cases {
        if let Some(budget) = config.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        if report.failures.len() >= config.max_failures {
            break;
        }
        let seed = case_seed(config.seed, index);
        let recipe = random_recipe(seed);
        report.cases_run += 1;
        case_counter.incr();
        let Some(case) = try_materialize(&recipe, library) else {
            let record =
                shrink_and_record(config, library, index, seed, &recipe, None, "materialize")?;
            report.failures.push(record);
            continue;
        };
        let ctx = RefereeCtx {
            case: &case,
            library,
            inject: config.inject,
        };
        for referee in &referees {
            match judge(referee, &ctx) {
                Verdict::Pass => {
                    *report.passes.get_mut(referee.name).expect("seeded") += 1;
                    verdict_counter.incr();
                    pass_counter.incr();
                }
                Verdict::Skip(_) => {
                    *report.skips.get_mut(referee.name).expect("seeded") += 1;
                    verdict_counter.incr();
                    skip_counter.incr();
                }
                Verdict::Fail(message) => {
                    verdict_counter.incr();
                    let record = shrink_and_record(
                        config,
                        library,
                        index,
                        seed,
                        &recipe,
                        Some(message),
                        referee.name,
                    )?;
                    report.failures.push(record);
                    break;
                }
            }
        }
    }
    report.elapsed = started.elapsed();
    for failure in &report.failures {
        obs::incr(names::FUZZ_FAILURES);
        obs::add(names::FUZZ_SHRINK_STEPS, failure.shrink_spent as u64);
        obs::event("result", "fuzz_failure")
            .str("referee", failure.referee.clone())
            .str_with("case_seed", || format!("{:016x}", failure.case_seed))
            .str("message", failure.message.clone())
            .emit();
    }
    let secs = report.elapsed.as_secs_f64();
    if secs > 0.0 {
        obs::gauge_set(names::FUZZ_CASES_PER_SEC, report.cases_run as f64 / secs);
    }
    Ok(report)
}

/// Shrinks a failing recipe against the referee that flagged it and
/// persists the reproducer when a corpus directory is configured.
fn shrink_and_record(
    config: &FuzzConfig,
    library: &Library,
    index: usize,
    seed: u64,
    recipe: &Recipe,
    message: Option<String>,
    referee_name: &str,
) -> Result<FailureRecord, String> {
    let inject = config.inject;
    let mut still_fails = |candidate: &Recipe| -> bool {
        let Some(case) = try_materialize(candidate, library) else {
            // The builder crashed: for a materialize failure that IS the
            // bug; for a referee failure it is a different bug, so reject.
            return referee_name == "materialize";
        };
        if referee_name == "materialize" {
            return false;
        }
        let ctx = RefereeCtx {
            case: &case,
            library,
            inject,
        };
        registry()
            .iter()
            .find(|r| r.name == referee_name)
            .is_some_and(|r| matches!(judge(r, &ctx), Verdict::Fail(_)))
    };
    let (shrunk, shrink_spent) = shrink(recipe, library, &mut still_fails, config.shrink_budget);
    let corpus_path = match &config.corpus_dir {
        Some(dir) => {
            let stem = format!("fuzz-{referee_name}-{seed:016x}");
            let bench_text = try_materialize(&shrunk, library)
                .map(|c| bench_format::emit(&c.netlist))
                .unwrap_or_else(|| "# materialization panics on this recipe\n".to_string());
            let path = save_case(
                dir,
                &stem,
                &shrunk,
                referee_name,
                message.as_deref().unwrap_or("materialize panicked"),
                &bench_text,
            )
            .map_err(|e| format!("persisting reproducer: {e}"))?;
            Some(path)
        }
        None => None,
    };
    Ok(FailureRecord {
        index,
        case_seed: seed,
        referee: referee_name.to_string(),
        message: message.unwrap_or_else(|| "materialize panicked".to_string()),
        recipe: recipe.clone(),
        shrunk,
        shrink_spent,
        corpus_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::cl013g_like().with_gk_delay_macros()
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..50).map(|i| case_seed(7, i)).collect();
        let b: Vec<u64> = (0..50).map(|i| case_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len());
        assert_ne!(case_seed(7, 0), case_seed(8, 0));
    }

    #[test]
    fn clean_run_is_deterministic() {
        let library = lib();
        let cfg = FuzzConfig {
            seed: 7,
            cases: 12,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg, &library).expect("run");
        let b = run_fuzz(&cfg, &library).expect("run");
        assert!(a.clean(), "failures: {:?}", a.failures);
        assert_eq!(a.cases_run, 12);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.skips, b.skips);
    }

    #[test]
    fn injected_fault_is_caught_shrunk_and_persisted() {
        let library = lib();
        let dir = std::env::temp_dir().join("glitchlock-fuzz-runner-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FuzzConfig {
            seed: 7,
            cases: 80,
            referees: vec!["scalar-vs-packed".to_string()],
            inject: Inject::XnorFlip,
            corpus_dir: Some(dir.clone()),
            shrink_budget: 300,
            max_failures: 1,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg, &library).expect("run");
        assert!(!report.clean(), "xnor-flip must be caught");
        let failure = &report.failures[0];
        assert_eq!(failure.referee, "scalar-vs-packed");
        let path = failure.corpus_path.as_ref().expect("persisted");
        assert!(path.exists());
        // The shrunk reproducer must still fail and must be small.
        let case = materialize(&failure.shrunk, &library);
        assert!(
            case.netlist.stats().gates <= 10,
            "{:?}",
            case.netlist.stats()
        );
        let ctx = RefereeCtx {
            case: &case,
            library: &library,
            inject: Inject::XnorFlip,
        };
        let verdict = registry()
            .iter()
            .find(|r| r.name == "scalar-vs-packed")
            .map(|r| r.run(&ctx))
            .expect("referee exists");
        assert!(matches!(verdict, Verdict::Fail(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_referee_is_rejected() {
        assert!(select_referees(&["no-such".to_string()]).is_err());
    }
}
