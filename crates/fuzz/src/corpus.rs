//! The persistent regression corpus.
//!
//! Every shrunk failure is written as a pair of files under a corpus
//! directory (the repository keeps one at `tests/corpus/`):
//!
//! * `<stem>.case` — the recipe in its text form, prefixed with comment
//!   headers naming the referee and the failure message;
//! * `<stem>.bench` — the materialized original netlist, so a human can
//!   eyeball the reproducer without running the fuzzer.
//!
//! `tests/fuzz_regressions.rs` replays every `.case` file through the full
//! referee registry on each CI run, so once a divergence is caught it can
//! never silently return.

use crate::recipe::Recipe;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One loaded corpus case.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// File stem (sorted load order).
    pub name: String,
    /// Path of the `.case` file.
    pub path: PathBuf,
    /// Referee named in the header, when present.
    pub referee: Option<String>,
    /// The recipe itself.
    pub recipe: Recipe,
}

/// Writes `<stem>.case` (+ `<stem>.bench`) into `dir`, creating it if
/// needed. Returns the `.case` path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_case(
    dir: &Path,
    stem: &str,
    recipe: &Recipe,
    referee: &str,
    message: &str,
    bench_text: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let case_path = dir.join(format!("{stem}.case"));
    let mut text = String::new();
    text.push_str(&format!("# referee: {referee}\n"));
    for line in message.lines() {
        text.push_str(&format!("# message: {line}\n"));
    }
    text.push_str(&recipe.to_text());
    fs::write(&case_path, text)?;
    fs::write(dir.join(format!("{stem}.bench")), bench_text)?;
    Ok(case_path)
}

/// Loads every `.case` file in `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty corpus.
///
/// # Errors
///
/// Fails on unreadable files or unparsable recipes (naming the file).
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let recipe =
            Recipe::from_text(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let referee = text
            .lines()
            .find_map(|l| l.strip_prefix("# referee:").map(|r| r.trim().to_string()));
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push(CorpusEntry {
            name,
            path,
            referee,
            recipe,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::random_recipe;

    #[test]
    fn save_then_load_round_trips() {
        let dir = std::env::temp_dir().join("glitchlock-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let r = random_recipe(11);
        let path = save_case(
            &dir,
            "t-11",
            &r,
            "wrong-key",
            "line one\nline two",
            "# bench",
        )
        .expect("save");
        assert!(path.ends_with("t-11.case"));
        let loaded = load_corpus(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, "t-11");
        assert_eq!(loaded[0].referee.as_deref(), Some("wrong-key"));
        assert_eq!(loaded[0].recipe, r);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("glitchlock-fuzz-no-such-dir");
        let _ = fs::remove_dir_all(&dir);
        assert!(load_corpus(&dir).expect("empty").is_empty());
    }
}
