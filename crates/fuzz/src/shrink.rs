//! Delta-debugging shrinker.
//!
//! Given a failing recipe and an oracle ("does this recipe still fail the
//! same referee?"), the shrinker searches for a smaller recipe that keeps
//! failing: profile genes are first re-expressed as explicit gate genomes,
//! then gates are removed ddmin-style (each removed gate is *bypassed* to
//! its first source so downstream structure survives), then flip-flops,
//! inputs and outputs are dropped, and finally the lock is simplified.
//! Every candidate is judged by the oracle, so correctness never depends
//! on the rewrites preserving semantics — only the final recipe matters.

use crate::materialize::{genes_from_netlist, materialize};
use crate::recipe::{GateGene, LockGene, NetlistGene, Recipe};
use glitchlock_stdcell::Library;
use std::collections::HashSet;

/// Bounds and accounts for oracle calls during one shrink run.
struct Oracle<'a> {
    check: &'a mut dyn FnMut(&Recipe) -> bool,
    budget: usize,
    spent: usize,
}

impl Oracle<'_> {
    fn still_fails(&mut self, r: &Recipe) -> bool {
        if self.spent >= self.budget {
            return false;
        }
        self.spent += 1;
        (self.check)(r)
    }

    fn exhausted(&self) -> bool {
        self.spent >= self.budget
    }
}

/// Shrinks `recipe` while `still_fails` keeps returning `true`, spending at
/// most `budget` oracle calls. Returns the smallest failing recipe found
/// (at worst the input itself) and the number of oracle calls spent.
pub fn shrink(
    recipe: &Recipe,
    library: &Library,
    still_fails: &mut dyn FnMut(&Recipe) -> bool,
    budget: usize,
) -> (Recipe, usize) {
    let mut oracle = Oracle {
        check: still_fails,
        budget,
        spent: 0,
    };
    let mut best = recipe.clone();

    // Re-express the netlist as an explicit gate genome (mod-reduced
    // sources, repaired arities) so every later pass can edit it.
    if let Some(canon) = canonical(&best, library) {
        if canon != best && oracle.still_fails(&canon) {
            best = canon;
        }
    }
    if best.lock != LockGene::None {
        let cand = Recipe {
            lock: LockGene::None,
            ..best.clone()
        };
        if oracle.still_fails(&cand) {
            best = cand;
        }
    }
    loop {
        let before = best.clone();
        best = ddmin_gates(best, &mut oracle);
        best = drop_ffs(best, &mut oracle);
        best = drop_inputs(best, &mut oracle);
        best = drop_outputs(best, &mut oracle);
        best = reduce_lock(best, &mut oracle);
        if best == before || oracle.exhausted() {
            break;
        }
    }
    (best, oracle.spent)
}

/// The recipe with its netlist re-derived as an explicit gate genome.
fn canonical(recipe: &Recipe, library: &Library) -> Option<Recipe> {
    let case = materialize(recipe, library);
    genes_from_netlist(&case.netlist, recipe.lock, recipe.seed)
}

/// Destructures a gates gene, if that is what the recipe holds.
#[allow(clippy::type_complexity)]
fn gates_of(r: &Recipe) -> Option<(usize, usize, &[GateGene], &[usize], &[usize])> {
    match &r.netlist {
        NetlistGene::Gates {
            n_inputs,
            n_ffs,
            gates,
            ff_taps,
            po_taps,
        } => Some((*n_inputs, *n_ffs, gates, ff_taps, po_taps)),
        NetlistGene::Profile { .. } => None,
    }
}

/// Rebuilds the gene with the gates in `remove` bypassed: every reference
/// to a removed gate is redirected to that gate's (remapped) first source,
/// so the surviving cone keeps its shape.
fn remove_gates(
    n_inputs: usize,
    n_ffs: usize,
    gates: &[GateGene],
    ff_taps: &[usize],
    po_taps: &[usize],
    remove: &HashSet<usize>,
) -> NetlistGene {
    let base = n_inputs + n_ffs;
    let mut map: Vec<usize> = (0..base + gates.len()).collect();
    let mut kept = Vec::with_capacity(gates.len() - remove.len());
    for (j, gate) in gates.iter().enumerate() {
        let old = base + j;
        let pool = old.max(1);
        if remove.contains(&j) {
            map[old] = gate.srcs.first().map_or(0, |&s| map[s % pool]);
        } else {
            let srcs = gate.srcs.iter().map(|&s| map[s % pool]).collect();
            map[old] = base + kept.len();
            kept.push(GateGene {
                kind: gate.kind,
                srcs,
            });
        }
    }
    let remap = |t: &usize| map[*t % map.len()];
    NetlistGene::Gates {
        n_inputs,
        n_ffs,
        gates: kept,
        ff_taps: ff_taps.iter().map(remap).collect(),
        po_taps: po_taps.iter().map(remap).collect(),
    }
}

fn with_netlist(r: &Recipe, netlist: NetlistGene) -> Recipe {
    Recipe {
        netlist,
        ..r.clone()
    }
}

/// Classic ddmin over the gate list: try dropping chunks of half the
/// genome, halving the chunk until single gates.
fn ddmin_gates(mut best: Recipe, oracle: &mut Oracle<'_>) -> Recipe {
    let Some((_, _, gates, _, _)) = gates_of(&best) else {
        return best;
    };
    let mut chunk = gates.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        loop {
            let Some((ni, nf, gates, ff, po)) = gates_of(&best) else {
                return best;
            };
            if start >= gates.len() || oracle.exhausted() {
                break;
            }
            chunk = chunk.min(gates.len());
            let remove: HashSet<usize> = (start..(start + chunk).min(gates.len())).collect();
            let cand = with_netlist(&best, remove_gates(ni, nf, gates, ff, po, &remove));
            if oracle.still_fails(&cand) {
                best = cand;
                removed_any = true;
                // Indices shifted; keep scanning from the same position.
            } else {
                start += chunk;
            }
        }
        if oracle.exhausted() || (chunk == 1 && !removed_any) {
            return best;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Tries removing flip-flops one at a time (references collapse to pool
/// index 0, i.e. the first primary input).
fn drop_ffs(mut best: Recipe, oracle: &mut Oracle<'_>) -> Recipe {
    loop {
        let Some((_, nf, ..)) = gates_of(&best) else {
            return best;
        };
        if nf == 0 || oracle.exhausted() {
            return best;
        }
        let mut improved = false;
        for i in (0..nf).rev() {
            let Some((ni2, nf2, gates2, ff2, po2)) = gates_of(&best) else {
                return best;
            };
            if i >= nf2 {
                continue;
            }
            let removed = ni2 + i;
            let remap = |t: &usize| {
                let t = *t % (ni2 + nf2 + gates2.len());
                match t.cmp(&removed) {
                    std::cmp::Ordering::Less => t,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => t - 1,
                }
            };
            let mut new_ff: Vec<usize> = ff2.to_vec();
            new_ff.remove(i);
            let cand = with_netlist(
                &best,
                NetlistGene::Gates {
                    n_inputs: ni2,
                    n_ffs: nf2 - 1,
                    gates: gates2
                        .iter()
                        .map(|g| GateGene {
                            kind: g.kind,
                            srcs: g.srcs.iter().map(&remap).collect(),
                        })
                        .collect(),
                    ff_taps: new_ff.iter().map(&remap).collect(),
                    po_taps: po2.iter().map(&remap).collect(),
                },
            );
            if oracle.still_fails(&cand) {
                best = cand;
                improved = true;
            }
            if oracle.exhausted() {
                return best;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Tries removing primary inputs (always keeping at least one).
fn drop_inputs(mut best: Recipe, oracle: &mut Oracle<'_>) -> Recipe {
    loop {
        let Some((ni, ..)) = gates_of(&best) else {
            return best;
        };
        if ni <= 1 || oracle.exhausted() {
            return best;
        }
        let mut improved = false;
        for i in (0..ni).rev() {
            let Some((ni2, nf2, gates2, ff2, po2)) = gates_of(&best) else {
                return best;
            };
            if ni2 <= 1 || i >= ni2 {
                continue;
            }
            let remap = |t: &usize| {
                let t = *t % (ni2 + nf2 + gates2.len());
                match t.cmp(&i) {
                    std::cmp::Ordering::Less => t,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => t - 1,
                }
            };
            let cand = with_netlist(
                &best,
                NetlistGene::Gates {
                    n_inputs: ni2 - 1,
                    n_ffs: nf2,
                    gates: gates2
                        .iter()
                        .map(|g| GateGene {
                            kind: g.kind,
                            srcs: g.srcs.iter().map(&remap).collect(),
                        })
                        .collect(),
                    ff_taps: ff2.iter().map(&remap).collect(),
                    po_taps: po2.iter().map(&remap).collect(),
                },
            );
            if oracle.still_fails(&cand) {
                best = cand;
                improved = true;
            }
            if oracle.exhausted() {
                return best;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Tries removing primary outputs (always keeping at least one).
fn drop_outputs(mut best: Recipe, oracle: &mut Oracle<'_>) -> Recipe {
    loop {
        let Some(n_po) = gates_of(&best).map(|(.., po)| po.len()) else {
            return best;
        };
        if n_po <= 1 || oracle.exhausted() {
            return best;
        }
        let mut improved = false;
        for i in (0..n_po).rev() {
            let Some((ni2, nf2, gates2, ff2, po2)) = gates_of(&best) else {
                return best;
            };
            if po2.len() <= 1 || i >= po2.len() {
                continue;
            }
            let mut new_po = po2.to_vec();
            new_po.remove(i);
            let cand = with_netlist(
                &best,
                NetlistGene::Gates {
                    n_inputs: ni2,
                    n_ffs: nf2,
                    gates: gates2.to_vec(),
                    ff_taps: ff2.to_vec(),
                    po_taps: new_po,
                },
            );
            if oracle.still_fails(&cand) {
                best = cand;
                improved = true;
            }
            if oracle.exhausted() {
                return best;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Simplifies the lock: fewer key bits / GKs, default options.
fn reduce_lock(mut best: Recipe, oracle: &mut Oracle<'_>) -> Recipe {
    loop {
        if oracle.exhausted() {
            return best;
        }
        let next = match best.lock {
            LockGene::None => return best,
            LockGene::Xor { bits } if bits > 1 => LockGene::Xor { bits: bits - 1 },
            LockGene::Mux { bits } if bits > 1 => LockGene::Mux { bits: bits - 1 },
            LockGene::SarLock { bits } if bits > 1 => LockGene::SarLock { bits: bits - 1 },
            LockGene::AntiSat { n } if n > 1 => LockGene::AntiSat { n: n - 1 },
            LockGene::Tdk { n } if n > 1 => LockGene::Tdk { n: n - 1 },
            LockGene::Gk {
                n_gks,
                mix,
                share,
                glitch_ps,
            } if mix || share || glitch_ps != 1000 || n_gks > 1 => {
                if mix || share {
                    LockGene::Gk {
                        n_gks,
                        mix: false,
                        share: false,
                        glitch_ps,
                    }
                } else if glitch_ps != 1000 {
                    LockGene::Gk {
                        n_gks,
                        mix,
                        share,
                        glitch_ps: 1000,
                    }
                } else {
                    LockGene::Gk {
                        n_gks: n_gks - 1,
                        mix,
                        share,
                        glitch_ps,
                    }
                }
            }
            _ => return best,
        };
        let cand = Recipe {
            lock: next,
            ..best.clone()
        };
        if oracle.still_fails(&cand) {
            best = cand;
        } else {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use crate::recipe::random_recipe;
    use glitchlock_netlist::GateKind;

    fn lib() -> Library {
        Library::cl013g_like().with_gk_delay_macros()
    }

    /// Oracle: the materialized netlist contains at least one XNOR gate —
    /// a stand-in for "the XNOR-flip injection makes a referee fail".
    fn has_xnor(r: &Recipe, library: &Library) -> bool {
        materialize(r, library)
            .netlist
            .cells()
            .any(|(_, c)| c.kind() == GateKind::Xnor)
    }

    #[test]
    fn shrinks_xnor_witness_to_a_handful_of_gates() {
        let library = lib();
        let mut tried = 0;
        for seed in 0..60 {
            let r = random_recipe(seed);
            if !has_xnor(&r, &library) {
                continue;
            }
            tried += 1;
            let (small, spent) = shrink(&r, &library, &mut |c| has_xnor(c, &library), 400);
            assert!(spent <= 400);
            assert!(
                has_xnor(&small, &library),
                "seed {seed}: shrink lost the witness"
            );
            let case = materialize(&small, &library);
            assert!(
                case.netlist.stats().gates <= 10,
                "seed {seed}: shrunk case still has {} gates",
                case.netlist.stats().gates
            );
            if tried >= 5 {
                break;
            }
        }
        assert!(tried >= 3, "too few XNOR-bearing seeds exercised");
    }

    #[test]
    fn shrink_never_loses_the_failure() {
        let library = lib();
        // Oracle: the case has at least 2 flip-flops.
        let oracle = |r: &Recipe| materialize(r, &library).netlist.stats().dffs >= 2;
        for seed in 0..20 {
            let r = random_recipe(seed);
            if !oracle(&r) {
                continue;
            }
            let (small, _) = shrink(&r, &library, &mut { oracle }, 200);
            assert!(oracle(&small), "seed {seed}");
            assert_eq!(materialize(&small, &library).netlist.stats().dffs, 2);
        }
    }
}
