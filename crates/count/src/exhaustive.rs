//! Exact ground-truth scores by packed 64-lane brute force.
//!
//! For every key value the full data space is swept through a compiled
//! [`EvalProgram`], 64 patterns per pass, building one output-signature
//! byte string per key. From those signatures all four exact quantities
//! fall out in one pass over the key space:
//!
//! * inputs corrupted by the sampled key (signature row ≠ oracle row),
//! * DIP inputs (some key's row ≠ the first key's row),
//! * wrong keys (whole signature ≠ oracle signature),
//! * key equivalence classes (distinct signatures).
//!
//! Feasible up to [`MAX_EXACT_BITS`] total data+key bits; the estimator
//! in [`crate::estimator`] exists for everything beyond, and this module
//! is the oracle it is validated against.

use crate::view::KeyedView;
use glitchlock_netlist::{CombView, EvalProgram, Logic, Netlist, PackedLogic, LANES};
use glitchlock_obs::{self as obs, names};
use std::collections::BTreeSet;

/// Hard feasibility cap on `data_bits + key_bits` (the sweep costs
/// `2^(data+key)/64` packed passes and one signature byte per pattern and
/// output).
pub const MAX_EXACT_BITS: usize = 26;

/// The four exact counts of one locked design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactScores {
    /// Data-space width `n` (counts over inputs live in `2^n`).
    pub data_bits: usize,
    /// Key-space width `κ` (counts over keys live in `2^κ`).
    pub key_bits: usize,
    /// Inputs where the view under the sampled key differs from the
    /// oracle.
    pub err_count: u64,
    /// Inputs on which at least two keys make the view disagree
    /// (distinguishing input patterns).
    pub dip_count: u64,
    /// Keys whose view differs from the oracle on some input.
    pub wrong_keys: u64,
    /// Distinct key-induced functions (key equivalence classes).
    pub key_classes: u64,
}

fn logic_byte(l: Logic) -> u8 {
    match l {
        Logic::Zero => 0,
        Logic::One => 1,
        Logic::X => 2,
    }
}

/// Sweeps all `2^n` data patterns through `view`, returning one signature
/// byte per (pattern, output): data bit `j` drives view-input position
/// `data_ix[j]`, `key[i]` is held at position `key_ix[i]`.
fn sweep(
    view: &CombView,
    prog: &EvalProgram,
    data_ix: &[usize],
    key_ix: &[usize],
    key: &[bool],
) -> Vec<u8> {
    let n = data_ix.len();
    let total = 1u64 << n;
    let mut buf = prog.scratch();
    let mut sig = Vec::with_capacity(total as usize * view.num_outputs());
    let mut words = vec![PackedLogic::ZERO; view.num_inputs()];
    for (i, &pos) in key_ix.iter().enumerate() {
        words[pos] = PackedLogic::splat(Logic::from_bool(key[i]));
    }
    for base in (0..total).step_by(LANES) {
        let lanes = (total - base).min(LANES as u64) as usize;
        for (j, &pos) in data_ix.iter().enumerate() {
            let mut w = PackedLogic::ZERO;
            for lane in 0..lanes {
                w.set(lane, Logic::from_bool((base + lane as u64) >> j & 1 == 1));
            }
            words[pos] = w;
        }
        let rows = view.eval_packed_words(prog, &words, &mut buf);
        for lane in 0..lanes {
            for w in &rows {
                sig.push(logic_byte(w.get(lane)));
            }
        }
    }
    sig
}

/// Computes all four exact scores of `kv` against `oracle`, with
/// `sampled_key` as the wrong-key-error subject.
///
/// # Errors
///
/// Interface mismatches (data width vs oracle inputs, output counts, key
/// width) and designs beyond [`MAX_EXACT_BITS`].
pub fn exact_scores(
    kv: &KeyedView<'_>,
    oracle: &Netlist,
    sampled_key: &[bool],
) -> Result<ExactScores, String> {
    let n = kv.data_bits();
    let kappa = kv.key_bits();
    if n + kappa > MAX_EXACT_BITS {
        return Err(format!(
            "{} data + {} key bits exceeds the exhaustive cap of {MAX_EXACT_BITS}",
            n, kappa
        ));
    }
    if sampled_key.len() != kappa {
        return Err(format!(
            "sampled key has {} bits, design has {kappa}",
            sampled_key.len()
        ));
    }
    let oview = CombView::new(oracle);
    if oview.num_inputs() != n {
        return Err(format!(
            "oracle has {} view inputs, locked design carries {n} data bits",
            oview.num_inputs()
        ));
    }
    let outs = kv.view.num_outputs();
    if oview.num_outputs() != outs {
        return Err(format!(
            "output counts differ: locked view {outs}, oracle {}",
            oview.num_outputs()
        ));
    }

    let vprog = EvalProgram::compile(kv.netlist).map_err(|e| e.to_string())?;
    let oprog = EvalProgram::compile(oracle).map_err(|e| e.to_string())?;
    let oracle_ix: Vec<usize> = (0..n).collect();
    let osig = sweep(&oview, &oprog, &oracle_ix, &[], &[]);

    let sampled_index: u64 = sampled_key
        .iter()
        .enumerate()
        .map(|(i, &b)| (b as u64) << i)
        .sum();
    let total = 1u64 << n;
    let mut dip = vec![false; total as usize];
    let mut ref_sig: Vec<u8> = Vec::new();
    let mut classes: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut wrong_keys = 0u64;
    let mut err_count = 0u64;

    let row_differs =
        |a: &[u8], b: &[u8], x: usize| a[x * outs..(x + 1) * outs] != b[x * outs..(x + 1) * outs];
    for k in 0..(1u64 << kappa) {
        let key: Vec<bool> = (0..kappa).map(|i| k >> i & 1 == 1).collect();
        let sig = sweep(&kv.view, &vprog, &kv.data_ix, &kv.key_ix, &key);
        if sig != osig {
            wrong_keys += 1;
        }
        if k == sampled_index {
            err_count = (0..total as usize)
                .filter(|&x| row_differs(&sig, &osig, x))
                .count() as u64;
        }
        if ref_sig.is_empty() {
            ref_sig = sig.clone();
        } else {
            for (x, flag) in dip.iter_mut().enumerate() {
                if !*flag && row_differs(&sig, &ref_sig, x) {
                    *flag = true;
                }
            }
        }
        classes.insert(sig);
    }
    // One sweep per key value plus the oracle's own.
    obs::add(names::COUNT_EXHAUSTIVE_SWEEPS, (1u64 << kappa) + 1);

    Ok(ExactScores {
        data_bits: n,
        key_bits: kappa,
        err_count,
        dip_count: dip.iter().filter(|&&f| f).count() as u64,
        wrong_keys,
        key_classes: classes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    /// Oracle: y = a AND b.
    fn oracle_and() -> Netlist {
        let mut nl = Netlist::new("o");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    /// XOR-locked: y = (a AND b) XOR k — every input corrupted when k=1.
    fn xor_locked() -> (Netlist, Vec<glitchlock_netlist::NetId>) {
        let mut nl = Netlist::new("l");
        let a = nl.add_input("a");
        let k = nl.add_input("key0");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, k]).unwrap();
        nl.mark_output(y, "y");
        (nl, vec![k])
    }

    #[test]
    fn xor_lock_corrupts_the_full_input_space() {
        let oracle = oracle_and();
        let (locked, keys) = xor_locked();
        let kv = KeyedView::new(&locked, &keys);
        let s = exact_scores(&kv, &oracle, &[true]).unwrap();
        assert_eq!(
            s,
            ExactScores {
                data_bits: 2,
                key_bits: 1,
                err_count: 4, // the count = 2^n boundary case
                dip_count: 4,
                wrong_keys: 1,
                key_classes: 2,
            }
        );
        // The correct key corrupts nothing.
        let s = exact_scores(&kv, &oracle, &[false]).unwrap();
        assert_eq!(s.err_count, 0);
        assert_eq!(s.wrong_keys, 1);
    }

    #[test]
    fn point_function_corrupts_exactly_one_pattern() {
        // y = (a AND b) XOR (k AND a AND b): wrong key flips only a=b=1.
        let oracle = oracle_and();
        let mut nl = Netlist::new("l");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_input("key0");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let flip = nl.add_gate(GateKind::And, &[k, g]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, flip]).unwrap();
        nl.mark_output(y, "y");
        let kv = KeyedView::new(&nl, &[k]);
        let s = exact_scores(&kv, &oracle, &[true]).unwrap();
        assert_eq!(s.err_count, 1);
        assert_eq!(s.dip_count, 1);
        assert_eq!(s.wrong_keys, 1);
        assert_eq!(s.key_classes, 2);
    }

    #[test]
    fn dead_key_is_fully_transparent() {
        // y = (a AND b) XOR (k AND 0): the count = 0 boundary case.
        let oracle = oracle_and();
        let mut nl = Netlist::new("l");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_input("key0");
        let zero = nl.add_const(false);
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let dead = nl.add_gate(GateKind::And, &[k, zero]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, dead]).unwrap();
        nl.mark_output(y, "y");
        let kv = KeyedView::new(&nl, &[k]);
        let s = exact_scores(&kv, &oracle, &[true]).unwrap();
        assert_eq!(s.err_count, 0);
        assert_eq!(s.dip_count, 0);
        assert_eq!(s.wrong_keys, 0);
        assert_eq!(s.key_classes, 1);
    }

    #[test]
    fn sequential_views_sweep_ff_state_as_data() {
        // One FF: D = a XOR k, Q exposed. View inputs: a, k, Q; view
        // outputs: y (= Q), D. Wrong key corrupts D on every (a, q).
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let d = oracle.add_net("d");
        let q = oracle.add_dff(d).unwrap();
        let buf = oracle.add_gate(GateKind::Buf, &[a]).unwrap();
        let ff = oracle.dff_cells()[0];
        oracle.rewire_input(ff, 0, buf).unwrap();
        oracle.mark_output(q, "y");

        let mut nl = Netlist::new("l");
        let a2 = nl.add_input("a");
        let k = nl.add_input("key0");
        let d2 = nl.add_net("d");
        let q2 = nl.add_dff(d2).unwrap();
        let x = nl.add_gate(GateKind::Xor, &[a2, k]).unwrap();
        let ff2 = nl.dff_cells()[0];
        nl.rewire_input(ff2, 0, x).unwrap();
        nl.mark_output(q2, "y");

        let kv = KeyedView::new(&nl, &[k]);
        let s = exact_scores(&kv, &oracle, &[true]).unwrap();
        assert_eq!(s.data_bits, 2, "PI a + FF Q");
        // D differs on all 4 (a, q) patterns under k=1; Q passes through.
        assert_eq!(s.err_count, 4);
        assert_eq!(s.dip_count, 4);
        assert_eq!(s.wrong_keys, 1);
        assert_eq!(s.key_classes, 2);
    }

    #[test]
    fn interface_mismatches_are_errors() {
        let (locked, keys) = xor_locked();
        let kv = KeyedView::new(&locked, &keys);
        let mut tiny = Netlist::new("tiny");
        let a = tiny.add_input("a");
        tiny.mark_output(a, "y");
        assert!(exact_scores(&kv, &tiny, &[true]).is_err());
        let oracle = oracle_and();
        assert!(exact_scores(&kv, &oracle, &[]).is_err());
    }
}
