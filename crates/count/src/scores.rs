//! The three corruption scores of a locked design, exact and estimated.
//!
//! Each score is a projected model count over a miter CNF built through
//! the same [`EncoderKind`] machinery as the SAT attack:
//!
//! * **err** — one view copy against the oracle, data inputs shared, key
//!   inputs pinned (by assumption) to a sampled key; projected onto the
//!   data variables. Counts the inputs that key corrupts.
//! * **wrong-keys** — the *same* miter with the key assumptions dropped,
//!   projected onto the key variables. Counts the keys that differ from
//!   the oracle anywhere; `2^κ − W` is the correct key's equivalence
//!   class size. One solver instance serves both scores.
//! * **dip** — two view copies sharing data inputs with independent keys,
//!   projected onto the data variables: the distinguishing-input space
//!   the SAT attack mines.
//!
//! The dataflow refined key-taint bitsets prune both SAT sessions: view
//! outputs no key bit taints leave the DIP miter (two copies of the same
//! function cannot differ there; when *every* output is untainted,
//! `dip = 0` needs no solver call at all), and key bits that taint no
//! output leave the wrong-key projection with an exact `2^dead`
//! multiplier. Key-independence the taint cannot see statically — the GK
//! attack view's MUX of two delay-chain branches — still resolves
//! cheaply: the DIP miter is UNSAT, so its base enumeration returns an
//! exact zero before any hashing. That `dip = 0, one key class, yet
//! every key statically wrong` signature is the paper's headline
//! quantified.
//!
//! Below the exact cutoff the packed exhaustive sweep *also* runs, so
//! every estimate ships with its ground truth attached.

use crate::estimator::{approx_count, CountParams};
use crate::exhaustive::{exact_scores, MAX_EXACT_BITS};
use crate::view::KeyedView;
use glitchlock_dataflow::{const_facts, taint_facts, TaintMode, ValueNumbering};
use glitchlock_netlist::{CombView, NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_sat::{encode_comb_with, EncoderKind, Lit, Solver, SolverBackend, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning for one [`corruption_scores`] computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreConfig {
    /// Estimator multiplicative tolerance.
    pub epsilon: f64,
    /// Estimator failure probability.
    pub delta: f64,
    /// Run the exhaustive ground-truth sweep at or below this many
    /// data+key bits (additionally capped by
    /// [`crate::exhaustive::MAX_EXACT_BITS`]).
    pub exact_bits: usize,
    /// Run the estimator at or below this many data+key bits; beyond it
    /// the design is skipped.
    pub max_bits: usize,
    /// CDCL backend for the hash-count sessions.
    pub solver: SolverBackend,
    /// CNF encoder for the miters.
    pub encoder: EncoderKind,
    /// Root seed for the sampled key and all hash draws. Campaigns derive
    /// it from the spec fingerprint so estimates survive re-sharding.
    pub seed: u64,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig {
            epsilon: 0.8,
            delta: 0.2,
            exact_bits: 20,
            max_bits: 24,
            solver: SolverBackend::default(),
            encoder: EncoderKind::default(),
            seed: 1,
        }
    }
}

/// Which engines produced a [`CorruptionScores`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreMethod {
    /// Exhaustive sweep and estimator both ran (estimates cross-checked).
    Both,
    /// Only the exhaustive sweep ran.
    Exact,
    /// Only the estimator ran.
    Estimate,
    /// The design exceeds `max_bits`; no counting was attempted.
    Skipped,
}

impl ScoreMethod {
    /// Canonical report tag.
    pub fn tag(self) -> &'static str {
        match self {
            ScoreMethod::Both => "both",
            ScoreMethod::Exact => "exact",
            ScoreMethod::Estimate => "estimate",
            ScoreMethod::Skipped => "skipped",
        }
    }
}

/// One projected count with its space width.
#[derive(Clone, Debug, PartialEq)]
pub struct Score {
    /// The count lives in a space of `2^space_bits`.
    pub space_bits: usize,
    /// Exact value: from the exhaustive sweep when it ran, else from an
    /// estimator round whose base enumeration finished below the pivot.
    pub exact: Option<u64>,
    /// Hash-count estimate (set whenever the estimator ran).
    pub estimate: Option<f64>,
}

impl Score {
    fn empty(space_bits: usize) -> Score {
        Score {
            space_bits,
            exact: None,
            estimate: None,
        }
    }

    /// The most trustworthy value available: exact first, else estimate.
    pub fn best(&self) -> Option<f64> {
        self.exact.map(|c| c as f64).or(self.estimate)
    }

    /// [`Score::best`] normalized by the space size.
    pub fn fraction(&self) -> Option<f64> {
        self.best().map(|c| c / (2f64).powi(self.space_bits as i32))
    }
}

/// The three scores of one locked design.
#[derive(Clone, Debug, PartialEq)]
pub struct CorruptionScores {
    /// Data-space width `n`.
    pub data_bits: usize,
    /// Key-space width `κ`.
    pub key_bits: usize,
    /// Engines that ran.
    pub method: ScoreMethod,
    /// The sampled key the err score is measured under (drawn from the
    /// seed; it may coincide with the correct key, in which case an err
    /// count of 0 is the honest answer).
    pub sampled_key: Vec<bool>,
    /// Inputs corrupted by the sampled key, over `2^n`.
    pub err: Score,
    /// Distinguishing input patterns, over `2^n`.
    pub dip: Score,
    /// Keys differing from the oracle somewhere, over `2^κ`.
    pub wrong_keys: Score,
    /// Distinct key-induced functions (exhaustive sweep only).
    pub key_classes: Option<u64>,
}

/// Deterministic per-purpose seed derivation (FNV-1a over the salt and
/// seed bytes) so each score's hash draws are independent of whether the
/// other engines ran.
fn mix(seed: u64, salt: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in salt.bytes().chain(seed.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// XOR-differences the selected output pairs and returns a gate variable
/// whose assumption demands at least one difference.
fn miter_gate(solver: &mut Solver, pairs: &[(Var, Var)]) -> Var {
    let mut clause = Vec::with_capacity(pairs.len() + 1);
    let gate = solver.new_var();
    clause.push(Lit::neg(gate));
    for &(a, b) in pairs {
        let d = solver.new_var();
        solver.add_clause(&[Lit::neg(d), Lit::pos(a), Lit::pos(b)]);
        solver.add_clause(&[Lit::neg(d), Lit::neg(a), Lit::neg(b)]);
        solver.add_clause(&[Lit::pos(d), Lit::neg(a), Lit::pos(b)]);
        solver.add_clause(&[Lit::pos(d), Lit::pos(a), Lit::neg(b)]);
        clause.push(Lit::pos(d));
    }
    solver.add_clause(&clause);
    gate
}

/// Computes the three corruption scores of `locked` against `oracle`.
///
/// # Errors
///
/// Invalid `(ε, δ)`, interface mismatches between the locked view and the
/// oracle, and netlist compilation failures.
pub fn corruption_scores(
    locked: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    cfg: &ScoreConfig,
) -> Result<CorruptionScores, String> {
    let params = CountParams::new(cfg.epsilon, cfg.delta)?;
    let kv = KeyedView::new(locked, key_inputs);
    let n = kv.data_bits();
    let kappa = kv.key_bits();
    let oview = CombView::new(oracle);
    if oview.num_inputs() != n {
        return Err(format!(
            "oracle has {} view inputs, locked design carries {n} data bits",
            oview.num_inputs()
        ));
    }
    if oview.num_outputs() != kv.view.num_outputs() {
        return Err(format!(
            "output counts differ: locked view {}, oracle {}",
            kv.view.num_outputs(),
            oview.num_outputs()
        ));
    }
    obs::incr(names::COUNT_RUNS);

    let mut key_rng = StdRng::seed_from_u64(mix(cfg.seed, "sampled-key"));
    let sampled_key: Vec<bool> = (0..kappa).map(|_| key_rng.gen()).collect();

    let bits = n + kappa;
    let run_exact = bits <= cfg.exact_bits.min(MAX_EXACT_BITS);
    let run_est = bits <= cfg.max_bits;
    let mut scores = CorruptionScores {
        data_bits: n,
        key_bits: kappa,
        method: match (run_exact, run_est) {
            (true, true) => ScoreMethod::Both,
            (true, false) => ScoreMethod::Exact,
            (false, true) => ScoreMethod::Estimate,
            (false, false) => ScoreMethod::Skipped,
        },
        sampled_key: sampled_key.clone(),
        err: Score::empty(n),
        dip: Score::empty(n),
        wrong_keys: Score::empty(kappa),
        key_classes: None,
    };
    if scores.method == ScoreMethod::Skipped {
        return Ok(scores);
    }

    if run_exact {
        let ex = exact_scores(&kv, oracle, &sampled_key)?;
        scores.err.exact = Some(ex.err_count);
        scores.dip.exact = Some(ex.dip_count);
        scores.wrong_keys.exact = Some(ex.wrong_keys);
        scores.key_classes = Some(ex.key_classes);
    }
    if run_est {
        estimate_scores(&kv, &oview, oracle, &sampled_key, cfg, &params, &mut scores);
    }
    obs::add(names::COUNT_SCORES, 3);
    Ok(scores)
}

/// Runs the hash-count sessions and fills the estimate fields (and the
/// exact fields the exhaustive sweep did not already own, when a base
/// enumeration finished below the pivot).
fn estimate_scores(
    kv: &KeyedView<'_>,
    oview: &CombView,
    oracle: &Netlist,
    sampled_key: &[bool],
    cfg: &ScoreConfig,
    params: &CountParams,
    scores: &mut CorruptionScores,
) {
    let locked = kv.netlist;
    let kappa = kv.key_bits();
    // Refined key taint in view-order key-bit indexing, shared by both
    // pruning decisions.
    let key_nets = kv.key_nets();
    let consts = const_facts(locked, &[]);
    let vn = ValueNumbering::build(locked);
    let refined = taint_facts(
        locked,
        &key_nets,
        TaintMode::Refined {
            vn: &vn,
            consts: &consts,
        },
        true,
    );

    // Session A: view vs oracle, data shared, keys free. Serves err (key
    // pinned by assumptions) and wrong-keys (keys free) on one solver.
    let mut solver = Solver::with_backend(cfg.solver);
    let vio = encode_comb_with(&mut solver, locked, &kv.view, &[], cfg.encoder);
    let pinned: Vec<Option<Var>> = kv
        .data_ix
        .iter()
        .map(|&p| Some(vio.input_vars[p]))
        .collect();
    let oio = encode_comb_with(&mut solver, oracle, oview, &pinned, cfg.encoder);
    let pairs: Vec<(Var, Var)> = vio
        .output_vars
        .iter()
        .copied()
        .zip(oio.output_vars.iter().copied())
        .collect();
    let gate = miter_gate(&mut solver, &pairs);
    let data_vars: Vec<Var> = kv.data_ix.iter().map(|&p| vio.input_vars[p]).collect();
    let key_vars: Vec<Var> = kv.key_ix.iter().map(|&p| vio.input_vars[p]).collect();

    let mut assum = vec![Lit::pos(gate)];
    assum.extend(
        key_vars
            .iter()
            .zip(sampled_key)
            .map(|(&v, &b)| Lit::with_sign(v, !b)),
    );
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed, "err"));
    let err = approx_count(&mut solver, &assum, &data_vars, params, &mut rng);
    scores.err.estimate = Some(err.estimate);
    if scores.err.exact.is_none() {
        scores.err.exact = err.exact;
    }

    // Wrong keys: key bits that taint no view output cannot change the
    // function; they leave the projection and return as an exact 2^dead
    // multiplier.
    let live: Vec<Var> = (0..kappa)
        .filter(|&i| {
            kv.view
                .output_nets()
                .iter()
                .any(|&o| refined.net(o).contains(i))
        })
        .map(|i| key_vars[i])
        .collect();
    let dead = (kappa - live.len()) as u32;
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed, "wrong-keys"));
    let wk = approx_count(&mut solver, &[Lit::pos(gate)], &live, params, &mut rng);
    scores.wrong_keys.estimate = Some(wk.estimate * (2f64).powi(dead as i32));
    if scores.wrong_keys.exact.is_none() {
        scores.wrong_keys.exact = wk.exact.map(|c| c << dead);
    }

    // Session B: the DIP miter — two view copies sharing data, free keys,
    // restricted to the key-tainted outputs. No tainted output means no
    // input can distinguish any two keys: dip = 0 with no solver call
    // (the GK attack view lands here through the identity laundering).
    let tainted_outputs: Vec<usize> = (0..kv.view.num_outputs())
        .filter(|&oi| !refined.net(kv.view.output_nets()[oi]).is_empty())
        .collect();
    if tainted_outputs.is_empty() {
        scores.dip.estimate = Some(0.0);
        if scores.dip.exact.is_none() {
            scores.dip.exact = Some(0);
        }
        return;
    }
    let mut solver = Solver::with_backend(cfg.solver);
    let one = encode_comb_with(&mut solver, locked, &kv.view, &[], cfg.encoder);
    let mut pinned: Vec<Option<Var>> = vec![None; kv.view.num_inputs()];
    for &p in &kv.data_ix {
        pinned[p] = Some(one.input_vars[p]);
    }
    let two = encode_comb_with(&mut solver, locked, &kv.view, &pinned, cfg.encoder);
    let pairs: Vec<(Var, Var)> = tainted_outputs
        .iter()
        .map(|&oi| (one.output_vars[oi], two.output_vars[oi]))
        .collect();
    let gate = miter_gate(&mut solver, &pairs);
    let data_vars: Vec<Var> = kv.data_ix.iter().map(|&p| one.input_vars[p]).collect();
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed, "dip"));
    let dip = approx_count(&mut solver, &[Lit::pos(gate)], &data_vars, params, &mut rng);
    scores.dip.estimate = Some(dip.estimate);
    if scores.dip.exact.is_none() {
        scores.dip.exact = dip.exact;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    fn oracle_and() -> Netlist {
        let mut nl = Netlist::new("o");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    fn xor_locked() -> (Netlist, Vec<NetId>) {
        let mut nl = Netlist::new("l");
        let a = nl.add_input("a");
        let k = nl.add_input("key0");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, k]).unwrap();
        nl.mark_output(y, "y");
        (nl, vec![k])
    }

    #[test]
    fn both_engines_agree_on_an_xor_lock() {
        let oracle = oracle_and();
        let (locked, keys) = xor_locked();
        let s = corruption_scores(&locked, &keys, &oracle, &ScoreConfig::default()).unwrap();
        assert_eq!(s.method, ScoreMethod::Both);
        assert_eq!(s.dip.exact, Some(4));
        assert_eq!(s.wrong_keys.exact, Some(1));
        assert_eq!(s.key_classes, Some(2));
        // Counts under the pivot: base enumeration is exact, so the
        // estimates must equal the exhaustive ground truth bit for bit.
        assert_eq!(s.dip.estimate, Some(4.0));
        assert_eq!(s.wrong_keys.estimate, Some(1.0));
        assert_eq!(
            s.err.estimate,
            Some(s.err.exact.unwrap() as f64),
            "estimator err must match the sweep"
        );
        // err is 0 or 4 depending on the sampled key; both are exact.
        assert!(matches!(s.err.exact, Some(0) | Some(4)));
        assert_eq!(s.dip.fraction(), Some(1.0));
    }

    #[test]
    fn dead_key_prunes_to_zero_without_corruption() {
        let oracle = oracle_and();
        let mut nl = Netlist::new("l");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_input("key0");
        let zero = nl.add_const(false);
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let dead = nl.add_gate(GateKind::And, &[k, zero]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, dead]).unwrap();
        nl.mark_output(y, "y");
        let s = corruption_scores(&nl, &[k], &oracle, &ScoreConfig::default()).unwrap();
        assert_eq!(s.err.exact, Some(0));
        assert_eq!(s.dip.exact, Some(0));
        assert_eq!(s.wrong_keys.exact, Some(0));
        assert_eq!(s.key_classes, Some(1));
        assert_eq!(s.err.estimate, Some(0.0));
        assert_eq!(s.dip.estimate, Some(0.0));
        assert_eq!(s.wrong_keys.estimate, Some(0.0));
    }

    #[test]
    fn encoders_and_backends_produce_identical_scores() {
        let oracle = oracle_and();
        let (locked, keys) = xor_locked();
        let mut all = Vec::new();
        for solver in [SolverBackend::Legacy, SolverBackend::Modern] {
            for encoder in [EncoderKind::Flat, EncoderKind::Aig] {
                let cfg = ScoreConfig {
                    solver,
                    encoder,
                    ..ScoreConfig::default()
                };
                all.push(corruption_scores(&locked, &keys, &oracle, &cfg).unwrap());
            }
        }
        for s in &all[1..] {
            assert_eq!(s, &all[0]);
        }
    }

    #[test]
    fn oversized_designs_are_skipped_not_counted() {
        let oracle = oracle_and();
        let (locked, keys) = xor_locked();
        let cfg = ScoreConfig {
            exact_bits: 0,
            max_bits: 0,
            ..ScoreConfig::default()
        };
        let s = corruption_scores(&locked, &keys, &oracle, &cfg).unwrap();
        assert_eq!(s.method, ScoreMethod::Skipped);
        assert_eq!(s.err, Score::empty(2));
        assert_eq!(s.key_classes, None);
        assert_eq!(s.err.best(), None);
    }

    #[test]
    fn estimate_only_mode_still_lands_exact_small_counts() {
        let oracle = oracle_and();
        let (locked, keys) = xor_locked();
        let cfg = ScoreConfig {
            exact_bits: 0,
            ..ScoreConfig::default()
        };
        let s = corruption_scores(&locked, &keys, &oracle, &cfg).unwrap();
        assert_eq!(s.method, ScoreMethod::Estimate);
        assert_eq!(s.key_classes, None, "classes need the sweep");
        // Base enumeration finishes under the pivot: exact anyway.
        assert_eq!(s.dip.exact, Some(4));
        assert_eq!(s.wrong_keys.exact, Some(1));
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let (locked, keys) = xor_locked();
        let mut tiny = Netlist::new("tiny");
        let a = tiny.add_input("a");
        tiny.mark_output(a, "y");
        assert!(corruption_scores(&locked, &keys, &tiny, &ScoreConfig::default()).is_err());
    }

    #[test]
    fn scores_are_deterministic_in_the_seed() {
        let oracle = oracle_and();
        let (locked, keys) = xor_locked();
        let cfg = ScoreConfig {
            seed: 99,
            ..ScoreConfig::default()
        };
        let a = corruption_scores(&locked, &keys, &oracle, &cfg).unwrap();
        let b = corruption_scores(&locked, &keys, &oracle, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
