//! Random XOR parity constraints over a projection, CNF-encoded.
//!
//! A hash round partitions the projected solution space with rows of the
//! random family `H_xor`: each row picks every projection position
//! independently with probability ½ and demands a random parity of the
//! picked bits. Rows are drawn over projection *positions* — indices into
//! the caller's variable list, never solver [`Var`] ids — so identical
//! seeds give identical rows no matter which backend or encoder built
//! the CNF underneath.
//!
//! Encoding: the XOR chain is lowered through fresh auxiliary variables
//! (`tᵢ ↔ tᵢ₋₁ ⊕ xᵢ`, four clauses each). The chain definitions are
//! unguarded — they only define the aux variables and are inert while the
//! row is inactive — and the final parity demand is a single clause
//! guarded by a selector literal, so a row costs one assumption to switch
//! on and nothing to switch off.

use glitchlock_sat::{CnfSink, Lit, Var};
use rand::rngs::StdRng;
use rand::Rng;

/// One parity row: `⊕ {bit p : p ∈ positions} = parity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityRow {
    /// Indices into the projection's variable list.
    pub positions: Vec<usize>,
    /// Required parity of the selected bits.
    pub parity: bool,
}

/// Draws `count` independent rows over a projection of width `n`: each
/// position joins a row with probability ½, parities are fair coins.
/// Degenerate rows (empty, single-position) are legal and kept — the
/// encoder handles them — so the family stays exactly `H_xor`.
pub fn draw_rows(n: usize, count: usize, rng: &mut StdRng) -> Vec<ParityRow> {
    (0..count)
        .map(|_| ParityRow {
            positions: (0..n).filter(|_| rng.gen::<bool>()).collect(),
            parity: rng.gen::<bool>(),
        })
        .collect()
}

/// Encodes `row` over `vars` into `sink`. With `sel = Some(s)` the parity
/// demand is guarded by `¬s` (assume `s` to activate the row); with
/// `None` it is a hard unit constraint.
///
/// Degenerate shapes: an empty row with parity 1 emits the bare guard
/// clause (assuming the selector is then contradictory — the row demands
/// odd parity of nothing); an empty row with parity 0 emits nothing; a
/// single-position row needs no auxiliary chain.
///
/// # Panics
///
/// Panics if a row position indexes past `vars`.
pub fn encode_row_into<S: CnfSink>(sink: &mut S, vars: &[Var], row: &ParityRow, sel: Option<Var>) {
    let mut lits = row.positions.iter().map(|&p| Lit::pos(vars[p]));
    let guard = sel.map(Lit::neg);
    let Some(first) = lits.next() else {
        if row.parity {
            match guard {
                Some(g) => sink.clause(&[g]),
                None => sink.clause(&[]),
            }
        }
        return;
    };
    let mut acc = first;
    for lit in lits {
        let y = sink.fresh_var();
        // y <-> acc xor lit.
        sink.clause(&[Lit::neg(y), acc, lit]);
        sink.clause(&[Lit::neg(y), !acc, !lit]);
        sink.clause(&[Lit::pos(y), !acc, lit]);
        sink.clause(&[Lit::pos(y), acc, !lit]);
        acc = Lit::pos(y);
    }
    // Demand acc = parity.
    let demand = if row.parity { acc } else { !acc };
    match guard {
        Some(g) => sink.clause(&[g, demand]),
        None => sink.clause(&[demand]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_sat::{dimacs, Cnf, SatResult, Solver, SolverBackend};
    use rand::SeedableRng;

    fn base_vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    /// Assumptions pinning `vars` to the bits of `assignment`.
    fn pin(vars: &[Var], assignment: u32) -> Vec<Lit> {
        vars.iter()
            .enumerate()
            .map(|(i, &v)| Lit::with_sign(v, assignment >> i & 1 == 0))
            .collect()
    }

    fn parity_of(row: &ParityRow, assignment: u32) -> bool {
        row.positions
            .iter()
            .fold(false, |acc, &p| acc ^ (assignment >> p & 1 == 1))
    }

    #[test]
    fn hard_rows_accept_exactly_the_matching_parities() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let rows = draw_rows(4, 2, &mut rng);
            let mut solver = Solver::new();
            let vars = base_vars(&mut solver, 4);
            for row in &rows {
                encode_row_into(&mut solver, &vars, row, None);
            }
            for assignment in 0u32..16 {
                let want = rows.iter().all(|r| parity_of(r, assignment) == r.parity);
                let got = solver.solve_with(&pin(&vars, assignment)) == SatResult::Sat;
                assert_eq!(got, want, "rows {rows:?} assignment {assignment:04b}");
            }
        }
    }

    #[test]
    fn guarded_rows_are_inert_until_assumed() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let rows = draw_rows(4, 3, &mut rng);
            let mut solver = Solver::new();
            let vars = base_vars(&mut solver, 4);
            let sels: Vec<Var> = rows
                .iter()
                .map(|row| {
                    let s = solver.new_var();
                    encode_row_into(&mut solver, &vars, row, Some(s));
                    s
                })
                .collect();
            for assignment in 0u32..16 {
                // No selectors assumed: every assignment extends.
                assert_eq!(solver.solve_with(&pin(&vars, assignment)), SatResult::Sat);
                // Activating a prefix enforces exactly those rows.
                for m in 1..=rows.len() {
                    let mut assum = pin(&vars, assignment);
                    assum.extend(sels[..m].iter().map(|&s| Lit::pos(s)));
                    let want = rows[..m]
                        .iter()
                        .all(|r| parity_of(r, assignment) == r.parity);
                    let got = solver.solve_with(&assum) == SatResult::Sat;
                    assert_eq!(got, want, "m={m} assignment {assignment:04b}");
                }
            }
        }
    }

    #[test]
    fn degenerate_rows_encode_correctly() {
        // Empty row, parity 0: no constraint at all.
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..2).map(|_| cnf.new_var()).collect();
        encode_row_into(
            &mut cnf,
            &vars,
            &ParityRow {
                positions: vec![],
                parity: false,
            },
            None,
        );
        assert_eq!(cnf.num_clauses(), 0);

        // Empty row, parity 1: hard-unsat; guarded form is unsat only
        // under the selector.
        let mut solver = Solver::new();
        let vars = base_vars(&mut solver, 2);
        let s = solver.new_var();
        encode_row_into(
            &mut solver,
            &vars,
            &ParityRow {
                positions: vec![],
                parity: true,
            },
            Some(s),
        );
        assert_eq!(solver.solve(), SatResult::Sat);
        assert_eq!(solver.solve_with(&[Lit::pos(s)]), SatResult::Unsat);

        // Single-position row forces that variable, no aux chain.
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..2).map(|_| cnf.new_var()).collect();
        encode_row_into(
            &mut cnf,
            &vars,
            &ParityRow {
                positions: vec![1],
                parity: true,
            },
            None,
        );
        assert_eq!(cnf.num_vars(), 2, "no auxiliaries for one literal");
        assert_eq!(cnf.clauses(), &[vec![Lit::pos(vars[1])]]);
    }

    #[test]
    fn parity_cnf_round_trips_through_the_dimacs_parser() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..6).map(|_| cnf.new_var()).collect();
        for row in draw_rows(6, 4, &mut rng) {
            encode_row_into(&mut cnf, &vars, &row, None);
        }
        let text = dimacs::emit(&cnf);
        let parsed = dimacs::parse(&text).expect("round trip");
        assert_eq!(parsed.num_vars(), cnf.num_vars());
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn legacy_and_modern_backends_agree_on_hashed_instances() {
        let mut rng = StdRng::seed_from_u64(23);
        for round in 0..10 {
            // A base formula with structure (an OR over the vars) plus
            // random parity rows; both backends must agree per assignment
            // prefix and on overall satisfiability.
            let rows = draw_rows(5, 3, &mut rng);
            let mut verdicts = Vec::new();
            for backend in [SolverBackend::Legacy, SolverBackend::Modern] {
                let mut solver = Solver::with_backend(backend);
                let vars = base_vars(&mut solver, 5);
                solver.add_clause(&pin(&vars, 0b10110));
                for row in &rows {
                    encode_row_into(&mut solver, &vars, row, None);
                }
                verdicts.push(solver.solve());
            }
            assert_eq!(verdicts[0], verdicts[1], "round {round}");
        }
    }

    #[test]
    fn draws_are_deterministic_in_the_seed() {
        let a = draw_rows(8, 5, &mut StdRng::seed_from_u64(42));
        let b = draw_rows(8, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
