//! # glitchlock-count
//!
//! Projected model counting for quantitative locking-security scores.
//!
//! Campaign verdicts say *whether* an attack wins; this crate says *how
//! much* a locker corrupts. Three counts per locked design, each a
//! projected model count over the attack-surface Boolean spaces:
//!
//! * **wrong-key error rate** — `|{x : view(x, k̂) ≠ oracle(x)}| / 2^n`
//!   for one sampled key `k̂`: the fraction of the input space a wrong key
//!   corrupts (TriLock's "corruptibility" axis).
//! * **DIP-space size** — `|{x : ∃ k₁, k₂ : view(x, k₁) ≠ view(x, k₂)}|`:
//!   how many distinguishing input patterns exist at all. Zero means the
//!   SAT attack's first miter call is UNSAT — the paper's GK headline.
//! * **wrong-key count / key equivalence classes** —
//!   `|{k : ∃ x : view(x, k) ≠ oracle(x)}|` and the number of distinct
//!   key-induced functions: the quantities the one-key-premise critique
//!   needs to even be stated.
//!
//! Two engines compute them, and the crate is test-led around their
//! agreement:
//!
//! * [`exhaustive`] — a packed 64-lane brute-force sweep, exact up to
//!   ~20 data+key bits. Built first; it is the oracle every estimator
//!   path is validated against.
//! * [`estimator`] — an ApproxMC-style hash count: random XOR parity
//!   constraints ([`xor`]) layered onto a miter CNF, activated per round
//!   through assumption literals so **one** incremental solver serves the
//!   whole binary search, with a `(1+ε)`-multiplicative, `1−δ`-confidence
//!   guarantee.
//!
//! [`scores::corruption_scores`] dispatches between them (both run below
//! the exact cutoff, so every estimate is cross-checked for free), builds
//! the miters through the same [`glitchlock_sat::EncoderKind`] machinery
//! as the SAT attack, and prunes with the dataflow refined key-taint
//! bitsets: untainted view outputs leave the DIP miter, untainted key
//! bits leave the wrong-key projection with an exact `2^dead` multiplier.
//!
//! Determinism contract: every random draw (sampled key, XOR rows) comes
//! from a [`rand::rngs::StdRng`] seeded by the caller — campaign runs key
//! it on the spec fingerprint — and hash rows are drawn over projection
//! *positions*, never solver variable ids, so estimates are bit-identical
//! across worker counts, shards, resume, solver backends, and encoders.

#![deny(missing_docs)]

pub mod estimator;
pub mod exhaustive;
pub mod scores;
pub mod view;
pub mod xor;

pub use estimator::{approx_count, ApproxCount, CountParams};
pub use exhaustive::{exact_scores, ExactScores};
pub use scores::{corruption_scores, CorruptionScores, Score, ScoreConfig, ScoreMethod};
pub use view::KeyedView;
pub use xor::{draw_rows, encode_row_into, ParityRow};
