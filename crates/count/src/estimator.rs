//! The ApproxMC-style hash-count loop over one incremental solver.
//!
//! To estimate the number of projected solutions of a formula, each round
//! draws a full stack of random XOR parity rows ([`crate::xor`]), encodes
//! them once with fresh selector variables, and binary-searches the
//! smallest activated prefix `m` whose residual cell holds at most
//! `pivot` solutions — activation is pure assumption literals, so **one**
//! solver instance carries every search step and every round. The round
//! estimate is `cells × 2^m`; the median of `t` rounds is within a factor
//! `1+ε` of the true count with probability at least `1−δ`
//! (Chakraborty, Meel, Vardi).
//!
//! Cells are enumerated by projected blocking clauses under a per-round
//! guard variable, retired with one unit clause after the round, so
//! blocked cells never leak between rounds.
//!
//! When the whole projected space already fits under the pivot the count
//! is **exact** and reported as such — the `m = 0` shortcut that also
//! serves the boundary cases (0 solutions, single solution).

use crate::xor::{draw_rows, encode_row_into};
use glitchlock_obs::{self as obs, names};
use glitchlock_sat::{CnfSink, IncrementalSolver, Lit, SatResult, Var};
use rand::rngs::StdRng;

/// The `(ε, δ)` knobs of one approximate count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CountParams {
    /// Multiplicative tolerance: the estimate lands in
    /// `[C/(1+ε), C·(1+ε)]`.
    pub epsilon: f64,
    /// Failure probability: the envelope holds with probability `≥ 1−δ`.
    pub delta: f64,
}

impl CountParams {
    /// Validates and builds the parameter pair.
    ///
    /// # Errors
    ///
    /// `epsilon` must be positive and `delta` in `(0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<CountParams, String> {
        if epsilon.is_nan() || epsilon <= 0.0 {
            return Err(format!("epsilon must be positive, got {epsilon}"));
        }
        if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
            return Err(format!("delta must be in (0, 1), got {delta}"));
        }
        Ok(CountParams { epsilon, delta })
    }

    /// Per-round cell-size threshold `⌈4.94 · (1 + 1/ε)²⌉`.
    pub fn pivot(&self) -> u64 {
        (4.94 * (1.0 + 1.0 / self.epsilon).powi(2)).ceil() as u64
    }

    /// Round count for median amplification: each round lands inside the
    /// ε-envelope with probability ≥ 0.78 at this pivot, so a Chernoff
    /// bound on the median gives `t = ⌈ln(1/δ) / (2 · 0.28²)⌉`, bumped to
    /// odd so the median is a single round's value.
    pub fn iterations(&self) -> usize {
        let t = ((1.0 / self.delta).ln() / (2.0 * 0.28 * 0.28)).ceil() as usize;
        let t = t.max(1);
        t + t.is_multiple_of(2) as usize
    }
}

impl Default for CountParams {
    fn default() -> Self {
        CountParams {
            epsilon: 0.8,
            delta: 0.2,
        }
    }
}

/// One approximate (or exact, when small enough) projected count.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxCount {
    /// The count estimate (equal to `exact` when that is set).
    pub estimate: f64,
    /// Exact value when enumeration finished below the pivot.
    pub exact: Option<u64>,
    /// Solver invocations spent.
    pub solver_calls: u64,
    /// XOR parity rows drawn and encoded.
    pub xor_rows: u64,
}

/// Enumerates projected solutions under `assumptions`, stopping once the
/// count exceeds `limit` (returns `limit + 1` to mean "more"). Blocking
/// clauses ride a fresh guard variable retired on exit.
fn enumerate_cells<S: IncrementalSolver>(
    solver: &mut S,
    assumptions: &[Lit],
    projection: &[Var],
    limit: u64,
    solver_calls: &mut u64,
) -> u64 {
    let guard = solver.new_var();
    let mut assum = assumptions.to_vec();
    assum.push(Lit::pos(guard));
    let mut count = 0u64;
    loop {
        *solver_calls += 1;
        match solver.solve_with(&assum) {
            SatResult::Unsat => break,
            SatResult::Sat => {
                count += 1;
                if count > limit {
                    break;
                }
                // Block this projected cell: a solver may leave a variable
                // unassigned when no clause touches it; read it as 0, and
                // the blocking clause then constrains it for later cells.
                let mut clause = vec![Lit::neg(guard)];
                clause.extend(
                    projection
                        .iter()
                        .map(|&v| Lit::with_sign(v, solver.value(v).unwrap_or(false))),
                );
                solver.add_clause(&clause);
            }
        }
    }
    solver.add_clause(&[Lit::neg(guard)]);
    count
}

/// Estimates the number of assignments to `projection` extendable to a
/// model of the solver's formula under `base` assumptions.
///
/// All randomness comes from `rng`; identical seeds give identical
/// estimates regardless of solver backend or CNF encoder, because rows
/// are drawn over projection positions and cell counts are exact
/// enumerations.
pub fn approx_count<S: IncrementalSolver + CnfSink>(
    solver: &mut S,
    base: &[Lit],
    projection: &[Var],
    params: &CountParams,
    rng: &mut StdRng,
) -> ApproxCount {
    let pivot = params.pivot();
    let mut solver_calls = 0u64;
    let mut xor_rows = 0u64;

    // m = 0 shortcut: if the whole projected space fits under the pivot
    // the enumeration *is* the count.
    let whole = enumerate_cells(solver, base, projection, pivot, &mut solver_calls);
    if whole <= pivot {
        obs::add(names::COUNT_SOLVER_CALLS, solver_calls);
        return ApproxCount {
            estimate: whole as f64,
            exact: Some(whole),
            solver_calls,
            xor_rows,
        };
    }

    let n = projection.len();
    let t = params.iterations();
    let mut estimates: Vec<f64> = Vec::with_capacity(t);
    for _ in 0..t {
        // One full row stack per round; prefixes share rows so the cell
        // count is monotone non-increasing in m and binary search applies.
        let rows = draw_rows(n, n, rng);
        let sels: Vec<Var> = rows
            .iter()
            .map(|row| {
                let s = solver.new_var();
                encode_row_into(solver, projection, row, Some(s));
                s
            })
            .collect();
        xor_rows += n as u64;

        let mut lo = 1usize;
        let mut hi = n;
        let mut found: Option<(usize, u64)> = None;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let mut assum = base.to_vec();
            assum.extend(sels[..mid].iter().map(|&s| Lit::pos(s)));
            let cells = enumerate_cells(solver, &assum, projection, pivot, &mut solver_calls);
            if cells <= pivot {
                found = Some((mid, cells));
                if mid == 1 {
                    break;
                }
                hi = mid - 1;
            } else {
                lo = mid + 1;
            }
        }
        match found {
            // An empty cell at the crossover is a failed round (ApproxMC
            // reports no estimate); skip it rather than log a zero.
            Some((_, 0)) | None => {}
            Some((m, cells)) => estimates.push(cells as f64 * (2f64).powi(m as i32)),
        }
    }

    obs::add(names::COUNT_SOLVER_CALLS, solver_calls);
    obs::add(names::COUNT_XOR_ROWS, xor_rows);

    // Median of the successful rounds; if every round failed (vanishingly
    // unlikely), fall back to the only bound we hold: more than pivot.
    let estimate = if estimates.is_empty() {
        (pivot + 1) as f64
    } else {
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
        estimates[estimates.len() / 2]
    };
    ApproxCount {
        estimate,
        exact: None,
        solver_calls,
        xor_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_sat::{Solver, SolverBackend};
    use rand::SeedableRng;

    fn free_vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        // Touch each variable with a tautological pair so the solver
        // assigns them (a var in no clause may stay unassigned).
        (0..n)
            .map(|_| {
                let v = solver.new_var();
                solver.add_clause(&[Lit::pos(v), Lit::neg(v)]);
                v
            })
            .collect()
    }

    #[test]
    fn small_spaces_come_back_exact() {
        let mut solver = Solver::new();
        let vars = free_vars(&mut solver, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let got = approx_count(&mut solver, &[], &vars, &CountParams::default(), &mut rng);
        assert_eq!(got.exact, Some(16));
        assert_eq!(got.estimate, 16.0);
        assert_eq!(got.xor_rows, 0, "the m = 0 shortcut draws no rows");
    }

    #[test]
    fn unsatisfiable_formulas_count_zero() {
        let mut solver = Solver::new();
        let vars = free_vars(&mut solver, 3);
        solver.add_clause(&[Lit::pos(vars[0])]);
        solver.add_clause(&[Lit::neg(vars[0])]);
        let mut rng = StdRng::seed_from_u64(1);
        let got = approx_count(&mut solver, &[], &vars, &CountParams::default(), &mut rng);
        assert_eq!(got.exact, Some(0));
    }

    #[test]
    fn single_solution_counts_one() {
        let mut solver = Solver::new();
        let vars = free_vars(&mut solver, 5);
        for &v in &vars {
            solver.add_clause(&[Lit::pos(v)]);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let got = approx_count(&mut solver, &[], &vars, &CountParams::default(), &mut rng);
        assert_eq!(got.exact, Some(1));
    }

    #[test]
    fn projection_hides_auxiliary_variables() {
        // y = x0 AND x1 with clause [y]: projected over {x0, x1} exactly
        // one cell survives.
        let mut solver = Solver::new();
        let vars = free_vars(&mut solver, 2);
        let y = solver.new_var();
        solver.add_clause(&[Lit::neg(y), Lit::pos(vars[0])]);
        solver.add_clause(&[Lit::neg(y), Lit::pos(vars[1])]);
        solver.add_clause(&[Lit::pos(y), Lit::neg(vars[0]), Lit::neg(vars[1])]);
        solver.add_clause(&[Lit::pos(y)]);
        let mut rng = StdRng::seed_from_u64(1);
        let got = approx_count(&mut solver, &[], &vars, &CountParams::default(), &mut rng);
        assert_eq!(got.exact, Some(1));
    }

    #[test]
    fn base_assumptions_scope_the_count() {
        let mut solver = Solver::new();
        let vars = free_vars(&mut solver, 4);
        let gate = solver.new_var();
        // Under the gate, x0 must be 1: half the space.
        solver.add_clause(&[Lit::neg(gate), Lit::pos(vars[0])]);
        let mut rng = StdRng::seed_from_u64(1);
        let gated = approx_count(
            &mut solver,
            &[Lit::pos(gate)],
            &vars,
            &CountParams::default(),
            &mut rng,
        );
        assert_eq!(gated.exact, Some(8));
        // Without the assumption the constraint is inert.
        let free = approx_count(&mut solver, &[], &vars, &CountParams::default(), &mut rng);
        assert_eq!(free.exact, Some(16));
    }

    /// The hash path (space larger than the pivot) against the known
    /// count, over pinned seeds with the (ε, δ) envelope.
    #[test]
    fn hash_path_lands_in_the_envelope() {
        let params = CountParams::default();
        let pivot = params.pivot();
        let true_count = 512f64; // 10 free vars, one pinned
        assert!(true_count > pivot as f64, "must exercise the hash path");
        let lo = true_count / (1.0 + params.epsilon);
        let hi = true_count * (1.0 + params.epsilon);
        let seeds: Vec<u64> = (0..20).collect();
        let budget = (params.delta * seeds.len() as f64).ceil() as usize + 2;
        let mut misses = 0;
        for &seed in &seeds {
            let mut solver = Solver::new();
            let vars = free_vars(&mut solver, 10);
            solver.add_clause(&[Lit::pos(vars[0])]);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = approx_count(&mut solver, &[], &vars, &params, &mut rng);
            assert!(got.exact.is_none(), "hash path must not be exact");
            assert!(got.xor_rows > 0);
            if got.estimate < lo || got.estimate > hi {
                misses += 1;
            }
        }
        assert!(
            misses <= budget,
            "{misses} envelope misses over {} seeds (budget {budget})",
            seeds.len()
        );
    }

    #[test]
    fn estimates_are_deterministic_and_backend_independent() {
        let build = |backend: SolverBackend| {
            let mut solver = Solver::with_backend(backend);
            let vars = free_vars(&mut solver, 9);
            solver.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
            let mut rng = StdRng::seed_from_u64(5);
            approx_count(&mut solver, &[], &vars, &CountParams::default(), &mut rng).estimate
        };
        let legacy = build(SolverBackend::Legacy);
        let modern = build(SolverBackend::Modern);
        assert_eq!(legacy, modern);
        assert_eq!(modern, build(SolverBackend::Modern));
    }

    #[test]
    fn params_validate_and_derive() {
        assert!(CountParams::new(0.0, 0.2).is_err());
        assert!(CountParams::new(0.8, 0.0).is_err());
        assert!(CountParams::new(0.8, 1.0).is_err());
        let p = CountParams::new(0.8, 0.2).unwrap();
        assert_eq!(p.pivot(), 26);
        assert_eq!(p.iterations() % 2, 1);
        assert!(p.iterations() >= 9);
        // Tighter δ needs more rounds.
        let tight = CountParams::new(0.8, 0.01).unwrap();
        assert!(tight.iterations() > p.iterations());
    }
}
