//! Data/key splitting of a locked netlist's combinational view.
//!
//! Both counting engines and all three score miters need the same
//! alignment the SAT attack's `MiterSession` uses: the view's inputs
//! (primary inputs, then flip-flop Qs) are classified by membership in
//! the key-input list, and the data positions line up positionally with
//! the oracle's own combinational view.

use glitchlock_netlist::{CombView, Logic, NetId, Netlist};

/// A locked netlist's combinational view with its inputs split into data
/// and key positions.
#[derive(Debug)]
pub struct KeyedView<'a> {
    /// The locked netlist the view was built from.
    pub netlist: &'a Netlist,
    /// Its combinational view (PIs + FF Qs in, POs + FF Ds out).
    pub view: CombView,
    /// View-input positions carrying data bits, in view order.
    pub data_ix: Vec<usize>,
    /// View-input positions carrying key bits, in view order. Key bit `i`
    /// throughout this crate means position `key_ix[i]`.
    pub key_ix: Vec<usize>,
}

impl<'a> KeyedView<'a> {
    /// Splits `netlist`'s combinational view by membership in
    /// `key_inputs`.
    pub fn new(netlist: &'a Netlist, key_inputs: &[NetId]) -> Self {
        let view = CombView::new(netlist);
        let mut data_ix = Vec::new();
        let mut key_ix = Vec::new();
        for (i, net) in view.input_nets().iter().enumerate() {
            if key_inputs.contains(net) {
                key_ix.push(i);
            } else {
                data_ix.push(i);
            }
        }
        KeyedView {
            netlist,
            view,
            data_ix,
            key_ix,
        }
    }

    /// Number of data bits (the `n` in `2^n` input-space counts).
    pub fn data_bits(&self) -> usize {
        self.data_ix.len()
    }

    /// Number of key bits (the `κ` in `2^κ` key-space counts).
    pub fn key_bits(&self) -> usize {
        self.key_ix.len()
    }

    /// Key input nets in view order — the order key-bit indices use, and
    /// the order the taint engine must be given so bit `i` lines up.
    pub fn key_nets(&self) -> Vec<NetId> {
        self.key_ix
            .iter()
            .map(|&i| self.view.input_nets()[i])
            .collect()
    }

    /// Assembles one full view-input pattern: bit `j` of `data` drives
    /// data position `j`, `key[i]` drives key position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != self.key_bits()`.
    pub fn pattern(&self, data: u64, key: &[bool]) -> Vec<Logic> {
        assert_eq!(key.len(), self.key_bits(), "key width");
        let mut row = vec![Logic::Zero; self.view.num_inputs()];
        for (j, &pos) in self.data_ix.iter().enumerate() {
            row[pos] = Logic::from_bool(data >> j & 1 == 1);
        }
        for (i, &pos) in self.key_ix.iter().enumerate() {
            row[pos] = Logic::from_bool(key[i]);
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    fn xor_locked() -> (Netlist, Vec<NetId>) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let k = nl.add_input("key0");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, k]).unwrap();
        nl.mark_output(y, "y");
        (nl, vec![k])
    }

    #[test]
    fn splits_positions_in_view_order() {
        let (nl, keys) = xor_locked();
        let kv = KeyedView::new(&nl, &keys);
        assert_eq!(kv.data_bits(), 2);
        assert_eq!(kv.key_bits(), 1);
        assert_eq!(kv.data_ix, vec![0, 2]);
        assert_eq!(kv.key_ix, vec![1]);
        assert_eq!(kv.key_nets(), keys);
    }

    #[test]
    fn pattern_places_bits_at_their_positions() {
        let (nl, keys) = xor_locked();
        let kv = KeyedView::new(&nl, &keys);
        // data bit 0 -> position 0 (a), data bit 1 -> position 2 (b).
        let row = kv.pattern(0b01, &[true]);
        assert_eq!(row, vec![Logic::One, Logic::One, Logic::Zero]);
        let row = kv.pattern(0b10, &[false]);
        assert_eq!(row, vec![Logic::Zero, Logic::Zero, Logic::One]);
    }
}
