//! Length-prefixed framing for the wire protocol.
//!
//! Every message is `[u32 big-endian payload length][payload bytes]`; the
//! payload is one canonical-JSON document. The length header makes torn
//! input detectable: a reader either gets a whole frame, a clean EOF on
//! the frame boundary ([`FrameError::Closed`]), or a typed error naming
//! what went wrong. Oversized lengths are refused **before** allocating,
//! so a hostile or desynchronized peer cannot balloon server memory.

use std::io::{Read, Write};

/// Default cap on a single frame's payload (16 MiB) — far above any
/// legitimate request, far below an allocation attack.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly on a frame boundary.
    Closed,
    /// The stream ended mid-frame: `got` of `want` bytes arrived.
    Torn {
        /// Bytes actually read.
        got: usize,
        /// Bytes the header (or the length prefix itself) promised.
        want: usize,
    },
    /// The header declared a payload larger than the reader's cap.
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The reader's cap.
        max: usize,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn { got, want } => {
                write!(f, "torn frame: got {got} of {want} bytes")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

/// Writes one frame: length header, then the payload.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the payload exceeds `u32`, otherwise
/// I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes()).map_err(FrameError::Io)?;
    w.write_all(payload).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Reads one frame's payload, enforcing `max_frame`.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF before any header byte;
/// [`FrameError::Torn`] when the stream ends inside the header or
/// payload; [`FrameError::TooLarge`] on an oversized declared length
/// (nothing is read past the header in that case — the stream is
/// desynchronized and should be dropped); I/O errors otherwise.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Torn {
                    got: filled,
                    want: header.len(),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Torn {
                    got: filled,
                    want: len,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"{\"id\":1}", &[0xffu8; 5000]] {
            let mut buf = Vec::new();
            write_frame(&mut buf, payload).unwrap();
            assert_eq!(buf.len(), 4 + payload.len());
            let back = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn clean_eof_is_closed_and_partial_is_torn() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut Cursor::new(empty), 64),
            Err(FrameError::Closed)
        ));
        // Torn header.
        assert!(matches!(
            read_frame(&mut Cursor::new(&[0u8, 0][..]), 64),
            Err(FrameError::Torn { got: 2, want: 4 })
        ));
        // Torn payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 64),
            Err(FrameError::Torn { got: 7, want: 11 })
        ));
    }

    #[test]
    fn oversized_header_is_refused_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let err = read_frame(&mut Cursor::new(&buf), 1024);
        assert!(matches!(err, Err(FrameError::TooLarge { max: 1024, .. })));
    }
}
