//! The request/response vocabulary and its JSON encoding.
//!
//! Every message is one canonical-JSON object carried in one frame. A
//! request is `{"id": N, "op": "...", ...}`; the response echoes the id:
//! `{"id": N, "reply": "...", ...}`. Ids are chosen by the client and only
//! need to be unique among its own in-flight requests — the server may
//! answer out of order (oracle batches and jobs retire when they retire),
//! so the id is how a pipelined client reunites answers with questions.
//!
//! Oracle patterns and outputs travel as bit-strings (`"0101"`, one char
//! per input, index 0 first) — compact, unambiguous, and immune to JSON's
//! number semantics. Every type here round-trips `to_json` ↔ `from_json`
//! exactly; the property tests in the workspace test tree lean on that.

use glitchlock_jobs::JobRecord;
use glitchlock_obs::json::Value;
use std::collections::BTreeMap;

/// Why a request was refused. The code is machine-readable; the message
/// beside it is for humans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was unreadable (torn mid-frame).
    BadFrame,
    /// The length header exceeded the server's frame cap.
    FrameTooLarge,
    /// The payload was not valid JSON.
    BadJson,
    /// The JSON was well-formed but not a valid request.
    BadRequest,
    /// The named design is not loaded on this connection's server.
    UnknownDesign,
    /// A pattern's width does not match the design's input count.
    WidthMismatch,
    /// The request was cancelled (server shutting down).
    Cancelled,
    /// A lock/attack job hit the server's hard-kill timeout.
    JobTimeout,
    /// A debug-only op (`sleep`) on a server without `--allow-debug`.
    DebugDisabled,
    /// An internal failure (journal I/O, poisoned state, ...).
    ServerError,
}

impl ErrorCode {
    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownDesign => "unknown-design",
            ErrorCode::WidthMismatch => "width-mismatch",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::JobTimeout => "job-timeout",
            ErrorCode::DebugDisabled => "debug-disabled",
            ErrorCode::ServerError => "server-error",
        }
    }

    /// Parses a wire tag.
    pub fn parse(tag: &str) -> Option<ErrorCode> {
        Some(match tag {
            "bad-frame" => ErrorCode::BadFrame,
            "frame-too-large" => ErrorCode::FrameTooLarge,
            "bad-json" => ErrorCode::BadJson,
            "bad-request" => ErrorCode::BadRequest,
            "unknown-design" => ErrorCode::UnknownDesign,
            "width-mismatch" => ErrorCode::WidthMismatch,
            "cancelled" => ErrorCode::Cancelled,
            "job-timeout" => ErrorCode::JobTimeout,
            "debug-disabled" => ErrorCode::DebugDisabled,
            "server-error" => ErrorCode::ServerError,
            _ => return None,
        })
    }
}

/// One attack-job request: a campaign cell plus its tuning, all explicit
/// so the job is a pure function of the request.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackJob {
    /// Benchmark name (`s27`, `c17`, or a generator profile).
    pub bench: String,
    /// Locker tag (`xor`, `mux`, `sarlock`, `antisat`, `tdk`, `gk`).
    pub locker: String,
    /// Key width (GK count for `gk`).
    pub width: usize,
    /// Attack tag (`sat`, `appsat`, `seqsat`, `removal`, `enhanced`, `scan`).
    pub attack: String,
    /// Job seed.
    pub seed: u64,
    /// Iteration cap for the iterative attacks.
    pub max_iters: usize,
    /// Sample count for skew scans and verification probes.
    pub samples: usize,
    /// CDCL backend (`legacy` | `modern`); `None` = server default.
    pub solver: Option<String>,
    /// CNF encoder (`flat` | `aig`); `None` = server default.
    pub encoder: Option<String>,
}

/// A request's operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Load a built-in benchmark / generator profile under its own name.
    LoadBench {
        /// Benchmark name.
        name: String,
    },
    /// Load `.bench` text under a caller-chosen design name.
    LoadNetlist {
        /// Design name to register.
        name: String,
        /// `.bench` source text.
        bench: String,
    },
    /// One oracle query against a loaded design.
    Oracle {
        /// Loaded design name.
        design: String,
        /// Input bit-string, one char per input.
        pattern: String,
    },
    /// A batch of oracle queries, answered in pattern order.
    OracleBulk {
        /// Loaded design name.
        design: String,
        /// Input bit-strings.
        patterns: Vec<String>,
    },
    /// Server-side pattern sweep: the server generates `count` seeded
    /// pseudorandom patterns, evaluates them, and answers with a digest
    /// of all response rows — a load/determinism probe whose socket
    /// traffic is O(1) regardless of `count`.
    OracleSweep {
        /// Loaded design name.
        design: String,
        /// Patterns to generate and evaluate.
        count: u64,
        /// Sweep PRNG seed.
        seed: u64,
    },
    /// Run one lock+attack job.
    Attack(AttackJob),
    /// Run a campaign spec (optionally one shard of it) and stream back
    /// the retired records.
    Campaign {
        /// Spec text (the `glk campaign` format).
        spec: String,
        /// Optional `(index, count)` shard selector.
        shard: Option<(usize, usize)>,
    },
    /// Snapshot the server's deterministic metrics.
    Metrics,
    /// Debug-only: hold this request's handler for `ms` milliseconds.
    /// Exists to exercise the hard-kill timeout path; refused unless the
    /// server was started with debug ops enabled.
    Sleep {
        /// Milliseconds to hold.
        ms: u64,
    },
    /// Ask the server to stop accepting and drain.
    Shutdown,
}

/// A framed request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

/// A response body.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// `Ping` answer.
    Pong,
    /// A design is loaded and ready for queries.
    Loaded {
        /// Registered design name.
        design: String,
        /// Oracle input width (primary + pseudo inputs).
        inputs: usize,
        /// Oracle output width (primary + pseudo outputs).
        outputs: usize,
    },
    /// Single oracle answer.
    Oracle {
        /// Output bit-string.
        output: String,
    },
    /// Bulk oracle answers, in pattern order.
    OracleBulk {
        /// Output bit-strings.
        outputs: Vec<String>,
    },
    /// Sweep digest.
    Sweep {
        /// Patterns evaluated.
        count: u64,
        /// FNV-1a digest (16 hex chars) over all output rows in order.
        digest: String,
    },
    /// Attack-job record.
    Attack {
        /// The retired record (wall-clock zeroed: responses are
        /// deterministic in the request).
        record: JobRecord,
    },
    /// Campaign records in spec-expansion order.
    Campaign {
        /// The spec's canonical fingerprint.
        spec_hash: String,
        /// Retired records (shard-filtered when a shard was requested).
        records: Vec<JobRecord>,
    },
    /// Deterministic metrics snapshot.
    Metrics {
        /// Counter/gauge values (throughput gauges and histograms excluded).
        metrics: BTreeMap<String, f64>,
    },
    /// The connection's in-flight window (or the server's job slots) is
    /// full; retry after draining an outstanding response.
    Busy {
        /// Which limit was hit.
        reason: String,
    },
    /// `Sleep` answer.
    Slept,
    /// `Shutdown` acknowledged; the server will close listeners and drain.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A framed response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// The body.
    pub reply: Reply,
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn num_v(n: u64) -> Value {
    Value::Num(n as f64)
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key).and_then(Value::as_num) {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        Some(_) => Err(format!("`{key}` is not a non-negative integer")),
        None => Err(format!("missing number `{key}`")),
    }
}

fn get_str_list(v: &Value, key: &str) -> Result<Vec<String>, String> {
    let Some(Value::Arr(items)) = v.get(key) else {
        return Err(format!("missing array `{key}`"));
    };
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` holds a non-string"))
        })
        .collect()
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("`{key}` is not a string")),
    }
}

impl Request {
    /// Renders the request as canonical JSON.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(&str, Value)> = vec![("id", num_v(self.id))];
        match &self.op {
            Op::Ping => pairs.push(("op", str_v("ping"))),
            Op::LoadBench { name } => {
                pairs.push(("op", str_v("load-bench")));
                pairs.push(("name", str_v(name)));
            }
            Op::LoadNetlist { name, bench } => {
                pairs.push(("op", str_v("load-netlist")));
                pairs.push(("name", str_v(name)));
                pairs.push(("bench", str_v(bench)));
            }
            Op::Oracle { design, pattern } => {
                pairs.push(("op", str_v("oracle")));
                pairs.push(("design", str_v(design)));
                pairs.push(("pattern", str_v(pattern)));
            }
            Op::OracleBulk { design, patterns } => {
                pairs.push(("op", str_v("oracle-bulk")));
                pairs.push(("design", str_v(design)));
                pairs.push((
                    "patterns",
                    Value::Arr(patterns.iter().map(|p| str_v(p)).collect()),
                ));
            }
            Op::OracleSweep {
                design,
                count,
                seed,
            } => {
                pairs.push(("op", str_v("oracle-sweep")));
                pairs.push(("design", str_v(design)));
                pairs.push(("count", num_v(*count)));
                pairs.push(("seed", num_v(*seed)));
            }
            Op::Attack(job) => {
                pairs.push(("op", str_v("attack")));
                pairs.push(("bench", str_v(&job.bench)));
                pairs.push(("locker", str_v(&job.locker)));
                pairs.push(("width", num_v(job.width as u64)));
                pairs.push(("attack", str_v(&job.attack)));
                pairs.push(("seed", num_v(job.seed)));
                pairs.push(("max_iters", num_v(job.max_iters as u64)));
                pairs.push(("samples", num_v(job.samples as u64)));
                if let Some(solver) = &job.solver {
                    pairs.push(("solver", str_v(solver)));
                }
                if let Some(encoder) = &job.encoder {
                    pairs.push(("encoder", str_v(encoder)));
                }
            }
            Op::Campaign { spec, shard } => {
                pairs.push(("op", str_v("campaign")));
                pairs.push(("spec", str_v(spec)));
                if let Some((index, count)) = shard {
                    pairs.push(("shard", str_v(&format!("{index}/{count}"))));
                }
            }
            Op::Metrics => pairs.push(("op", str_v("metrics"))),
            Op::Sleep { ms } => {
                pairs.push(("op", str_v("sleep")));
                pairs.push(("ms", num_v(*ms)));
            }
            Op::Shutdown => pairs.push(("op", str_v("shutdown"))),
        }
        obj(pairs)
    }

    /// Parses a request from JSON.
    ///
    /// # Errors
    ///
    /// Names the missing/mistyped field or the unknown op.
    pub fn from_json(v: &Value) -> Result<Request, String> {
        let id = get_u64(v, "id")?;
        let op_tag = get_str(v, "op")?;
        let op = match op_tag.as_str() {
            "ping" => Op::Ping,
            "load-bench" => Op::LoadBench {
                name: get_str(v, "name")?,
            },
            "load-netlist" => Op::LoadNetlist {
                name: get_str(v, "name")?,
                bench: get_str(v, "bench")?,
            },
            "oracle" => Op::Oracle {
                design: get_str(v, "design")?,
                pattern: get_str(v, "pattern")?,
            },
            "oracle-bulk" => Op::OracleBulk {
                design: get_str(v, "design")?,
                patterns: get_str_list(v, "patterns")?,
            },
            "oracle-sweep" => Op::OracleSweep {
                design: get_str(v, "design")?,
                count: get_u64(v, "count")?,
                seed: get_u64(v, "seed")?,
            },
            "attack" => Op::Attack(AttackJob {
                bench: get_str(v, "bench")?,
                locker: get_str(v, "locker")?,
                width: get_u64(v, "width")? as usize,
                attack: get_str(v, "attack")?,
                seed: get_u64(v, "seed")?,
                max_iters: get_u64(v, "max_iters")? as usize,
                samples: get_u64(v, "samples")? as usize,
                solver: opt_str(v, "solver")?,
                encoder: opt_str(v, "encoder")?,
            }),
            "campaign" => Op::Campaign {
                spec: get_str(v, "spec")?,
                shard: match opt_str(v, "shard")? {
                    Some(text) => Some(glitchlock_jobs::parse_shard(&text)?),
                    None => None,
                },
            },
            "metrics" => Op::Metrics,
            "sleep" => Op::Sleep {
                ms: get_u64(v, "ms")?,
            },
            "shutdown" => Op::Shutdown,
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok(Request { id, op })
    }

    /// Serializes to the framed wire payload.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }

    /// Deserializes from a framed wire payload.
    ///
    /// # Errors
    ///
    /// Invalid UTF-8, invalid JSON, or an invalid request shape.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("payload utf-8: {e}"))?;
        let v = glitchlock_obs::json::parse(text)?;
        Request::from_json(&v)
    }
}

impl Response {
    /// Renders the response as canonical JSON.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(&str, Value)> = vec![("id", num_v(self.id))];
        match &self.reply {
            Reply::Pong => pairs.push(("reply", str_v("pong"))),
            Reply::Loaded {
                design,
                inputs,
                outputs,
            } => {
                pairs.push(("reply", str_v("loaded")));
                pairs.push(("design", str_v(design)));
                pairs.push(("inputs", num_v(*inputs as u64)));
                pairs.push(("outputs", num_v(*outputs as u64)));
            }
            Reply::Oracle { output } => {
                pairs.push(("reply", str_v("oracle")));
                pairs.push(("output", str_v(output)));
            }
            Reply::OracleBulk { outputs } => {
                pairs.push(("reply", str_v("oracle-bulk")));
                pairs.push((
                    "outputs",
                    Value::Arr(outputs.iter().map(|o| str_v(o)).collect()),
                ));
            }
            Reply::Sweep { count, digest } => {
                pairs.push(("reply", str_v("sweep")));
                pairs.push(("count", num_v(*count)));
                pairs.push(("digest", str_v(digest)));
            }
            Reply::Attack { record } => {
                pairs.push(("reply", str_v("attack")));
                pairs.push(("record", record.to_json()));
            }
            Reply::Campaign { spec_hash, records } => {
                pairs.push(("reply", str_v("campaign")));
                pairs.push(("spec_hash", str_v(spec_hash)));
                pairs.push((
                    "records",
                    Value::Arr(records.iter().map(JobRecord::to_json).collect()),
                ));
            }
            Reply::Metrics { metrics } => {
                pairs.push(("reply", str_v("metrics")));
                pairs.push((
                    "metrics",
                    Value::Obj(
                        metrics
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Num(*v)))
                            .collect(),
                    ),
                ));
            }
            Reply::Busy { reason } => {
                pairs.push(("reply", str_v("busy")));
                pairs.push(("reason", str_v(reason)));
            }
            Reply::Slept => pairs.push(("reply", str_v("slept"))),
            Reply::ShuttingDown => pairs.push(("reply", str_v("shutting-down"))),
            Reply::Error { code, message } => {
                pairs.push(("reply", str_v("error")));
                pairs.push(("code", str_v(code.tag())));
                pairs.push(("message", str_v(message)));
            }
        }
        obj(pairs)
    }

    /// Parses a response from JSON.
    ///
    /// # Errors
    ///
    /// Names the missing/mistyped field or the unknown reply tag.
    pub fn from_json(v: &Value) -> Result<Response, String> {
        let id = get_u64(v, "id")?;
        let tag = get_str(v, "reply")?;
        let reply = match tag.as_str() {
            "pong" => Reply::Pong,
            "loaded" => Reply::Loaded {
                design: get_str(v, "design")?,
                inputs: get_u64(v, "inputs")? as usize,
                outputs: get_u64(v, "outputs")? as usize,
            },
            "oracle" => Reply::Oracle {
                output: get_str(v, "output")?,
            },
            "oracle-bulk" => Reply::OracleBulk {
                outputs: get_str_list(v, "outputs")?,
            },
            "sweep" => Reply::Sweep {
                count: get_u64(v, "count")?,
                digest: get_str(v, "digest")?,
            },
            "attack" => Reply::Attack {
                record: JobRecord::from_json(v.get("record").ok_or("missing object `record`")?)?,
            },
            "campaign" => {
                let Some(Value::Arr(items)) = v.get("records") else {
                    return Err("missing array `records`".to_string());
                };
                Reply::Campaign {
                    spec_hash: get_str(v, "spec_hash")?,
                    records: items
                        .iter()
                        .map(JobRecord::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                }
            }
            "metrics" => {
                let Some(Value::Obj(map)) = v.get("metrics") else {
                    return Err("missing object `metrics`".to_string());
                };
                let mut metrics = BTreeMap::new();
                for (k, mv) in map {
                    let n = mv
                        .as_num()
                        .ok_or_else(|| format!("metric `{k}` is not a number"))?;
                    metrics.insert(k.clone(), n);
                }
                Reply::Metrics { metrics }
            }
            "busy" => Reply::Busy {
                reason: get_str(v, "reason")?,
            },
            "slept" => Reply::Slept,
            "shutting-down" => Reply::ShuttingDown,
            "error" => {
                let code_tag = get_str(v, "code")?;
                Reply::Error {
                    code: ErrorCode::parse(&code_tag)
                        .ok_or_else(|| format!("unknown error code `{code_tag}`"))?,
                    message: get_str(v, "message")?,
                }
            }
            other => return Err(format!("unknown reply `{other}`")),
        };
        Ok(Response { id, reply })
    }

    /// Serializes to the framed wire payload.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }

    /// Deserializes from a framed wire payload.
    ///
    /// # Errors
    ///
    /// Invalid UTF-8, invalid JSON, or an invalid response shape.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("payload utf-8: {e}"))?;
        let v = glitchlock_obs::json::parse(text)?;
        Response::from_json(&v)
    }
}

/// Renders a bit row as the wire bit-string.
pub fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a wire bit-string.
///
/// # Errors
///
/// Rejects any character but `0`/`1`.
pub fn bits_from_string(text: &str) -> Result<Vec<bool>, String> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad bit `{other}` in pattern (want 0/1)")),
        })
        .collect()
}
