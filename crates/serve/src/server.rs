//! The TCP daemon: accept loop, per-connection handlers, job supervision.
//!
//! Threading model: one accept thread, one thread per connection, one
//! batch worker (see [`crate::batcher`]), and one short-lived supervisor
//! thread per heavy job (attack / campaign / debug sleep). Every thread
//! runs under the server's obs collector, so a private [`Collector`]
//! observes the whole server in tests while `glk serve` uses the global
//! one (and `--trace` sees everything).
//!
//! Responses may arrive out of request order: oracle answers fire from
//! the batch worker and job answers from their supervisors, each writing
//! the response frame under the connection's write lock with the
//! request's echoed id. Backpressure is explicit, never silent: a full
//! per-connection in-flight window or a full server job table answers
//! `busy` immediately, and the oracle queue cap does the same.
//!
//! Jobs are supervised exactly like the campaign pool supervises
//! attempts: the job runs on its own thread with a deadline
//! [`CancelToken`]; if it overruns the hard grace the supervisor abandons
//! the thread, answers `job-timeout`, and the server lives on.

use crate::batcher::{Batcher, BatcherConfig, LoadedDesign, Submit};
use crate::frame::{write_frame, DEFAULT_MAX_FRAME};
use crate::proto::{
    bits_from_string, bits_to_string, AttackJob, ErrorCode, Op, Reply, Request, Response,
};
use glitchlock_attacks::CancelToken;
use glitchlock_jobs::{
    deterministic_metrics, job, run_campaign, CampaignConfig, CampaignSpec, JobSpec, Tuning,
};
use glitchlock_obs::{self as obs, json, names, SharedCollector};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Extra wall-clock a job gets past its cooperative deadline before the
/// supervisor abandons the thread (mirrors the campaign pool).
const HARD_GRACE: Duration = Duration::from_millis(250);

/// How often blocked reads and the accept loop re-check the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Server tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (report via
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Per-frame payload cap.
    pub max_frame: usize,
    /// Per-connection cap on queued-but-unanswered async requests.
    pub max_inflight: usize,
    /// Server-wide cap on concurrently running heavy jobs.
    pub max_jobs: usize,
    /// Cooperative deadline per heavy job; the hard kill follows
    /// [`HARD_GRACE`] later.
    pub job_timeout: Duration,
    /// Oracle batcher tuning.
    pub batcher: BatcherConfig,
    /// Enable debug ops (`sleep`) — test harnesses only.
    pub allow_debug: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 64,
            max_jobs: 4,
            job_timeout: Duration::from_secs(60),
            batcher: BatcherConfig::default(),
            allow_debug: false,
        }
    }
}

struct Shared {
    config: ServerConfig,
    collector: SharedCollector,
    designs: Mutex<BTreeMap<String, Arc<LoadedDesign>>>,
    batcher: Batcher,
    stop: AtomicBool,
    jobs_running: AtomicUsize,
    next_client: AtomicU64,
}

/// A running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a stop; threads drain within a poll tick.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// True once a stop was requested (locally or via a `shutdown` op).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the accept loop exits (after [`ServerHandle::shutdown`]
    /// or a client `shutdown` op), then joins it.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Binds and starts a server; every server thread runs under `collector`.
///
/// # Errors
///
/// Bind failures.
pub fn start(config: ServerConfig, collector: SharedCollector) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let shared = Arc::new(Shared {
        batcher: Batcher::start(config.batcher, Arc::clone(&collector)),
        config,
        collector: Arc::clone(&collector),
        designs: Mutex::new(BTreeMap::new()),
        stop: AtomicBool::new(false),
        jobs_running: AtomicUsize::new(0),
        next_client: AtomicU64::new(1),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("glk-serve-accept".to_string())
        .spawn(move || obs::scoped(&collector, || accept_loop(&accept_shared, &listener)))
        .map_err(|e| format!("spawn accept thread: {e}"))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                obs::incr(names::SERVE_CONNECTIONS);
                let conn_shared = Arc::clone(shared);
                let conn_collector = Arc::clone(&shared.collector);
                let spawned = std::thread::Builder::new()
                    .name("glk-serve-conn".to_string())
                    .spawn(move || {
                        obs::scoped(&conn_collector, || handle_connection(&conn_shared, stream))
                    });
                if spawned.is_err() {
                    obs::incr(names::SERVE_ERRORS);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// The write half of a connection, shared with batcher callbacks and job
/// supervisors. `inflight` is the connection's async window.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    inflight: AtomicUsize,
}

impl ConnWriter {
    /// Serializes and frames one response under the write lock.
    fn send(&self, response: &Response) -> Result<(), ()> {
        let payload = response.encode();
        let mut stream = self.stream.lock().expect("connection write mutex");
        match write_frame(&mut *stream, &payload) {
            Ok(()) => {
                obs::incr(names::SERVE_RESPONSES);
                Ok(())
            }
            Err(_) => {
                obs::incr(names::SERVE_DISCONNECTS);
                Err(())
            }
        }
    }

    fn send_error(&self, id: u64, code: ErrorCode, message: String) {
        obs::incr(names::SERVE_ERRORS);
        let _ = self.send(&Response {
            id,
            reply: Reply::Error { code, message },
        });
    }
}

/// One blocking-with-timeout read step; distinguishes "no bytes yet"
/// (idle poll) from torn frames so shutdown stays responsive without
/// misreading slow frames as idleness.
enum Inbound {
    Frame(Vec<u8>),
    Idle,
    Closed,
    Torn { got: usize, want: usize },
    TooLarge { len: usize },
    Gone,
}

fn read_inbound(stream: &mut TcpStream, max_frame: usize, stop: &AtomicBool) -> Inbound {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match stream.read_fill(&mut header[filled..]) {
            Fill::Bytes(n) => filled += n,
            Fill::Eof if filled == 0 => return Inbound::Closed,
            Fill::Eof => {
                return Inbound::Torn {
                    got: filled,
                    want: header.len(),
                }
            }
            Fill::Timeout if filled == 0 => return Inbound::Idle,
            Fill::Timeout => {
                // Mid-header: keep waiting unless we are stopping.
                if stop.load(Ordering::SeqCst) {
                    return Inbound::Gone;
                }
            }
            Fill::Broken => return Inbound::Gone,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Inbound::TooLarge { len };
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read_fill(&mut payload[filled..]) {
            Fill::Bytes(n) => filled += n,
            Fill::Eof => {
                return Inbound::Torn {
                    got: filled,
                    want: len,
                }
            }
            Fill::Timeout => {
                if stop.load(Ordering::SeqCst) {
                    return Inbound::Gone;
                }
            }
            Fill::Broken => return Inbound::Gone,
        }
    }
    Inbound::Frame(payload)
}

enum Fill {
    Bytes(usize),
    Eof,
    Timeout,
    Broken,
}

trait ReadFill {
    fn read_fill(&mut self, buf: &mut [u8]) -> Fill;
}

impl ReadFill for TcpStream {
    fn read_fill(&mut self, buf: &mut [u8]) -> Fill {
        use std::io::Read as _;
        match self.read(buf) {
            Ok(0) => Fill::Eof,
            Ok(n) => Fill::Bytes(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Fill::Timeout
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Fill::Bytes(0),
            Err(_) => Fill::Broken,
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let client = shared.next_client.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            obs::incr(names::SERVE_ERRORS);
            return;
        }
    };
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
        inflight: AtomicUsize::new(0),
    });
    let mut reader = stream;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_inbound(&mut reader, shared.config.max_frame, &shared.stop) {
            Inbound::Idle => continue,
            Inbound::Closed => return,
            Inbound::Gone => {
                obs::incr(names::SERVE_DISCONNECTS);
                return;
            }
            Inbound::Torn { got, want } => {
                // The read half died mid-frame; the write half may still
                // be up (half-close), so name the failure before leaving.
                obs::incr(names::SERVE_DISCONNECTS);
                writer.send_error(
                    0,
                    ErrorCode::BadFrame,
                    format!("torn frame: got {got} of {want} bytes"),
                );
                return;
            }
            Inbound::TooLarge { len } => {
                // The stream is desynchronized past the header: answer,
                // then drop the connection rather than guess a boundary.
                writer.send_error(
                    0,
                    ErrorCode::FrameTooLarge,
                    format!(
                        "frame of {len} bytes exceeds the {}-byte cap",
                        shared.config.max_frame
                    ),
                );
                return;
            }
            Inbound::Frame(payload) => handle_payload(shared, client, &writer, &payload),
        }
    }
}

fn handle_payload(shared: &Arc<Shared>, client: u64, writer: &Arc<ConnWriter>, payload: &[u8]) {
    obs::incr(names::SERVE_REQUESTS);
    obs::incr(&names::serve_client_requests(client));
    let parsed = std::str::from_utf8(payload)
        .map_err(|e| (ErrorCode::BadJson, format!("payload utf-8: {e}")))
        .and_then(|text| {
            json::parse(text).map_err(|e| (ErrorCode::BadJson, format!("payload json: {e}")))
        });
    let value = match parsed {
        Ok(v) => v,
        Err((code, message)) => {
            obs::incr(&names::serve_req("invalid"));
            writer.send_error(0, code, message);
            return;
        }
    };
    // Salvage the id even from malformed requests so the client can match
    // the error to its question.
    let id = value
        .get("id")
        .and_then(json::Value::as_num)
        .map(|n| n as u64)
        .unwrap_or(0);
    let request = match Request::from_json(&value) {
        Ok(r) => r,
        Err(e) => {
            obs::incr(&names::serve_req("invalid"));
            writer.send_error(id, ErrorCode::BadRequest, e);
            return;
        }
    };
    obs::incr(&names::serve_req(op_tag(&request.op)));
    dispatch(shared, writer, request);
}

fn op_tag(op: &Op) -> &'static str {
    match op {
        Op::Ping => "ping",
        Op::LoadBench { .. } => "load-bench",
        Op::LoadNetlist { .. } => "load-netlist",
        Op::Oracle { .. } => "oracle",
        Op::OracleBulk { .. } => "oracle-bulk",
        Op::OracleSweep { .. } => "oracle-sweep",
        Op::Attack(_) => "attack",
        Op::Campaign { .. } => "campaign",
        Op::Metrics => "metrics",
        Op::Sleep { .. } => "sleep",
        Op::Shutdown => "shutdown",
    }
}

fn dispatch(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, request: Request) {
    let id = request.id;
    match request.op {
        Op::Ping => {
            let _ = writer.send(&Response {
                id,
                reply: Reply::Pong,
            });
        }
        Op::LoadBench { name } => match job::resolve_bench(&name) {
            Ok(netlist) => load_design(shared, writer, id, &name, netlist),
            Err(e) => writer.send_error(id, ErrorCode::BadRequest, e),
        },
        Op::LoadNetlist { name, bench } => {
            match glitchlock_netlist::bench_format::parse_named(&bench, &name) {
                Ok(netlist) => load_design(shared, writer, id, &name, netlist),
                Err(e) => writer.send_error(id, ErrorCode::BadRequest, e.to_string()),
            }
        }
        Op::Oracle { design, pattern } => {
            submit_oracle(shared, writer, id, &design, vec![pattern], true);
        }
        Op::OracleBulk { design, patterns } => {
            submit_oracle(shared, writer, id, &design, patterns, false);
        }
        Op::OracleSweep {
            design,
            count,
            seed,
        } => {
            let Some(design) = lookup(shared, writer, id, &design) else {
                return;
            };
            let digest = run_sweep(&design, count, seed);
            let _ = writer.send(&Response {
                id,
                reply: Reply::Sweep { count, digest },
            });
        }
        Op::Attack(attack) => spawn_job(shared, writer, id, JobBody::Attack(attack)),
        Op::Campaign { spec, shard } => {
            spawn_job(shared, writer, id, JobBody::Campaign { spec, shard })
        }
        Op::Metrics => {
            let snapshot = shared.collector.registry().snapshot();
            let _ = writer.send(&Response {
                id,
                reply: Reply::Metrics {
                    metrics: deterministic_metrics(&snapshot),
                },
            });
        }
        Op::Sleep { ms } => {
            if !shared.config.allow_debug {
                writer.send_error(
                    id,
                    ErrorCode::DebugDisabled,
                    "debug ops are disabled (start the server with debug enabled)".to_string(),
                );
                return;
            }
            spawn_job(shared, writer, id, JobBody::Sleep { ms });
        }
        Op::Shutdown => {
            let _ = writer.send(&Response {
                id,
                reply: Reply::ShuttingDown,
            });
            shared.stop.store(true, Ordering::SeqCst);
        }
    }
}

fn load_design(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    id: u64,
    name: &str,
    netlist: glitchlock_netlist::Netlist,
) {
    match LoadedDesign::new(name, netlist) {
        Ok(design) => {
            let (inputs, outputs) = (design.num_inputs(), design.num_outputs());
            let mut designs = shared.designs.lock().expect("designs mutex");
            designs.insert(name.to_string(), Arc::new(design));
            obs::gauge_set(names::SERVE_DESIGNS, designs.len() as f64);
            drop(designs);
            let _ = writer.send(&Response {
                id,
                reply: Reply::Loaded {
                    design: name.to_string(),
                    inputs,
                    outputs,
                },
            });
        }
        Err(e) => writer.send_error(id, ErrorCode::BadRequest, e),
    }
}

fn lookup(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    id: u64,
    name: &str,
) -> Option<Arc<LoadedDesign>> {
    let designs = shared.designs.lock().expect("designs mutex");
    match designs.get(name) {
        Some(design) => Some(Arc::clone(design)),
        None => {
            drop(designs);
            writer.send_error(
                id,
                ErrorCode::UnknownDesign,
                format!("design `{name}` is not loaded (use load-bench / load-netlist)"),
            );
            None
        }
    }
}

fn busy(writer: &Arc<ConnWriter>, id: u64, reason: &str) {
    obs::incr(names::SERVE_BUSY);
    let _ = writer.send(&Response {
        id,
        reply: Reply::Busy {
            reason: reason.to_string(),
        },
    });
}

fn submit_oracle(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    id: u64,
    design: &str,
    patterns: Vec<String>,
    single: bool,
) {
    let Some(design) = lookup(shared, writer, id, design) else {
        return;
    };
    let width = design.num_inputs();
    let mut decoded = Vec::with_capacity(patterns.len());
    for text in &patterns {
        let bits = match bits_from_string(text) {
            Ok(bits) => bits,
            Err(e) => {
                writer.send_error(id, ErrorCode::BadRequest, e);
                return;
            }
        };
        if bits.len() != width {
            writer.send_error(
                id,
                ErrorCode::WidthMismatch,
                format!(
                    "pattern has {} bits, design `{}` has {width} inputs",
                    bits.len(),
                    design.name
                ),
            );
            return;
        }
        decoded.push(bits);
    }
    if single && decoded.len() != 1 {
        writer.send_error(id, ErrorCode::BadRequest, "oracle takes one pattern".into());
        return;
    }
    if writer.inflight.load(Ordering::SeqCst) >= shared.config.max_inflight {
        busy(writer, id, "in-flight window full");
        return;
    }
    writer.inflight.fetch_add(1, Ordering::SeqCst);
    let reply_writer = Arc::clone(writer);
    let submitted = shared.batcher.submit(
        design,
        decoded,
        Box::new(move |rows| {
            let reply = if single {
                Reply::Oracle {
                    output: bits_to_string(&rows[0]),
                }
            } else {
                Reply::OracleBulk {
                    outputs: rows.iter().map(|r| bits_to_string(r)).collect(),
                }
            };
            let _ = reply_writer.send(&Response { id, reply });
            reply_writer.inflight.fetch_sub(1, Ordering::SeqCst);
        }),
    );
    if submitted == Submit::Busy {
        writer.inflight.fetch_sub(1, Ordering::SeqCst);
        busy(writer, id, "oracle queue full");
    }
}

// ---------------------------------------------------------------------
// Sweeps.
// ---------------------------------------------------------------------

/// The sweep's pattern generator: pattern `index` of a sweep is drawn
/// from splitmix64 streams keyed on `(seed, index)`, so any range of a
/// sweep can be regenerated independently (clients verifying a digest,
/// the load harness, chunked evaluation).
pub fn sweep_pattern(width: usize, index: u64, seed: u64) -> Vec<bool> {
    let mut state = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut bits = Vec::with_capacity(width);
    let mut word = 0u64;
    for i in 0..width {
        if i % 64 == 0 {
            word = splitmix64(&mut state);
        }
        bits.push(word >> (i % 64) & 1 != 0);
    }
    bits
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluates a sweep in bounded chunks and returns the FNV-1a digest
/// (16 hex chars) over all output rows, each rendered as its bit-string
/// plus `\n`. Deterministic in `(design, count, seed)`.
pub fn run_sweep(design: &LoadedDesign, count: u64, seed: u64) -> String {
    const CHUNK: u64 = 4096;
    let width = design.num_inputs();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut index = 0u64;
    while index < count {
        let n = CHUNK.min(count - index);
        let patterns: Vec<Vec<bool>> = (index..index + n)
            .map(|i| sweep_pattern(width, i, seed))
            .collect();
        let rows = design.eval_many(&patterns);
        obs::add(names::SERVE_ORACLE_PATTERNS, n);
        obs::add(
            names::SERVE_ORACLE_BATCHES,
            (n as usize).div_ceil(glitchlock_netlist::LANES) as u64,
        );
        for row in &rows {
            fnv(bits_to_string(row).as_bytes());
            fnv(b"\n");
        }
        index += n;
    }
    format!("{hash:016x}")
}

// ---------------------------------------------------------------------
// Supervised jobs.
// ---------------------------------------------------------------------

enum JobBody {
    Attack(AttackJob),
    Campaign {
        spec: String,
        shard: Option<(usize, usize)>,
    },
    Sleep {
        ms: u64,
    },
}

fn spawn_job(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, id: u64, body: JobBody) {
    if writer.inflight.load(Ordering::SeqCst) >= shared.config.max_inflight {
        busy(writer, id, "in-flight window full");
        return;
    }
    let max_jobs = shared.config.max_jobs;
    let claimed = shared
        .jobs_running
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < max_jobs).then_some(n + 1)
        });
    if claimed.is_err() {
        busy(writer, id, "job slots full");
        return;
    }
    obs::incr(names::SERVE_JOBS);
    writer.inflight.fetch_add(1, Ordering::SeqCst);
    let job_shared = Arc::clone(shared);
    let job_writer = Arc::clone(writer);
    let collector = Arc::clone(&shared.collector);
    let spawned = std::thread::Builder::new()
        .name("glk-serve-job".to_string())
        .spawn(move || {
            obs::scoped(&collector, || {
                let reply = supervise(&job_shared, body);
                let _ = job_writer.send(&Response { id, reply });
                job_writer.inflight.fetch_sub(1, Ordering::SeqCst);
                job_shared.jobs_running.fetch_sub(1, Ordering::SeqCst);
            });
        });
    if spawned.is_err() {
        obs::incr(names::SERVE_ERRORS);
        writer.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.jobs_running.fetch_sub(1, Ordering::SeqCst);
        writer.send_error(id, ErrorCode::ServerError, "spawn job thread".to_string());
    }
}

/// Runs a job body on its own thread under a deadline token, waiting at
/// most deadline + grace. An overrunning thread is cancelled, granted the
/// grace, then abandoned — the request answers `job-timeout` either way.
fn supervise(shared: &Arc<Shared>, body: JobBody) -> Reply {
    let timeout = shared.config.job_timeout;
    let token = CancelToken::with_deadline(timeout);
    let worker_token = token.clone();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::Builder::new()
        .name("glk-serve-job-body".to_string())
        .spawn(move || {
            let _ = tx.send(run_job_body(body, &worker_token));
        });
    if worker.is_err() {
        return Reply::Error {
            code: ErrorCode::ServerError,
            message: "spawn job body thread".to_string(),
        };
    }
    match rx.recv_timeout(timeout + HARD_GRACE) {
        Ok((reply, snapshot)) => {
            obs::current().registry().merge_snapshot(&snapshot);
            reply
        }
        Err(_) => {
            token.cancel();
            match rx.recv_timeout(HARD_GRACE) {
                Ok((reply, snapshot)) => {
                    obs::current().registry().merge_snapshot(&snapshot);
                    reply
                }
                Err(_) => {
                    // Abandon the hung thread; it parks on a dead channel.
                    obs::incr(names::SERVE_JOB_TIMEOUTS);
                    Reply::Error {
                        code: ErrorCode::JobTimeout,
                        message: format!("job exceeded the {}s hard timeout", timeout.as_secs()),
                    }
                }
            }
        }
    }
}

type JobOutcome = (Reply, Vec<(String, obs::MetricValue)>);

fn run_job_body(body: JobBody, token: &CancelToken) -> JobOutcome {
    let collector = Arc::new(obs::Collector::new());
    let reply = obs::scoped(&collector, || match body {
        JobBody::Attack(attack) => run_attack(&attack, token),
        JobBody::Campaign { spec, shard } => run_campaign_job(&spec, shard),
        JobBody::Sleep { ms } => {
            // Deliberately ignores the token: this op exists to exercise
            // the hard-kill path with a genuinely unresponsive handler.
            std::thread::sleep(Duration::from_millis(ms));
            Reply::Slept
        }
    });
    let snapshot = collector.registry().snapshot();
    let reply = match reply {
        // Attack records carry their deterministic metrics, exactly as
        // campaign-run jobs do.
        Reply::Attack { mut record } => {
            record.metrics = deterministic_metrics(&snapshot);
            Reply::Attack { record }
        }
        other => other,
    };
    (reply, snapshot)
}

fn run_attack(attack: &AttackJob, token: &CancelToken) -> Reply {
    let bad = |message: String| Reply::Error {
        code: ErrorCode::BadRequest,
        message,
    };
    let Some(locker) = glitchlock_jobs::LockerKind::parse(&attack.locker) else {
        return bad(format!("unknown locker `{}`", attack.locker));
    };
    let Some(kind) = glitchlock_jobs::AttackKind::parse(&attack.attack) else {
        return bad(format!("unknown attack `{}`", attack.attack));
    };
    if let Err(e) = job::resolve_bench(&attack.bench) {
        return bad(e);
    }
    let solver = match &attack.solver {
        Some(tag) => match glitchlock_sat::SolverBackend::parse(tag) {
            Some(solver) => solver,
            None => return bad(format!("unknown solver `{tag}`")),
        },
        None => glitchlock_sat::SolverBackend::default(),
    };
    let encoder = match &attack.encoder {
        Some(tag) => match glitchlock_sat::EncoderKind::parse(tag) {
            Some(encoder) => encoder,
            None => return bad(format!("unknown encoder `{tag}`")),
        },
        None => glitchlock_sat::EncoderKind::default(),
    };
    let spec = JobSpec {
        bench: attack.bench.clone(),
        locker,
        width: attack.width,
        attack: kind,
        seed: attack.seed,
    };
    let tuning = Tuning {
        max_iterations: attack.max_iters,
        samples: attack.samples,
        solver,
        encoder,
    };
    let record = job::execute(&spec, &tuning, token);
    if token.is_cancelled() {
        return Reply::Error {
            code: ErrorCode::Cancelled,
            message: "attack cancelled by the job deadline".to_string(),
        };
    }
    Reply::Attack { record }
}

fn run_campaign_job(spec_text: &str, shard: Option<(usize, usize)>) -> Reply {
    let spec = match CampaignSpec::parse(spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            return Reply::Error {
                code: ErrorCode::BadRequest,
                message: e,
            }
        }
    };
    let journal_path = std::env::temp_dir().join(format!(
        "glk-serve-campaign-{}-{:x}.jsonl",
        std::process::id(),
        glitchlock_jobs::fnv1a64(spec_text) ^ shard.map_or(0, |(i, n)| (i as u64) << 32 | n as u64)
    ));
    let result = run_campaign(&CampaignConfig {
        spec: spec.clone(),
        jobs: 1,
        journal_path: journal_path.clone(),
        resume: false,
        halt_after: None,
        shard,
    });
    let _ = std::fs::remove_file(&journal_path);
    match result {
        Ok(result) => Reply::Campaign {
            spec_hash: spec.hash(),
            records: result.records,
        },
        Err(e) => Reply::Error {
            code: ErrorCode::ServerError,
            message: e,
        },
    }
}
