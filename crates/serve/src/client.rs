//! A small blocking client for the serve protocol.
//!
//! Two usage styles:
//!
//! * [`Client::call`] — send one request, block for its response. The
//!   response is matched by id, so it is safe even if the server answers
//!   a *different* outstanding request first (the stray response is
//!   parked and handed out when its own id is asked for).
//! * [`Client::send`] + [`Client::recv`] — pipelining: queue several
//!   requests, then collect responses in whatever order they arrive.

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{Request, Response};
use std::collections::BTreeMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    /// Responses that arrived while waiting for a different id.
    parked: BTreeMap<u64, Response>,
    next_id: u64,
    max_frame: usize,
}

impl Client {
    /// Connects (with TCP_NODELAY) to a running server.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            parked: BTreeMap::new(),
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sets a read timeout for [`Client::recv`] waits (`None` blocks).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| e.to_string())
    }

    /// Allocates a fresh request id (unique within this connection).
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one framed request without waiting.
    ///
    /// # Errors
    ///
    /// Framing/socket errors.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        write_frame(&mut self.stream, &request.encode()).map_err(|e| e.to_string())
    }

    /// Receives the next response, in arrival order (parked responses
    /// first).
    ///
    /// # Errors
    ///
    /// Framing/socket errors, a closed connection, or an undecodable
    /// response.
    pub fn recv(&mut self) -> Result<Response, String> {
        if let Some((&id, _)) = self.parked.iter().next() {
            return Ok(self.parked.remove(&id).expect("parked response"));
        }
        self.read_one()
    }

    /// Receives the response with a specific id, parking any others that
    /// arrive first.
    ///
    /// # Errors
    ///
    /// Same as [`Client::recv`].
    pub fn recv_id(&mut self, id: u64) -> Result<Response, String> {
        loop {
            if let Some(response) = self.parked.remove(&id) {
                return Ok(response);
            }
            let response = self.read_one()?;
            if response.id == id {
                return Ok(response);
            }
            self.parked.insert(response.id, response);
        }
    }

    /// Sends `op`-bearing `request` and blocks for its response.
    ///
    /// # Errors
    ///
    /// Same as [`Client::send`] / [`Client::recv_id`].
    pub fn call(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.recv_id(request.id)
    }

    fn read_one(&mut self) -> Result<Response, String> {
        match read_frame(&mut self.stream, self.max_frame) {
            Ok(payload) => Response::decode(&payload),
            Err(FrameError::Closed) => Err("server closed the connection".to_string()),
            Err(e) => Err(e.to_string()),
        }
    }
}
