//! # glitchlock-serve
//!
//! Oracle-as-a-service: a long-lived TCP daemon exposing the packed
//! 64-lane oracle evaluator, lock/attack jobs, and whole campaign specs
//! to many concurrent clients over a length-framed JSON protocol.
//!
//! The layers, bottom up:
//!
//! * [`frame`] — `[u32 BE length][canonical JSON]` framing with typed
//!   failures (clean close vs torn frame vs oversized header), allocation
//!   bounded *before* reading a payload.
//! * [`proto`] — the request/response vocabulary. Every type round-trips
//!   its JSON encoding exactly; responses echo the request id so the
//!   server may answer out of order.
//! * [`batcher`] — the throughput core: oracle work from all connections
//!   funnels into one queue, and a batch worker packs queued patterns —
//!   across connections — into 64-lane evaluator passes (bounded queue,
//!   flush-on-deadline for partial batches).
//! * [`server`] — accept loop, per-connection threads, per-connection
//!   in-flight windows with explicit `busy` responses, and hard-kill
//!   supervision for heavy jobs, mirroring the campaign pool.
//! * [`client`] — a small blocking client (used by `glk query`, the load
//!   harness, and the test suite) supporting call and pipelined styles.
//!
//! Everything observable lands under the `serve.*` obs names, so
//! `glk trace-check --sites serve` can prove the daemon's probes fire.

#![deny(missing_docs)]

pub mod batcher;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, LoadedDesign, Submit};
pub use client::Client;
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
pub use proto::{AttackJob, ErrorCode, Op, Reply, Request, Response};
pub use server::{run_sweep, start, sweep_pattern, ServerConfig, ServerHandle};
