//! The oracle request batcher.
//!
//! Many connections submit oracle work items (one or many patterns each);
//! a single batch worker drains the queue, groups items by design, packs
//! the patterns into 64-lane words, and runs the compiled evaluator once
//! per 64 patterns — so ten clients asking 6 patterns each cost one pass,
//! not ten. Two knobs bound the batcher:
//!
//! * **queue cap** (`max_queue_patterns`): `submit` refuses work beyond it
//!   ([`Submit::Busy`]) instead of queuing unboundedly — the caller turns
//!   that into a `busy` response and the client retries after draining.
//! * **flush deadline** (`flush_micros`): with fewer than [`LANES`]
//!   patterns queued the worker waits this long for more work to coalesce
//!   before evaluating a partial batch, trading a bounded latency bump for
//!   lane utilization.
//!
//! Results return through a per-item callback, invoked on the batch
//! worker under the server's obs collector.

use glitchlock_netlist::{CombView, EvalProgram, Netlist, PackedLogic, LANES};
use glitchlock_obs::{self as obs, names, SharedCollector};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A design loaded for serving: the owned netlist plus its combinational
/// view and compiled bit-parallel program, shared across connections.
#[derive(Debug)]
pub struct LoadedDesign {
    /// Registered name.
    pub name: String,
    /// The owned netlist.
    pub netlist: Netlist,
    /// Combinational (scan-unfolded) view.
    pub view: CombView,
    /// Compiled 64-lane evaluator.
    pub program: EvalProgram,
}

impl LoadedDesign {
    /// Validates and compiles a netlist for serving.
    ///
    /// # Errors
    ///
    /// Rejects cyclic or otherwise invalid netlists.
    pub fn new(name: &str, netlist: Netlist) -> Result<LoadedDesign, String> {
        netlist
            .validate()
            .map_err(|e| format!("design `{name}`: {e}"))?;
        let view = CombView::new(&netlist);
        let program =
            EvalProgram::compile(&netlist).map_err(|e| format!("design `{name}`: {e}"))?;
        Ok(LoadedDesign {
            name: name.to_string(),
            netlist,
            view,
            program,
        })
    }

    /// Oracle input width (primary + pseudo inputs).
    pub fn num_inputs(&self) -> usize {
        self.view.num_inputs()
    }

    /// Oracle output width (primary + pseudo outputs).
    pub fn num_outputs(&self) -> usize {
        self.view.num_outputs()
    }

    /// Evaluates a batch of patterns, 64 per pass. Pure compute — no
    /// metrics, no queueing; the batcher wraps this.
    ///
    /// # Panics
    ///
    /// Panics on pattern-width mismatch; callers validate widths first.
    pub fn eval_many(&self, patterns: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let width = self.num_inputs();
        let mut buf = self.program.scratch();
        let mut results = Vec::with_capacity(patterns.len());
        for chunk in patterns.chunks(LANES) {
            let words: Vec<PackedLogic> = (0..width)
                .map(|i| {
                    let mut val = 0u64;
                    for (lane, p) in chunk.iter().enumerate() {
                        assert_eq!(p.len(), width, "pattern width");
                        if p[i] {
                            val |= 1 << lane;
                        }
                    }
                    PackedLogic { val, known: !0 }
                })
                .collect();
            let outs = self.view.eval_packed_words(&self.program, &words, &mut buf);
            for lane in 0..chunk.len() {
                results.push(
                    outs.iter()
                        .map(|w| w.get(lane).to_bool().expect("oracle outputs are definite"))
                        .collect(),
                );
            }
        }
        results
    }
}

/// What `submit` did with the work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submit {
    /// Queued; the callback will fire with the results.
    Accepted,
    /// The queue is at its pattern cap; the work was **not** queued and
    /// the callback will never fire.
    Busy,
}

/// Batcher tuning.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Pattern cap across all queued items; `submit` beyond it is `Busy`.
    pub max_queue_patterns: usize,
    /// How long a partial (< [`LANES`] patterns) batch waits for company
    /// before flushing anyway.
    pub flush_micros: u64,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_queue_patterns: 1 << 16,
            flush_micros: 200,
        }
    }
}

/// One queued unit of oracle work.
struct WorkItem {
    design: Arc<LoadedDesign>,
    patterns: Vec<Vec<bool>>,
    reply: Box<dyn FnOnce(Vec<Vec<bool>>) + Send>,
}

struct Queue {
    items: VecDeque<WorkItem>,
    queued_patterns: usize,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    stop: AtomicBool,
    config: BatcherConfig,
}

/// The coalescing batch evaluator; one worker thread per batcher.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batch worker under `collector`'s obs scope.
    pub fn start(config: BatcherConfig, collector: SharedCollector) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                queued_patterns: 0,
            }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("glk-serve-batcher".to_string())
            .spawn(move || obs::scoped(&collector, || run_worker(&worker_shared)))
            .expect("spawn batcher");
        Batcher {
            shared,
            worker: Some(worker),
        }
    }

    /// Queues patterns for `design`; `reply` fires on the batch worker
    /// with one output row per pattern, in order.
    pub fn submit(
        &self,
        design: Arc<LoadedDesign>,
        patterns: Vec<Vec<bool>>,
        reply: Box<dyn FnOnce(Vec<Vec<bool>>) + Send>,
    ) -> Submit {
        let mut queue = self.shared.queue.lock().expect("batcher queue mutex");
        if queue.queued_patterns + patterns.len() > self.shared.config.max_queue_patterns {
            return Submit::Busy;
        }
        queue.queued_patterns += patterns.len();
        queue.items.push_back(WorkItem {
            design,
            patterns,
            reply,
        });
        drop(queue);
        self.shared.wake.notify_one();
        Submit::Accepted
    }

    /// Drains outstanding work, then stops and joins the worker.
    pub fn shutdown(mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

fn run_worker(shared: &Shared) {
    loop {
        let batch: Vec<WorkItem> = {
            let mut queue = shared.queue.lock().expect("batcher queue mutex");
            // Sleep until there is work (or we are stopping).
            while queue.items.is_empty() {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.wake.wait(queue).expect("batcher queue mutex");
            }
            // Partial batch: hold the flush briefly so concurrent clients
            // can fill lanes. A full batch (or shutdown) flushes at once.
            if queue.queued_patterns < LANES && !shared.stop.load(Ordering::SeqCst) {
                let hold = Duration::from_micros(shared.config.flush_micros);
                let (q, _timeout) = shared
                    .wake
                    .wait_timeout(queue, hold)
                    .expect("batcher queue mutex");
                queue = q;
            }
            queue.queued_patterns = 0;
            queue.items.drain(..).collect()
        };
        if batch.len() > 1 {
            obs::incr(names::SERVE_ORACLE_COALESCED);
        }
        eval_batch(batch);
    }
}

/// Groups a drained batch by design and runs the packed passes: items
/// sharing a design are concatenated so their patterns share lanes.
fn eval_batch(batch: Vec<WorkItem>) {
    let mut groups: Vec<(Arc<LoadedDesign>, Vec<WorkItem>)> = Vec::new();
    for item in batch {
        match groups
            .iter_mut()
            .find(|(design, _)| Arc::ptr_eq(design, &item.design))
        {
            Some((_, items)) => items.push(item),
            None => groups.push((Arc::clone(&item.design), vec![item])),
        }
    }
    for (design, items) in groups {
        let total: usize = items.iter().map(|item| item.patterns.len()).sum();
        let mut all = Vec::with_capacity(total);
        for item in &items {
            all.extend(item.patterns.iter().cloned());
        }
        let rows = design.eval_many(&all);
        obs::add(names::SERVE_ORACLE_PATTERNS, total as u64);
        obs::add(names::SERVE_ORACLE_BATCHES, total.div_ceil(LANES) as u64);
        let mut rows = rows.into_iter();
        for item in items {
            let take = item.patterns.len();
            let out: Vec<Vec<bool>> = rows.by_ref().take(take).collect();
            (item.reply)(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_attacks::ComboOracle;
    use glitchlock_obs::Collector;
    use std::sync::mpsc;

    fn design() -> Arc<LoadedDesign> {
        Arc::new(LoadedDesign::new("s27", glitchlock_circuits::s27()).unwrap())
    }

    fn patterns(design: &LoadedDesign, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let width = design.num_inputs();
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 63 != 0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn eval_many_matches_the_oracle() {
        let design = design();
        let netlist = glitchlock_circuits::s27();
        let oracle = ComboOracle::new(&netlist);
        let pats = patterns(&design, 130, 7);
        assert_eq!(design.eval_many(&pats), oracle.query_many(&pats));
    }

    #[test]
    fn batcher_answers_items_in_order_and_coalesces() {
        let design = design();
        let collector = Arc::new(Collector::new());
        let batcher = Batcher::start(BatcherConfig::default(), Arc::clone(&collector));
        let (tx, rx) = mpsc::channel();
        let expect: Vec<Vec<Vec<bool>>> = (0..10)
            .map(|i| design.eval_many(&patterns(&design, 5, i)))
            .collect();
        for i in 0..10u64 {
            let tx = tx.clone();
            let got = batcher.submit(
                Arc::clone(&design),
                patterns(&design, 5, i),
                Box::new(move |rows| tx.send((i, rows)).unwrap()),
            );
            assert_eq!(got, Submit::Accepted);
        }
        let mut replies: Vec<(u64, Vec<Vec<bool>>)> = (0..10).map(|_| rx.recv().unwrap()).collect();
        replies.sort_by_key(|(i, _)| *i);
        for (i, rows) in replies {
            assert_eq!(rows, expect[i as usize], "item {i}");
        }
        batcher.shutdown();
        let snapshot = collector.registry().snapshot();
        let counter = |name: &str| {
            snapshot
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| match v {
                    glitchlock_obs::MetricValue::Counter(c) => *c,
                    _ => 0,
                })
                .unwrap_or(0)
        };
        assert_eq!(counter(names::SERVE_ORACLE_PATTERNS), 50);
        assert!(counter(names::SERVE_ORACLE_BATCHES) >= 1);
    }

    #[test]
    fn queue_cap_yields_busy() {
        let design = design();
        let collector = Arc::new(Collector::new());
        let batcher = Batcher::start(
            BatcherConfig {
                max_queue_patterns: 8,
                flush_micros: 0,
            },
            collector,
        );
        // An oversized submission is refused outright.
        let got = batcher.submit(
            Arc::clone(&design),
            patterns(&design, 9, 1),
            Box::new(|_| panic!("refused work must not run")),
        );
        assert_eq!(got, Submit::Busy);
        batcher.shutdown();
    }
}
