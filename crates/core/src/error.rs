//! Error type for locking operations.

use std::error::Error;
use std::fmt;

/// Errors from key-gate construction and insertion flows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// Not enough feasible flip-flops (or lockable nets) for the requested
    /// key-gate count.
    NotEnoughSites {
        /// Sites requested.
        requested: usize,
        /// Sites available.
        available: usize,
    },
    /// Delay-element synthesis failed for a required delay.
    Delay(String),
    /// Underlying netlist manipulation failed.
    Netlist(String),
    /// The requested glitch length cannot satisfy the capture flip-flop's
    /// setup + hold window.
    GlitchTooShort {
        /// Requested glitch length in picoseconds.
        requested_ps: u64,
        /// Minimum needed (setup + hold) in picoseconds.
        needed_ps: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotEnoughSites {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} key-gate sites but only {available} are feasible"
            ),
            CoreError::Delay(msg) => write!(f, "delay synthesis failed: {msg}"),
            CoreError::Netlist(msg) => write!(f, "netlist operation failed: {msg}"),
            CoreError::GlitchTooShort {
                requested_ps,
                needed_ps,
            } => write!(
                f,
                "glitch of {requested_ps}ps cannot cover setup+hold of {needed_ps}ps"
            ),
        }
    }
}

impl Error for CoreError {}

impl From<glitchlock_netlist::NetlistError> for CoreError {
    fn from(e: glitchlock_netlist::NetlistError) -> Self {
        CoreError::Netlist(e.to_string())
    }
}

impl From<glitchlock_synth::SynthError> for CoreError {
    fn from(e: glitchlock_synth::SynthError) -> Self {
        CoreError::Delay(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::NotEnoughSites {
            requested: 16,
            available: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("3"));
        let e = CoreError::GlitchTooShort {
            requested_ps: 100,
            needed_ps: 125,
        };
        assert!(e.to_string().contains("125"));
    }
}
