//! The GK insertion design flow (paper Sec. IV-B).
//!
//! Mirrors the paper's tool flow with the in-repo substitutes: STA
//! (PrimeTime) finds feasible flip-flop locations under the original clock
//! period; each selected flip-flop gets a GK spliced in front of its D pin
//! plus a KEYGEN whose delay elements are composed from library cells
//! (Design Compiler's "design constraints" mapping); a final STA pass
//! re-examines the GK-fed flip-flops and classifies the deliberately
//! created setup violations as **false violations** (the glitch windows
//! were verified) versus true ones.

use crate::feasibility::{analyze_feasibility_with, FeasibilityReport};
use crate::gk::{build_gk, GkDesign, GkInstance};
use crate::key::{KeyBit, KeyVector};
use crate::keygen::{build_keygen, KeygenInstance, KeygenSelect};
use crate::util::promote_to_inputs_dropping;
use crate::windows::TriggerWindow;
use crate::CoreError;
use glitchlock_netlist::{CellId, Logic, NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_sim::{ClockSpec, SimConfig, Simulator, Stimulus};
use glitchlock_sta::{analyze, ClockModel};
use glitchlock_stdcell::{Library, Ps};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// One inserted GK with its KEYGEN and chosen behaviour.
#[derive(Clone, Debug)]
pub struct GkInfo {
    /// The capture flip-flop whose D pin is encrypted.
    pub target_ff: CellId,
    /// The GK subcircuit.
    pub gk: GkInstance,
    /// The KEYGEN subcircuit.
    pub keygen: KeygenInstance,
    /// The correct `(k1,k2)` selection (always one of the two transitional
    /// selections).
    pub correct: KeygenSelect,
    /// The verified on-glitch trigger window this GK's correct trigger sits
    /// in.
    pub window: TriggerWindow,
}

/// A GK-locked design: the manufactured netlist (with KEYGENs) plus the
/// attacker's combinational view.
#[derive(Clone, Debug)]
pub struct GkLocked {
    /// The full locked netlist: GKs, KEYGENs, delay elements.
    pub netlist: Netlist,
    /// The original (oracle) netlist.
    pub original: Netlist,
    /// Attacker's view per the paper's Sec. VI: KEYGENs removed, each GK
    /// key pin promoted to a primary input.
    pub attack_view: Netlist,
    /// The promoted key inputs of [`GkLocked::attack_view`], one per GK.
    pub attack_key_inputs: Vec<NetId>,
    /// Static key inputs `(k1, k2)` per GK in [`GkLocked::netlist`].
    pub key_inputs: Vec<NetId>,
    /// The correct static key (2 bits per GK) for [`GkLocked::netlist`].
    pub correct_key: KeyVector,
    /// Per-GK records.
    pub gks: Vec<GkInfo>,
    /// Clock model the insertion was verified against.
    pub clock_period: Ps,
}

impl GkLocked {
    /// Number of key inputs: 2 per GK with the default configuration
    /// (the paper's accounting), 2 per KEYGEN *group* when
    /// [`GkEncryptor::share_keygens`] merged generators.
    pub fn key_width(&self) -> usize {
        self.key_inputs.len()
    }

    /// A uniformly random *wrong* key: flips at least one GK's selection to
    /// a constant or to the mistimed transition.
    pub fn random_wrong_key<R: Rng>(&self, rng: &mut R) -> KeyVector {
        loop {
            let bits: Vec<bool> = (0..self.key_width()).map(|_| rng.gen()).collect();
            let key = KeyVector::from_bools(bits.iter().copied());
            if key != self.correct_key {
                return key;
            }
        }
    }
}

/// Configuration of the insertion flow.
#[derive(Clone, Debug)]
pub struct GkEncryptor {
    /// Number of GKs to insert (each contributes two key inputs).
    pub n_gks: usize,
    /// GK delay design.
    pub design: GkDesign,
    /// Prefer flip-flops from the largest same-output-cone group
    /// (Encrypt-FF \[4\]) before falling back to other feasible flip-flops.
    pub prefer_encrypt_ff_group: bool,
    /// Mix both GK schemes (Fig. 3(a) *and* 3(b)) randomly per gate.
    ///
    /// An inverter-steady GK's correct key is a precisely-timed
    /// *transition*; a buffer-steady GK's correct key is a *constant*
    /// (either one — its two constants are equivalent) while transitions
    /// corrupt it. An attacker who locates the gates therefore cannot even
    /// tell which key *species* each one needs, the "comprehensive logic
    /// locking" the paper's abstract promises. Off by default to match the
    /// paper's experiments (all Fig. 3(a)).
    pub mix_schemes: bool,
    /// Share one KEYGEN among GKs with identical trigger plans (extension
    /// beyond the paper): up to [`Self::MAX_KEYGEN_FANOUT`] GKs per KEYGEN.
    /// Cuts the dominant KEYGEN+delay-chain area at the cost of fewer key
    /// inputs (2 per *KEYGEN* instead of 2 per GK) and correlated keys.
    /// Mutually exclusive with `mix_schemes` (sharing pins the correct
    /// selection to `DelayA` so identical windows group).
    pub share_keygens: bool,
}

impl GkEncryptor {
    /// Cap on GKs driven by one shared KEYGEN, bounding the extra MUX load
    /// (≈12ps per added sink) against the 120ps window margin.
    pub const MAX_KEYGEN_FANOUT: usize = 4;
}

impl GkEncryptor {
    /// An encryptor with the paper's default GK design.
    pub fn new(n_gks: usize) -> Self {
        GkEncryptor {
            n_gks,
            design: GkDesign::paper_default(),
            prefer_encrypt_ff_group: true,
            mix_schemes: false,
            share_keygens: false,
        }
    }

    /// Runs the full flow on `original`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotEnoughSites`] if fewer than `n_gks` flip-flops are
    ///   feasible.
    /// * [`CoreError::Delay`] if a delay chain cannot be composed.
    pub fn encrypt<R: Rng>(
        &self,
        original: &Netlist,
        library: &Library,
        clock: &ClockModel,
        rng: &mut R,
    ) -> Result<GkLocked, CoreError> {
        let _span = obs::span("lock.gk");
        let mut work = original.clone();
        let sta = analyze(&work, library, clock);
        let feas = analyze_feasibility_with(&work, library, clock, &self.design, &sta);
        let targets = self.pick_targets(&work, &feas, rng)?;

        let mut gks = Vec::with_capacity(self.n_gks);
        let mut key_inputs = Vec::with_capacity(2 * self.n_gks);
        let mut correct_key = KeyVector::new();
        let mut keygen_cells: HashSet<CellId> = HashSet::new();
        let mut promote: Vec<(NetId, String)> = Vec::new();

        // Plan every insertion before building anything, so KEYGEN sharing
        // can group targets with identical trigger needs.
        struct Plan {
            ff: CellId,
            design: GkDesign,
            trig_a: Ps,
            trig_b: Ps,
            correct: KeygenSelect,
            window: TriggerWindow,
        }
        let mut plans = Vec::with_capacity(self.n_gks);
        for ff in targets {
            let entry = feas.entry_of(ff).expect("target came from the report");
            let window = entry.window.expect("feasible targets have windows");

            let scheme = if self.mix_schemes && !self.share_keygens && rng.gen() {
                crate::gk::GkScheme::BufferSteady
            } else {
                self.design.scheme
            };
            let design = GkDesign {
                scheme,
                ..self.design
            };

            // Trigger choices depend on the scheme:
            // * InverterSteady (Fig. 3(a)): the glitch carries the correct
            //   value, so the *correct* key is the transition whose trigger
            //   sits mid-window; the wrong transition lands in the
            //   off-glitch region (silent corruption: the flip-flop latches
            //   the steady inverted level) or past the window (violation).
            // * BufferSteady (Fig. 3(b)): the steady level is already
            //   correct, so the correct key is a *constant*; both
            //   transitions are placed inside the on-glitch window where
            //   their inverter-glitch corrupts the capture.
            let (trig_a, trig_b, correct) = match scheme {
                crate::gk::GkScheme::InverterSteady => {
                    // When sharing, snap triggers to a coarse grid (still
                    // inside their windows) so overlapping windows produce
                    // identical KEYGEN plans and group.
                    let snap = |mid: Ps, lo: Ps, hi: Ps| -> Ps {
                        if !self.share_keygens {
                            return mid;
                        }
                        const GRID: u64 = 200;
                        let g = Ps((mid.as_ps() + GRID / 2) / GRID * GRID);
                        if lo < g && g < hi {
                            g
                        } else {
                            mid
                        }
                    };
                    let correct_trigger = snap(window.midpoint(), window.lo, window.hi);
                    let wrong_trigger = entry
                        .timing
                        .off_glitch_window()
                        .map(|w| snap(w.midpoint(), w.lo, w.hi))
                        .unwrap_or(window.hi + Ps(300));
                    // Randomize which ADB input carries the correct shift
                    // (fixed to DelayA when sharing, so identical windows
                    // produce identical KEYGEN plans).
                    if self.share_keygens || rng.gen() {
                        (correct_trigger, wrong_trigger, KeygenSelect::DelayA)
                    } else {
                        (wrong_trigger, correct_trigger, KeygenSelect::DelayB)
                    }
                }
                crate::gk::GkScheme::BufferSteady => {
                    let w = window.width();
                    let t_a = window.lo + Ps(w.as_ps() / 3);
                    let t_b = window.lo + Ps(2 * w.as_ps() / 3);
                    let correct = if rng.gen() {
                        KeygenSelect::Const0
                    } else {
                        KeygenSelect::Const1
                    };
                    (t_a.max(window.lo + Ps(1)), t_b, correct)
                }
            };
            plans.push(Plan {
                ff,
                design,
                trig_a,
                trig_b,
                correct,
                window,
            });
        }

        // Group plans onto KEYGENs: singletons normally; shared (up to
        // [`Self::MAX_KEYGEN_FANOUT`] GKs per KEYGEN, to bound the extra
        // MUX load on the trigger timing) when `share_keygens`.
        let mut groups: Vec<Vec<Plan>> = Vec::new();
        if self.share_keygens {
            let mut by_trigger: Vec<((Ps, Ps), Vec<Plan>)> = Vec::new();
            for plan in plans {
                let key = (plan.trig_a, plan.trig_b);
                match by_trigger
                    .iter_mut()
                    .find(|(k, g)| *k == key && g.len() < Self::MAX_KEYGEN_FANOUT)
                {
                    Some((_, g)) => g.push(plan),
                    None => by_trigger.push((key, vec![plan])),
                }
            }
            groups.extend(by_trigger.into_iter().map(|(_, g)| g));
        } else {
            groups.extend(plans.into_iter().map(|p| vec![p]));
        }

        for (g, group) in groups.into_iter().enumerate() {
            let first = &group[0];
            let k1 = work.add_input(format!("gk{g}_k1"));
            let k2 = work.add_input(format!("gk{g}_k2"));
            let keygen = build_keygen(
                &mut work,
                library,
                k1,
                k2,
                first.trig_a,
                first.trig_b,
                Ps(40),
            )?;
            let (k1v, k2v) = first.correct.bits();
            correct_key.push(KeyBit::Const(k1v));
            correct_key.push(KeyBit::Const(k2v));
            key_inputs.push(k1);
            key_inputs.push(k2);
            keygen_cells.extend(keygen.cells.iter().copied());
            promote.push((keygen.key_out, format!("gk{g}_key")));
            for plan in &group {
                let d_net = work.cell(plan.ff).inputs()[0];
                let gk = build_gk(&mut work, library, d_net, keygen.key_out, &plan.design)?;
                work.rewire_input(plan.ff, 0, gk.y)?;
                gks.push(GkInfo {
                    target_ff: plan.ff,
                    gk,
                    keygen: keygen.clone(),
                    correct: plan.correct,
                    window: plan.window,
                });
            }
        }

        work.validate()?;
        // The attacker's view drops the KEYGENs *and* their (k1,k2) pins;
        // each GK's key pin becomes the design key input (paper Sec. VI).
        let attack_view = promote_to_inputs_dropping(&work, &promote, &keygen_cells, &key_inputs)?;
        let attack_key_inputs = promote
            .iter()
            .map(|(_, name)| {
                attack_view
                    .net_by_name(name)
                    .expect("promoted input exists in the view")
            })
            .collect();

        let collector = obs::current();
        collector.counter(names::LOCK_DESIGNS).incr();
        collector
            .counter(names::LOCK_GK_INSERTED)
            .add(gks.len() as u64);
        let n_keygens = key_inputs.len() as u64 / 2;
        collector.counter(names::LOCK_GK_KEYGENS).add(n_keygens);
        collector
            .counter(names::LOCK_KEYBITS)
            .add(key_inputs.len() as u64);
        obs::event("result", "lock_gk")
            .u64("gks", gks.len() as u64)
            .u64("keygens", n_keygens)
            .u64("key_width", key_inputs.len() as u64)
            .emit();
        Ok(GkLocked {
            netlist: work,
            original: original.clone(),
            attack_view,
            attack_key_inputs,
            key_inputs,
            correct_key,
            gks,
            clock_period: clock.period,
        })
    }

    fn pick_targets<R: Rng>(
        &self,
        netlist: &Netlist,
        feas: &FeasibilityReport,
        rng: &mut R,
    ) -> Result<Vec<CellId>, CoreError> {
        let available = feas.available();
        if available.len() < self.n_gks {
            return Err(CoreError::NotEnoughSites {
                requested: self.n_gks,
                available: available.len(),
            });
        }
        let mut ordered: Vec<CellId> = if self.prefer_encrypt_ff_group {
            // Largest same-output-cone groups first (Encrypt-FF), shuffled
            // within each group.
            let groups = crate::encrypt_ff::group_by_output_cone(netlist, &available);
            let mut v = Vec::with_capacity(available.len());
            for mut g in groups {
                g.ffs.shuffle(rng);
                v.extend(g.ffs);
            }
            v
        } else {
            let mut v = available;
            v.shuffle(rng);
            v
        };
        ordered.truncate(self.n_gks);
        Ok(ordered)
    }
}

/// Classification of post-insertion STA violations (paper Sec. IV-B):
/// the deliberate delay elements make the EDA view report setup violations
/// at GK-fed flip-flops; those whose glitch windows were verified are
/// **false**. Any other violation is **true** and would send the flow back
/// to location selection.
#[derive(Clone, Debug, Default)]
pub struct ViolationClassification {
    /// Violating flip-flops explained by a verified GK insertion.
    pub false_violations: Vec<CellId>,
    /// Violations not explained by any GK — real problems.
    pub true_violations: Vec<CellId>,
}

/// Runs STA on the locked netlist and classifies the reported violations.
pub fn classify_violations(
    locked: &GkLocked,
    library: &Library,
    clock: &ClockModel,
) -> ViolationClassification {
    let report = analyze(&locked.netlist, library, clock);
    let gk_ffs: HashSet<CellId> = locked.gks.iter().map(|g| g.target_ff).collect();
    let keygen_ffs: HashSet<CellId> = locked.gks.iter().map(|g| g.keygen.toggle_ff).collect();
    let mut out = ViolationClassification::default();
    for check in report.checks() {
        if check.met() {
            continue;
        }
        if gk_ffs.contains(&check.ff) || keygen_ffs.contains(&check.ff) {
            out.false_violations.push(check.ff);
        } else {
            out.true_violations.push(check.ff);
        }
    }
    out
}

/// The result of a timing-domain run: per-cycle primary-output samples and
/// per-cycle flip-flop state snapshots.
#[derive(Clone, Debug)]
pub struct TimedTrace {
    /// `po[c]` — primary outputs sampled just before the edge that closes
    /// cycle `c`.
    pub po: Vec<Vec<Logic>>,
    /// `states[c]` — the tracked flip-flops' values at the edge that opens
    /// cycle `c` (so `states.len() == cycles + 1`; the last entry is the
    /// state after the final tracked cycle).
    pub states: Vec<Vec<Logic>>,
}

/// Simulates `netlist` in the timing domain and samples both outputs and
/// state, enabling transition-function cross-validation against the
/// zero-delay oracle (the KEYGEN cannot fire before the first clock edge,
/// so absolute startup states are not comparable — but the cycle-to-cycle
/// transition must match once keys are correct).
///
/// * `key_nets` assigns each key-input net a [`KeyBit`] (transitions
///   re-trigger every cycle with alternating direction, like a KEYGEN).
/// * All flip-flops reset to 0 (KEYGEN toggle flip-flops included).
/// * `inputs_per_cycle[c]` drives `data_inputs` shortly after cycle `c`'s
///   opening edge; cycle `c` opens at `period·(c+1)`.
/// * `tracked_ffs` selects which flip-flops appear in
///   [`TimedTrace::states`] (pass the original design's flip-flops).
pub fn timed_trace(
    netlist: &Netlist,
    library: &Library,
    period: Ps,
    key_nets: &[(NetId, KeyBit)],
    inputs_per_cycle: &[Vec<Logic>],
    data_inputs: &[NetId],
    tracked_ffs: &[CellId],
) -> TimedTrace {
    let cycles = inputs_per_cycle.len();
    let mut stim = Stimulus::new();
    for &ff in netlist.dff_cells() {
        stim.set_ff(ff, Logic::Zero);
    }
    for &(net, bit) in key_nets {
        match bit {
            KeyBit::Const(v) => {
                stim.set(net, Logic::from_bool(v));
            }
            KeyBit::Transition { kind, trigger } => {
                stim.set(net, Logic::from_bool(kind.level_before()));
                for c in 0..=cycles {
                    let t = period * (c as u64 + 1) + trigger;
                    let level = if c % 2 == 0 {
                        kind.level_after()
                    } else {
                        kind.level_before()
                    };
                    stim.at(t, net, Logic::from_bool(level));
                }
            }
        }
    }
    // Inputs launch shortly after each cycle's opening edge (the STA
    // input-arrival assumption). Cycle 0's values also seed t = 0 so the
    // pre-first-edge state is definite rather than X.
    for (c, inputs) in inputs_per_cycle.iter().enumerate() {
        let t = period * (c as u64 + 1) + Ps(200);
        for (i, &net) in data_inputs.iter().enumerate() {
            if c == 0 {
                stim.set(net, inputs[i]);
            }
            stim.at(t, net, inputs[i]);
        }
    }
    let cfg = SimConfig::new().with_clock(ClockSpec::new(period));
    let horizon = period * (cycles as u64 + 2);
    let res = Simulator::new(netlist, library, cfg).run(&stim, horizon);
    let pos = netlist.output_nets();
    let po = (0..cycles)
        .map(|c| {
            let sample_at = period * (c as u64 + 2) - Ps(1);
            pos.iter()
                .map(|&n| res.waveform(n).value_at(sample_at))
                .collect()
        })
        .collect();
    // states[c]: tracked FFs at the edge opening cycle c = period·(c+1),
    // which is sample index c of each flip-flop.
    let states = (0..=cycles)
        .map(|c| {
            tracked_ffs
                .iter()
                .map(|&ff| {
                    res.samples_of(ff)
                        .get(c)
                        .map(|&(_, v)| v)
                        .unwrap_or(Logic::X)
                })
                .collect()
        })
        .collect();
    TimedTrace { po, states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_circuits::{generate, tiny};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lib() -> Library {
        Library::cl013g_like()
    }

    fn locked_tiny(n_gks: usize, seed: u64) -> GkLocked {
        let nl = generate(&tiny(seed));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let mut rng = StdRng::seed_from_u64(seed);
        GkEncryptor::new(n_gks)
            .encrypt(&nl, &lib, &clock, &mut rng)
            .expect("tiny profile has feasible FFs")
    }

    #[test]
    fn encrypt_produces_consistent_structures() {
        let locked = locked_tiny(2, 7);
        assert_eq!(locked.gks.len(), 2);
        assert_eq!(locked.key_width(), 4);
        assert_eq!(locked.correct_key.len(), 4);
        locked.netlist.validate().unwrap();
        locked.attack_view.validate().unwrap();
        // The attack view has one key input per GK.
        assert_eq!(locked.attack_key_inputs.len(), 2);
        // KEYGEN flip-flops exist in the full netlist but not the view.
        assert_eq!(
            locked.netlist.stats().dffs,
            locked.original.stats().dffs + 2
        );
        assert_eq!(
            locked.attack_view.stats().dffs,
            locked.original.stats().dffs
        );
    }

    #[test]
    fn wrong_key_generator_never_returns_correct() {
        let locked = locked_tiny(2, 8);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            assert_ne!(locked.random_wrong_key(&mut rng), locked.correct_key);
        }
    }

    #[test]
    fn violations_classified_as_false_for_verified_gks() {
        let locked = locked_tiny(2, 9);
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let cls = classify_violations(&locked, &lib, &clock);
        assert!(
            cls.true_violations.is_empty(),
            "no real violations expected: {:?}",
            cls.true_violations
        );
        // The deliberate KEYGEN delay paths typically trip the EDA view.
        // (Not asserted non-empty: whether STA flags them depends on the
        // drawn trigger times.)
    }

    /// Runs the locked netlist in the timing domain under `key_nets` and
    /// cross-validates each cycle's transition against the zero-delay
    /// oracle seeded from the simulation's own sampled state. Returns
    /// `(po_mismatches, state_mismatches)` over the compared cycles.
    fn transition_mismatches(
        locked: &GkLocked,
        key_nets: &[(NetId, KeyBit)],
        seed: u64,
        cycles: usize,
    ) -> (usize, usize) {
        let lib = lib();
        let period = locked.clock_period;
        let mut rng = StdRng::seed_from_u64(seed);
        let n_in = locked.original.input_nets().len();
        let inputs: Vec<Vec<Logic>> = (0..cycles)
            .map(|_| (0..n_in).map(|_| Logic::from_bool(rng.gen())).collect())
            .collect();
        // Encryption only appends cells, so the original's input nets and
        // flip-flop cells keep their ids in the locked netlist.
        let data_inputs: Vec<NetId> = locked.original.input_nets().to_vec();
        let tracked: Vec<CellId> = locked.original.dff_cells().to_vec();
        let trace = timed_trace(
            &locked.netlist,
            &lib,
            period,
            key_nets,
            &inputs,
            &data_inputs,
            &tracked,
        );
        let mut po_bad = 0;
        let mut state_bad = 0;
        #[allow(clippy::needless_range_loop)] // c also indexes states[c+1]
        for c in 0..cycles {
            let mut oracle = glitchlock_netlist::SeqState::from_values(
                &locked.original,
                trace.states[c].clone(),
            );
            let po_expect = oracle.step(&locked.original, &inputs[c]);
            if trace.po[c] != po_expect {
                po_bad += 1;
            }
            if trace.states[c + 1] != oracle.values() {
                state_bad += 1;
            }
        }
        (po_bad, state_bad)
    }

    #[test]
    fn correct_key_preserves_transition_function() {
        let locked = locked_tiny(2, 10);
        let key_nets: Vec<(NetId, KeyBit)> = locked
            .key_inputs
            .iter()
            .copied()
            .zip(locked.correct_key.bits().iter().copied())
            .collect();
        let (po_bad, state_bad) = transition_mismatches(&locked, &key_nets, 5, 12);
        assert_eq!(po_bad, 0, "POs must match the oracle every cycle");
        assert_eq!(state_bad, 0, "state transitions must match the oracle");
    }

    #[test]
    fn wrong_constant_key_corrupts_every_transition() {
        let locked = locked_tiny(2, 11);
        // All-zero key: every GK sees constant 0 and acts as an inverter,
        // so each GK-fed flip-flop latches the complement — the state
        // transition is provably wrong every cycle.
        let key_nets: Vec<(NetId, KeyBit)> = locked
            .key_inputs
            .iter()
            .map(|&n| (n, KeyBit::Const(false)))
            .collect();
        let (_, state_bad) = transition_mismatches(&locked, &key_nets, 6, 12);
        assert_eq!(state_bad, 12, "inverted D corrupts the state each cycle");
    }

    #[test]
    fn mistimed_transition_key_also_corrupts() {
        let locked = locked_tiny(1, 13);
        // Swap the two transitional selections: the glitch fires in the
        // wrong place (off-glitch window or violation zone).
        let mut wrong = KeyVector::new();
        for gk in &locked.gks {
            let flipped = match gk.correct {
                KeygenSelect::DelayA => KeygenSelect::DelayB,
                _ => KeygenSelect::DelayA,
            };
            let (k1, k2) = flipped.bits();
            wrong.push(KeyBit::Const(k1));
            wrong.push(KeyBit::Const(k2));
        }
        let key_nets: Vec<(NetId, KeyBit)> = locked
            .key_inputs
            .iter()
            .copied()
            .zip(wrong.bits().iter().copied())
            .collect();
        let (_, state_bad) = transition_mismatches(&locked, &key_nets, 7, 12);
        assert!(state_bad > 0, "mistimed glitch must corrupt the state");
    }

    fn locked_tiny_mixed(n_gks: usize, seed: u64) -> GkLocked {
        let nl = generate(&tiny(seed));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let mut rng = StdRng::seed_from_u64(seed);
        GkEncryptor {
            mix_schemes: true,
            ..GkEncryptor::new(n_gks)
        }
        .encrypt(&nl, &lib, &clock, &mut rng)
        .expect("tiny profile has feasible FFs")
    }

    #[test]
    fn mixed_schemes_draw_both_species() {
        // Over a few seeds, both constant-keyed (buffer-steady) and
        // transition-keyed (inverter-steady) GKs must appear.
        let mut saw_const = false;
        let mut saw_transition = false;
        for seed in 20..26 {
            let locked = locked_tiny_mixed(3, seed);
            for gk in &locked.gks {
                match gk.correct {
                    KeygenSelect::Const0 | KeygenSelect::Const1 => saw_const = true,
                    KeygenSelect::DelayA | KeygenSelect::DelayB => saw_transition = true,
                }
            }
        }
        assert!(saw_const, "some GK should be buffer-steady (constant key)");
        assert!(saw_transition, "some GK should be inverter-steady");
    }

    #[test]
    fn mixed_schemes_correct_key_preserves_transitions() {
        let locked = locked_tiny_mixed(3, 21);
        let key_nets: Vec<(NetId, KeyBit)> = locked
            .key_inputs
            .iter()
            .copied()
            .zip(locked.correct_key.bits().iter().copied())
            .collect();
        let (po_bad, state_bad) = transition_mismatches(&locked, &key_nets, 8, 12);
        assert_eq!(po_bad, 0);
        assert_eq!(state_bad, 0);
    }

    #[test]
    fn mixed_schemes_species_swapped_key_corrupts() {
        // Give every GK the wrong *species*: transitions where constants
        // are expected and vice versa.
        let locked = locked_tiny_mixed(3, 22);
        let mut wrong = KeyVector::new();
        for gk in &locked.gks {
            let flipped = match gk.correct {
                KeygenSelect::Const0 | KeygenSelect::Const1 => KeygenSelect::DelayA,
                _ => KeygenSelect::Const0,
            };
            let (k1, k2) = flipped.bits();
            wrong.push(KeyBit::Const(k1));
            wrong.push(KeyBit::Const(k2));
        }
        let key_nets: Vec<(NetId, KeyBit)> = locked
            .key_inputs
            .iter()
            .copied()
            .zip(wrong.bits().iter().copied())
            .collect();
        let (_, state_bad) = transition_mismatches(&locked, &key_nets, 9, 12);
        assert!(state_bad > 0, "species-swapped key must corrupt");
    }

    #[test]
    fn shared_keygens_reduce_cells_and_keys_but_still_verify() {
        let nl = generate(&tiny(30));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let mut rng = StdRng::seed_from_u64(30);
        let solo = GkEncryptor::new(4)
            .encrypt(&nl, &lib, &clock, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(30);
        let shared = GkEncryptor {
            share_keygens: true,
            ..GkEncryptor::new(4)
        }
        .encrypt(&nl, &lib, &clock, &mut rng)
        .unwrap();
        assert_eq!(shared.gks.len(), 4);
        assert!(
            shared.key_width() < solo.key_width(),
            "sharing must merge key inputs: {} vs {}",
            shared.key_width(),
            solo.key_width()
        );
        assert!(
            shared.netlist.cell_count() < solo.netlist.cell_count(),
            "sharing must drop whole KEYGENs"
        );
        // Function still preserved under the (smaller) correct key.
        let key_nets: Vec<(NetId, KeyBit)> = shared
            .key_inputs
            .iter()
            .copied()
            .zip(shared.correct_key.bits().iter().copied())
            .collect();
        let (po_bad, state_bad) = transition_mismatches(&shared, &key_nets, 31, 10);
        assert_eq!(po_bad, 0);
        assert_eq!(state_bad, 0);
        // And wrong keys still corrupt.
        let wrong: Vec<(NetId, KeyBit)> = shared
            .key_inputs
            .iter()
            .map(|&n| (n, KeyBit::Const(false)))
            .collect();
        let (_, state_bad) = transition_mismatches(&shared, &wrong, 32, 10);
        assert!(state_bad > 0);
    }

    #[test]
    fn not_enough_sites_is_reported() {
        let nl = generate(&tiny(12));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let mut rng = StdRng::seed_from_u64(1);
        let err = GkEncryptor::new(1000)
            .encrypt(&nl, &lib, &clock, &mut rng)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughSites { .. }));
    }
}
