//! Netlist surgery helpers shared by the locking flows.

use crate::CoreError;
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// Rebuilds `netlist` with each net in `promote` turned into a fresh
/// primary input (named by the paired string), dropping the cells in
/// `drop_cells` and any logic that then becomes dead.
///
/// This is how the attacker's view of a GK-locked design is produced: the
/// paper's SAT-attack experiment "removed the KEYGEN of each GK and treated
/// its key-input as the key-input of the design" (Sec. VI).
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] if the result is structurally invalid.
pub fn promote_to_inputs(
    netlist: &Netlist,
    promote: &[(NetId, String)],
    drop_cells: &HashSet<CellId>,
) -> Result<Netlist, CoreError> {
    promote_to_inputs_dropping(netlist, promote, drop_cells, &[])
}

/// Like [`promote_to_inputs`], additionally removing the given primary
/// inputs entirely (used for KEYGEN key pins, which disappear together with
/// their KEYGEN in the attacker's view).
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] if the result is structurally invalid —
/// including when a dropped input still feeds surviving logic.
pub fn promote_to_inputs_dropping(
    netlist: &Netlist,
    promote: &[(NetId, String)],
    drop_cells: &HashSet<CellId>,
    drop_inputs: &[NetId],
) -> Result<Netlist, CoreError> {
    let promoted: HashMap<NetId, &str> = promote
        .iter()
        .map(|(n, name)| (*n, name.as_str()))
        .collect();
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];

    for &pi in netlist.input_nets() {
        if drop_inputs.contains(&pi) {
            continue;
        }
        map[pi.index()] = Some(out.add_input(netlist.net(pi).name()));
    }
    for (net, name) in promote {
        if map[net.index()].is_none() {
            map[net.index()] = Some(out.add_input(name.clone()));
        }
    }

    // Copy flip-flops (except dropped ones) with placeholder D nets.
    let mut ff_map: Vec<(CellId, CellId)> = Vec::new();
    for &ff in netlist.dff_cells() {
        if drop_cells.contains(&ff) {
            continue;
        }
        let cell = netlist.cell(ff);
        if promoted.contains_key(&cell.output()) {
            continue; // its Q was promoted: the FF itself is gone
        }
        let placeholder = out.add_net(format!("{}_d", cell.name()));
        let q = out
            .add_dff_named(placeholder, cell.name())
            .map_err(|e| CoreError::Netlist(e.to_string()))?;
        map[cell.output().index()] = Some(q);
        ff_map.push((ff, out.net(q).driver().expect("dff drives q")));
    }

    let order = netlist
        .topo_order()
        .map_err(|e| CoreError::Netlist(e.to_string()))?;
    for cell_id in order {
        let cell = netlist.cell(cell_id);
        if drop_cells.contains(&cell_id) || map[cell.output().index()].is_some() {
            continue;
        }
        // Skip cells whose inputs are unavailable (inside dropped cones).
        let Some(ins) = cell
            .inputs()
            .iter()
            .map(|n| map[n.index()])
            .collect::<Option<Vec<NetId>>>()
        else {
            continue;
        };
        let y = out
            .add_gate_named(cell.kind(), &ins, cell.name())
            .map_err(|e| CoreError::Netlist(e.to_string()))?;
        if let Some(lib) = cell.lib() {
            let new_cell = out.net(y).driver().expect("gate drives net");
            out.bind_lib(new_cell, lib)
                .map_err(|e| CoreError::Netlist(e.to_string()))?;
        }
        map[cell.output().index()] = Some(y);
    }

    for (old_ff, new_ff) in ff_map {
        let d_old = netlist.cell(old_ff).inputs()[0];
        let d = map[d_old.index()].ok_or_else(|| {
            CoreError::Netlist(format!(
                "flip-flop {} reads a dropped cone",
                netlist.cell(old_ff).name()
            ))
        })?;
        out.rewire_input(new_ff, 0, d)
            .map_err(|e| CoreError::Netlist(e.to_string()))?;
    }
    for (net, name) in netlist.output_ports() {
        let n = map[net.index()]
            .ok_or_else(|| CoreError::Netlist(format!("output {name} reads a dropped cone")))?;
        out.mark_output(n, name.clone());
    }
    out.validate()
        .map_err(|e| CoreError::Netlist(e.to_string()))?;
    // Dead logic left behind by the drops is swept.
    glitchlock_synth::sweep_sequential(&out).map_err(|e| CoreError::Netlist(e.to_string()))
}

/// Inserts a gate *in front of one sink pin*: the sink's pin is rewired to
/// read the new gate's output. Returns the new gate's output net.
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] on illegal pins or arities.
pub fn splice_before_pin(
    netlist: &mut Netlist,
    sink: CellId,
    pin: usize,
    kind: GateKind,
    extra_inputs: &[NetId],
) -> Result<NetId, CoreError> {
    let original = *netlist
        .cell(sink)
        .inputs()
        .get(pin)
        .ok_or_else(|| CoreError::Netlist(format!("cell has no pin {pin}")))?;
    let mut ins = vec![original];
    ins.extend_from_slice(extra_inputs);
    let y = netlist.add_gate(kind, &ins)?;
    netlist.rewire_input(sink, pin, y)?;
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;

    #[test]
    fn promote_turns_net_into_input() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let y = nl.add_gate(GateKind::And, &[na, a]).unwrap();
        nl.mark_output(y, "y");
        // Promote the inverter output: the inverter becomes dead and the
        // AND now reads a free input.
        let view = promote_to_inputs(&nl, &[(na, "k".into())], &HashSet::new()).unwrap();
        assert_eq!(view.input_nets().len(), 2);
        assert_eq!(view.stats().gates, 1, "inverter swept");
        // y = k AND a now.
        assert_eq!(view.eval_comb(&[Logic::One, Logic::One]), vec![Logic::One]);
        assert_eq!(
            view.eval_comb(&[Logic::One, Logic::Zero]),
            vec![Logic::Zero]
        );
    }

    #[test]
    fn drop_cells_removes_cone() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let keygen_like = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let y = nl.add_gate(GateKind::Buf, &[keygen_like]).unwrap();
        nl.mark_output(y, "y");
        let drop: HashSet<CellId> = [nl.net(keygen_like).driver().unwrap()].into();
        let view = promote_to_inputs(&nl, &[(keygen_like, "key".into())], &drop).unwrap();
        // The inverter is gone; y = buf(key).
        assert_eq!(view.stats().gates, 1);
        assert_eq!(
            view.eval_comb(&[Logic::X, Logic::One]),
            vec![Logic::One],
            "output follows the promoted input regardless of a"
        );
    }

    #[test]
    fn promoted_ff_q_removes_ff() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let y = nl.add_gate(GateKind::Buf, &[q]).unwrap();
        nl.mark_output(y, "y");
        let view = promote_to_inputs(&nl, &[(q, "state".into())], &HashSet::new()).unwrap();
        assert_eq!(view.stats().dffs, 0);
        assert_eq!(view.input_nets().len(), 2);
    }

    #[test]
    fn splice_inserts_gate_before_pin() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(y, "y");
        let and_cell = nl.net(y).driver().unwrap();
        let k = nl.add_input("k");
        let spliced = splice_before_pin(&mut nl, and_cell, 0, GateKind::Xor, &[k]).unwrap();
        assert_eq!(nl.cell(and_cell).inputs()[0], spliced);
        // y = (a ^ k) & b.
        assert_eq!(
            nl.eval_comb(&[Logic::One, Logic::One, Logic::One]),
            vec![Logic::Zero]
        );
        assert_eq!(
            nl.eval_comb(&[Logic::One, Logic::One, Logic::Zero]),
            vec![Logic::One]
        );
    }

    #[test]
    fn dropped_cone_feeding_output_is_an_error() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let y = nl.add_gate(GateKind::Buf, &[g]).unwrap();
        nl.mark_output(y, "y");
        let drop: HashSet<CellId> = [nl.net(g).driver().unwrap()].into();
        // Dropping the inverter without promoting its output orphans y.
        let err = promote_to_inputs(&nl, &[], &drop).unwrap_err();
        assert!(matches!(err, CoreError::Netlist(_)));
    }
}
