//! Key models: constant key bits and transitional key signals.
//!
//! The paper's central extension of logic locking is that a key input may
//! be a **transition at a precise time**, not just a constant (Sec. II).
//! [`KeyBit`] captures both. A [`KeyVector`] mixes constant bits (for
//! XOR/XNOR/MUX key-gates) and transitions (for the GK's key pin when
//! driven directly, e.g. in the attacker's KEYGEN-stripped view).

use glitchlock_stdcell::Ps;
use std::fmt;

/// The direction of a key transition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Transition {
    /// 0 → 1 at the trigger time.
    Rising,
    /// 1 → 0 at the trigger time.
    Falling,
}

impl Transition {
    /// The level before the transition.
    pub fn level_before(self) -> bool {
        self == Transition::Falling
    }

    /// The level after the transition.
    pub fn level_after(self) -> bool {
        self == Transition::Rising
    }

    /// The opposite direction.
    pub fn flip(self) -> Transition {
        match self {
            Transition::Rising => Transition::Falling,
            Transition::Falling => Transition::Rising,
        }
    }
}

/// One key input's assignment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyBit {
    /// A constant logic level for the whole clock cycle.
    Const(bool),
    /// A transition triggered at `trigger` (relative to the cycle start).
    Transition {
        /// Direction of the transition.
        kind: Transition,
        /// Trigger time within the clock cycle.
        trigger: Ps,
    },
}

impl KeyBit {
    /// The signal level at time `t` within the cycle.
    pub fn level_at(self, t: Ps) -> bool {
        match self {
            KeyBit::Const(v) => v,
            KeyBit::Transition { kind, trigger } => {
                if t < trigger {
                    kind.level_before()
                } else {
                    kind.level_after()
                }
            }
        }
    }

    /// True for transitional assignments.
    pub fn is_transition(self) -> bool {
        matches!(self, KeyBit::Transition { .. })
    }
}

impl fmt::Display for KeyBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyBit::Const(v) => write!(f, "{}", *v as u8),
            KeyBit::Transition {
                kind: Transition::Rising,
                trigger,
            } => write!(f, "R@{trigger}"),
            KeyBit::Transition {
                kind: Transition::Falling,
                trigger,
            } => write!(f, "F@{trigger}"),
        }
    }
}

/// An ordered key assignment, one [`KeyBit`] per key input.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KeyVector {
    bits: Vec<KeyBit>,
}

impl KeyVector {
    /// An empty key.
    pub fn new() -> Self {
        KeyVector::default()
    }

    /// A key of constant bits.
    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Self {
        KeyVector {
            bits: bits.into_iter().map(KeyBit::Const).collect(),
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: KeyBit) {
        self.bits.push(bit);
    }

    /// Number of key inputs.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for a zero-length key.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits in order.
    pub fn bits(&self) -> &[KeyBit] {
        &self.bits
    }

    /// Constant view of the key, if every bit is constant.
    pub fn as_bools(&self) -> Option<Vec<bool>> {
        self.bits
            .iter()
            .map(|b| match b {
                KeyBit::Const(v) => Some(*v),
                KeyBit::Transition { .. } => None,
            })
            .collect()
    }

    /// Flips constant bit `i` (useful for building wrong keys in tests).
    ///
    /// # Panics
    ///
    /// Panics if bit `i` is transitional or out of range.
    pub fn flip_const(&mut self, i: usize) {
        match &mut self.bits[i] {
            KeyBit::Const(v) => *v = !*v,
            KeyBit::Transition { .. } => panic!("bit {i} is transitional"),
        }
    }
}

/// Error parsing a key from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseKeyError {
    /// The offending token.
    pub token: String,
}

impl fmt::Display for ParseKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad key token {:?} (expected 0, 1, R@<ps>, or F@<ps>)",
            self.token
        )
    }
}

impl std::error::Error for ParseKeyError {}

impl std::str::FromStr for KeyBit {
    type Err = ParseKeyError;

    /// Parses `0`, `1`, `R@<ps>` (rising) or `F@<ps>` (falling).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseKeyError {
            token: s.to_string(),
        };
        match s.trim() {
            "0" => Ok(KeyBit::Const(false)),
            "1" => Ok(KeyBit::Const(true)),
            other => {
                let (kind, rest) = match other.split_at_checked(2) {
                    Some(("R@", rest)) => (Transition::Rising, rest),
                    Some(("F@", rest)) => (Transition::Falling, rest),
                    _ => return Err(bad()),
                };
                let ps: u64 = rest.trim_end_matches("ps").parse().map_err(|_| bad())?;
                Ok(KeyBit::Transition {
                    kind,
                    trigger: Ps(ps),
                })
            }
        }
    }
}

impl std::str::FromStr for KeyVector {
    type Err = ParseKeyError;

    /// Parses a comma-separated key string, e.g. `"0,1,R@2400,F@1000"`.
    /// An unseparated bitstring like `"0110"` is also accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if !s.contains(',') && s.chars().all(|c| c == '0' || c == '1') && !s.is_empty() {
            return Ok(KeyVector::from_bools(s.chars().map(|c| c == '1')));
        }
        s.split(',')
            .filter(|t| !t.trim().is_empty())
            .map(str::parse)
            .collect::<Result<Vec<KeyBit>, _>>()
            .map(|bits| bits.into_iter().collect())
    }
}

impl FromIterator<KeyBit> for KeyVector {
    fn from_iter<T: IntoIterator<Item = KeyBit>>(iter: T) -> Self {
        KeyVector {
            bits: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for KeyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, b) in self.bits.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_levels() {
        assert!(!Transition::Rising.level_before());
        assert!(Transition::Rising.level_after());
        assert!(Transition::Falling.level_before());
        assert!(!Transition::Falling.level_after());
        assert_eq!(Transition::Rising.flip(), Transition::Falling);
    }

    #[test]
    fn keybit_level_at() {
        let r = KeyBit::Transition {
            kind: Transition::Rising,
            trigger: Ps(3000),
        };
        assert!(!r.level_at(Ps(0)));
        assert!(!r.level_at(Ps(2999)));
        assert!(r.level_at(Ps(3000)));
        assert!(r.level_at(Ps(9000)));
        assert!(KeyBit::Const(true).level_at(Ps(0)));
        assert!(r.is_transition());
        assert!(!KeyBit::Const(false).is_transition());
    }

    #[test]
    fn vector_round_trips_constants() {
        let k = KeyVector::from_bools([true, false, true]);
        assert_eq!(k.len(), 3);
        assert_eq!(k.as_bools(), Some(vec![true, false, true]));
        let mut k2 = k.clone();
        k2.flip_const(1);
        assert_eq!(k2.as_bools(), Some(vec![true, true, true]));
        assert_ne!(k, k2);
    }

    #[test]
    fn mixed_vector_has_no_constant_view() {
        let mut k = KeyVector::new();
        k.push(KeyBit::Const(true));
        k.push(KeyBit::Transition {
            kind: Transition::Falling,
            trigger: Ps(500),
        });
        assert_eq!(k.as_bools(), None);
        assert_eq!(k.to_string(), "[1 F@500ps]");
    }

    #[test]
    fn parse_bit_tokens() {
        assert_eq!("0".parse::<KeyBit>().unwrap(), KeyBit::Const(false));
        assert_eq!("1".parse::<KeyBit>().unwrap(), KeyBit::Const(true));
        assert_eq!(
            "R@2400".parse::<KeyBit>().unwrap(),
            KeyBit::Transition {
                kind: Transition::Rising,
                trigger: Ps(2400)
            }
        );
        assert_eq!(
            "F@1000ps".parse::<KeyBit>().unwrap(),
            KeyBit::Transition {
                kind: Transition::Falling,
                trigger: Ps(1000)
            }
        );
        assert!("2".parse::<KeyBit>().is_err());
        assert!("R@x".parse::<KeyBit>().is_err());
        assert!("".parse::<KeyBit>().is_err());
    }

    #[test]
    fn parse_vectors_both_forms() {
        let v: KeyVector = "0,1,R@500".parse().unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.bits()[2].is_transition());
        let v: KeyVector = "0110".parse().unwrap();
        assert_eq!(v.as_bools(), Some(vec![false, true, true, false]));
        assert!("0,2".parse::<KeyVector>().is_err());
        // Round trip through Display for constant keys.
        let v: KeyVector = "1,0".parse().unwrap();
        assert_eq!(v.to_string(), "[1 0]");
    }

    #[test]
    fn collect_from_iterator() {
        let k: KeyVector = [KeyBit::Const(false), KeyBit::Const(true)]
            .into_iter()
            .collect();
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        assert!(KeyVector::new().is_empty());
    }
}
