//! Timing-window algebra: Eqs. (1)–(6) of the paper.
//!
//! All quantities are measured in the capture cycle's time frame: the
//! launching edge is at each source flip-flop's skew, and the capture edge
//! at flip-flop `j` is at `T_clk + T_j`. The bounds of Eq. (1) then become
//! per-capture-flip-flop arrival bounds:
//!
//! ```text
//! LB_j = T_j + T_hold(j)            (earliest a new value may arrive)
//! UB_j = T_clk + T_j - T_setup(j)   (latest the value must settle)
//! ```
//!
//! A glitch triggered at `T_trigger` appears at the GK output during
//! `[T_trigger + D_react, T_trigger + D_react + L_glitch)` where
//! `D_react = D_MUX` (the select-to-output latency) and `L_glitch` is the
//! selected branch's path delay (Eq. (2); under the paper's ideal-gate
//! exposition both formulations coincide — see `DESIGN.md`).

use glitchlock_stdcell::Ps;

/// An open interval `(lo, hi)` of legal trigger times.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TriggerWindow {
    /// Exclusive lower bound.
    pub lo: Ps,
    /// Exclusive upper bound.
    pub hi: Ps,
}

impl TriggerWindow {
    /// True when `t` lies strictly inside the window.
    pub fn contains(&self, t: Ps) -> bool {
        self.lo < t && t < self.hi
    }

    /// The window midpoint — the insertion flow's default trigger choice.
    pub fn midpoint(&self) -> Ps {
        Ps((self.lo.as_ps() + self.hi.as_ps()) / 2)
    }

    /// Window width.
    pub fn width(&self) -> Ps {
        self.hi.saturating_sub(self.lo)
    }
}

/// The timing context of one candidate GK insertion at a capture
/// flip-flop's D pin.
#[derive(Clone, Copy, Debug)]
pub struct GkTiming {
    /// Latest data arrival at the GK's `x` input (`T_arrival`).
    pub t_arrival: Ps,
    /// Capture flip-flop clock arrival (`T_j`).
    pub t_j: Ps,
    /// Clock period (`T_clk`).
    pub t_clk: Ps,
    /// Capture flip-flop setup time.
    pub t_setup: Ps,
    /// Capture flip-flop hold time.
    pub t_hold: Ps,
    /// Glitch length of the selected branch (Eq. (2)).
    pub l_glitch: Ps,
    /// Delay to have the glitch-level value ready (`D_ready`, the selected
    /// branch's path delay — the paper's conservative bound).
    pub d_ready: Ps,
    /// Latency from key transition to glitch start (`D_react = D_MUX`).
    pub d_react: Ps,
}

impl GkTiming {
    /// `LB_j` per Eq. (1).
    pub fn lb(&self) -> Ps {
        self.t_j + self.t_hold
    }

    /// `UB_j` per Eq. (1).
    pub fn ub(&self) -> Ps {
        (self.t_clk + self.t_j).saturating_sub(self.t_setup)
    }

    /// Eq. (3): can a glitch carrying data *on its level* be generated and
    /// triggered between the bounds?
    pub fn eq3_ok(&self) -> bool {
        let total = self.t_arrival + self.d_ready + self.d_react;
        self.lb() <= total && total <= self.ub()
    }

    /// Eq. (4): for off-glitch transmission, the slowest branch
    /// (`max_d_path`) must still fit inside the bounds.
    pub fn eq4_ok(&self, max_d_path: Ps) -> bool {
        let total = self.t_arrival + max_d_path + self.d_react;
        self.lb() <= total && total <= self.ub()
    }

    /// Eq. (5): the trigger window for transmitting data **on the level of
    /// the glitch** (Fig. 7(a)): the glitch must start before the setup
    /// window and end after the hold window, and the data must already be
    /// ready at the selected branch.
    pub fn on_glitch_window(&self) -> Option<TriggerWindow> {
        // First part: T_j + T_hold - L - D_react < T < UB - D_react, where
        // Eq. (5)'s `T_j` is the *capture edge* (`T_clk + skew` in our
        // frame; the paper's Fig. 9 uses T_j = 8ns for an 8ns cycle).
        let capture = self.t_clk + self.t_j;
        let lo1 = (capture + self.t_hold).saturating_sub(self.l_glitch + self.d_react);
        let hi = self.ub().saturating_sub(self.d_react);
        // Second part: T > T_arrival + D_ready.
        let lo2 = self.t_arrival + self.d_ready;
        let lo = lo1.max(lo2);
        // The glitch must be long enough to cover setup + hold at all.
        if self.l_glitch < self.t_setup + self.t_hold {
            return None;
        }
        (lo < hi).then_some(TriggerWindow { lo, hi })
    }

    /// Eq. (6): the trigger window for transmitting the **stable** value,
    /// with the complete glitch out of the way (Figs. 7(b)/(c)).
    pub fn off_glitch_window(&self) -> Option<TriggerWindow> {
        let lo1 = self.lb().saturating_sub(self.d_react);
        let hi = self.ub().saturating_sub(self.l_glitch + self.d_react);
        // The glitch value must also exist (data ready) before it fires.
        let lo = lo1.max(self.t_arrival + self.d_ready);
        (lo < hi).then_some(TriggerWindow { lo, hi })
    }

    /// True when a trigger time latches the glitch level without a real
    /// setup/hold violation (the full Fig. 7(a) condition, used by tests to
    /// cross-check against event simulation).
    pub fn glitch_covers_window(&self, trigger: Ps) -> bool {
        let start = trigger + self.d_react;
        let end = start + self.l_glitch;
        let capture = self.t_clk + self.t_j;
        start + self.t_setup <= capture && end >= capture + self.t_hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 9 scenario: 8ns cycle, setup = hold = 1ns, T_j = 0 (the
    /// figure measures in the capture cycle with the edge at 8ns),
    /// L_glitch = 3ns, ideal gates (D_react = 0).
    fn fig9(t_arrival: Ps, d_ready: Ps) -> GkTiming {
        GkTiming {
            t_arrival,
            t_j: Ps::ZERO,
            t_clk: Ps::from_ns(8),
            t_setup: Ps::from_ns(1),
            t_hold: Ps::from_ns(1),
            l_glitch: Ps::from_ns(3),
            d_ready,
            d_react: Ps::ZERO,
        }
    }

    #[test]
    fn fig9_bounds_match_paper() {
        let t = fig9(Ps::from_ns(1), Ps::ZERO);
        assert_eq!(t.ub(), Ps::from_ns(7), "UB = 8 - 1");
        assert_eq!(t.lb(), Ps::from_ns(1), "LB = 1");
    }

    #[test]
    fn fig9_on_glitch_window() {
        // With data arriving early, the window is (T_j + T_hold - L, UB) =
        // (9 - 3 = 6ns relative to capture at 8ns -> 6ns, 7ns).
        let t = fig9(Ps::from_ns(1), Ps::ZERO);
        let w = t.on_glitch_window().unwrap();
        assert_eq!(w.lo, Ps::from_ns(6));
        assert_eq!(w.hi, Ps::from_ns(7));
        assert!(w.contains(Ps(6500)));
        assert!(!w.contains(Ps::from_ns(6)), "bounds are exclusive");
        assert!(!w.contains(Ps::from_ns(7)));
        assert_eq!(w.midpoint(), Ps(6500));
        assert_eq!(w.width(), Ps::from_ns(1));
    }

    #[test]
    fn fig9_glitch_boundaries_latch_cleanly() {
        let t = fig9(Ps::from_ns(1), Ps::ZERO);
        // Glitch (a): starts at 6ns, ends at 9ns — covers [7ns, 9ns]
        // (setup at 8-1, hold to 8+1): clean.
        assert!(t.glitch_covers_window(Ps::from_ns(6)));
        // Anything later than 7ns start violates setup coverage.
        assert!(!t.glitch_covers_window(Ps(7001)));
        // Glitch (b): latest start that still covers hold: end >= 9ns ->
        // start >= 6ns; earliest legal = 6ns exactly.
        assert!(!t.glitch_covers_window(Ps(5999)));
    }

    #[test]
    fn fig9_off_glitch_window() {
        let t = fig9(Ps::from_ns(1), Ps::ZERO);
        let w = t.off_glitch_window().unwrap();
        // (LB - D_react, UB - L - D_react) = (1ns, 4ns).
        assert_eq!(w.lo, Ps::from_ns(1));
        assert_eq!(w.hi, Ps::from_ns(4));
    }

    #[test]
    fn late_arrival_shrinks_or_kills_window() {
        // Data arrives so late that T_arrival + D_ready exceeds UB.
        let t = fig9(Ps::from_ns(6), Ps::from_ns(3));
        assert!(t.on_glitch_window().is_none());
        assert!(!t.eq3_ok());
    }

    #[test]
    fn d_ready_pushes_lower_bound() {
        let t = fig9(Ps::from_ns(3), Ps::from_ns(3));
        let w = t.on_glitch_window().unwrap();
        // lo = max(6ns, 3+3=6ns) = 6ns.
        assert_eq!(w.lo, Ps::from_ns(6));
        assert!(t.eq3_ok(), "1 <= 6 <= 7");
    }

    #[test]
    fn short_glitch_cannot_transmit_on_level() {
        let mut t = fig9(Ps::from_ns(1), Ps::ZERO);
        t.l_glitch = Ps(1500); // < setup + hold = 2ns
        assert!(t.on_glitch_window().is_none());
    }

    #[test]
    fn eq4_uses_slowest_branch() {
        let t = fig9(Ps::from_ns(3), Ps::ZERO);
        assert!(t.eq4_ok(Ps::from_ns(3)), "3+3 = 6 <= 7");
        assert!(!t.eq4_ok(Ps::from_ns(5)), "3+5 = 8 > 7");
    }

    #[test]
    fn d_react_shifts_windows() {
        let mut t = fig9(Ps::from_ns(1), Ps::ZERO);
        t.d_react = Ps(200);
        let w = t.on_glitch_window().unwrap();
        assert_eq!(w.lo, Ps(5800), "T_j + T_hold - L - D_react");
        assert_eq!(w.hi, Ps(6800), "UB - D_react");
    }

    #[test]
    fn skewed_capture_clock() {
        let mut t = fig9(Ps::from_ns(1), Ps::ZERO);
        t.t_j = Ps::from_ns(1);
        assert_eq!(t.lb(), Ps::from_ns(2));
        assert_eq!(t.ub(), Ps::from_ns(8));
    }

    #[test]
    fn eq3_holds_exactly_at_both_bounds() {
        // Eq. (3) bounds are inclusive: total == LB and total == UB pass,
        // one picosecond outside either fails.
        assert!(fig9(Ps::from_ns(1), Ps::ZERO).eq3_ok(), "total == LB");
        assert!(!fig9(Ps(999), Ps::ZERO).eq3_ok(), "total == LB - 1");
        assert!(fig9(Ps::from_ns(7), Ps::ZERO).eq3_ok(), "total == UB");
        assert!(!fig9(Ps(7001), Ps::ZERO).eq3_ok(), "total == UB + 1");
    }

    #[test]
    fn eq4_holds_exactly_at_both_bounds() {
        let t = fig9(Ps::from_ns(1), Ps::ZERO);
        assert!(t.eq4_ok(Ps::ZERO), "total == LB");
        assert!(t.eq4_ok(Ps::from_ns(6)), "total == UB");
        assert!(!t.eq4_ok(Ps(6001)), "total == UB + 1");
        assert!(!fig9(Ps(500), Ps::ZERO).eq4_ok(Ps(499)), "total == LB - 1");
    }

    #[test]
    fn zero_width_on_glitch_window_is_none() {
        // T_arrival + D_ready == hi makes lo == hi; the open interval is
        // empty even though Eq. (3) is still satisfied at the boundary.
        let t = fig9(Ps::from_ns(4), Ps::from_ns(3));
        assert!(t.eq3_ok(), "total == UB is Eq.(3)-legal");
        assert!(t.on_glitch_window().is_none(), "but no strict trigger time");
    }

    #[test]
    fn zero_width_off_glitch_window_is_none() {
        // Data ready exactly at hi = UB - L: (4ns, 4ns) is empty.
        let t = fig9(Ps::from_ns(2), Ps::from_ns(2));
        assert!(t.off_glitch_window().is_none());
    }

    #[test]
    fn minimal_glitch_covers_one_point_but_window_is_empty() {
        // With L exactly setup + hold there is a single covering trigger
        // (closed-bound cover at 7ns) but the open window (7ns, 7ns) is
        // empty — the insertion flow rightly rejects such a GK.
        let mut t = fig9(Ps::from_ns(1), Ps::ZERO);
        t.l_glitch = Ps::from_ns(2);
        assert!(t.glitch_covers_window(Ps::from_ns(7)));
        assert!(t.on_glitch_window().is_none());
    }

    #[test]
    fn glitch_cover_is_closed_at_both_ends() {
        let t = fig9(Ps::from_ns(1), Ps::ZERO);
        // Earliest legal trigger: end == capture + hold exactly.
        assert!(t.glitch_covers_window(Ps::from_ns(6)));
        // Latest legal trigger: start + setup == capture exactly.
        assert!(t.glitch_covers_window(Ps::from_ns(7)));
        // One picosecond outside either end fails.
        assert!(!t.glitch_covers_window(Ps(5999)));
        assert!(!t.glitch_covers_window(Ps(7001)));
    }
}
