//! Design withholding (Khaleghi et al. \[5\], Liu & Wang \[6\]; paper Sec. V-D
//! and Fig. 10).
//!
//! Withholding stores a subcircuit's truth table in a LUT that is not
//! externally readable: the chip operates normally, but the attacker's
//! netlist shows an opaque `k`-input box. Combined with a GK (Fig. 10 — a
//! reused AND gate absorbed together with the key-gate), the *enhanced*
//! removal attack of Sec. V-D can no longer model the security structure:
//! it would have to enumerate all `2^(2^k)` candidate functions.

use crate::util::promote_to_inputs;
use crate::CoreError;
use glitchlock_netlist::{
    CellId, EvalProgram, GateKind, Logic, NetId, Netlist, PackedLogic, LANES,
};
use std::collections::HashSet;

/// A withheld region: the opaque LUT the attacker sees only as a box, and
/// the truth table the fab programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lut {
    /// The cut nets feeding the LUT, in table-index bit order (bit 0 =
    /// first input).
    pub inputs: Vec<NetId>,
    /// The net the LUT drives.
    pub output: NetId,
    /// Truth table, indexed by the input bits.
    pub table: Vec<bool>,
}

impl Lut {
    /// Number of LUT inputs.
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }

    /// Evaluates the withheld function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity());
        let ix = inputs
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
        self.table[ix]
    }

    /// How many distinct `k`-input functions an attacker must consider when
    /// the region is withheld: `2^(2^k)` (Sec. V-D's argument).
    pub fn candidate_function_count(arity: usize) -> f64 {
        2f64.powf(2f64.powi(arity as i32))
    }
}

/// Absorbs the combinational cone driving `output` (up to `max_inputs` cut
/// nets) into a withheld LUT. Returns the attacker's view — the cone's
/// cells removed, the LUT output promoted to an opaque free input — and the
/// LUT itself.
///
/// # Errors
///
/// * [`CoreError::NotEnoughSites`] if the cone's support exceeds
///   `max_inputs` (LUT size limit).
/// * [`CoreError::Netlist`] if `output` has no combinational driver.
pub fn absorb_cone(
    netlist: &Netlist,
    output: NetId,
    max_inputs: usize,
) -> Result<(Netlist, Lut), CoreError> {
    let driver = netlist
        .net(output)
        .driver()
        .filter(|&d| netlist.cell(d).kind().is_combinational())
        .ok_or_else(|| CoreError::Netlist("LUT output needs a combinational driver".into()))?;

    // Collect the cone's cells and its input cut (nets driven from outside
    // the cone).
    let mut cone: HashSet<CellId> = HashSet::new();
    let mut cut: Vec<NetId> = Vec::new();
    let mut stack = vec![driver];
    while let Some(cell) = stack.pop() {
        if !cone.insert(cell) {
            continue;
        }
        for &inp in netlist.cell(cell).inputs() {
            let d = netlist.net(inp).driver();
            match d {
                Some(dc)
                    if netlist.cell(dc).kind().is_combinational()
                        && cone.len() < 64
                        && !matches!(
                            netlist.cell(dc).kind(),
                            GateKind::Const0 | GateKind::Const1
                        ) =>
                {
                    stack.push(dc);
                }
                _ => {
                    if !cut.contains(&inp) {
                        cut.push(inp);
                    }
                }
            }
        }
    }
    // Re-derive the cut precisely: inputs of cone cells driven by non-cone
    // cells (the greedy walk above may have stopped early on size).
    let mut cut: Vec<NetId> = Vec::new();
    for &cell in &cone {
        for &inp in netlist.cell(cell).inputs() {
            let from_cone = netlist
                .net(inp)
                .driver()
                .map(|d| cone.contains(&d))
                .unwrap_or(false);
            if !from_cone && !cut.contains(&inp) {
                cut.push(inp);
            }
        }
    }
    cut.sort();
    if cut.len() > max_inputs {
        return Err(CoreError::NotEnoughSites {
            requested: max_inputs,
            available: cut.len(),
        });
    }

    // Truth table by bit-parallel sweep: every cut net is *forced* to its
    // table-index bit inside the compiled program, 64 rows per pass. Every
    // non-cut input of a cone cell is cone-internal by construction, so
    // forcing the cut fully determines the output.
    let k = cut.len();
    let program = EvalProgram::compile(netlist).map_err(|e| CoreError::Netlist(e.to_string()))?;
    let mut buf = program.scratch();
    let x_inputs = vec![PackedLogic::X; program.num_inputs()];
    let rows = 1usize << k;
    let mut table = Vec::with_capacity(rows);
    let mut base = 0usize;
    while base < rows {
        let lanes = LANES.min(rows - base);
        let forced: Vec<(NetId, PackedLogic)> = cut
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut w = PackedLogic::ZERO;
                for lane in 0..lanes {
                    w.set(lane, Logic::from_bool((base + lane) >> i & 1 == 1));
                }
                (n, w)
            })
            .collect();
        program.eval_forced(&x_inputs, None, &forced, &mut buf);
        let out = buf.net(output);
        for lane in 0..lanes {
            table.push(
                out.get(lane)
                    .to_bool()
                    .ok_or_else(|| CoreError::Netlist("withheld cone evaluated to X".into()))?,
            );
        }
        base += lanes;
    }

    let attacker_view = promote_to_inputs(
        netlist,
        &[(output, format!("lut_{}", netlist.net(output).name()))],
        &cone,
    )?;
    Ok((
        attacker_view,
        Lut {
            inputs: cut,
            output,
            table,
        },
    ))
}

/// An opaque region in an attacker's view: the free input standing in for
/// a withheld LUT's output, plus the LUT's arity (all an attacker can see).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpaqueRegion {
    /// The promoted input net (in the attacker-view netlist).
    pub input: NetId,
    /// The promoted input's name.
    pub name: String,
    /// LUT input count.
    pub arity: usize,
}

/// Applies Fig. 10's combined defense to a GK attacker view: for each GK
/// (found by its `gk{i}_key` input), the cone feeding its data input `x`
/// is absorbed into a withheld LUT (up to `max_inputs` wide; GKs whose
/// cones are wider are skipped). Returns the hardened view, the opaque
/// regions, and the withheld truth tables (fab-side secrets).
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] on structural failures during rebuilds.
pub fn withhold_gk_inputs(
    attack_view: &Netlist,
    max_inputs: usize,
) -> Result<(Netlist, Vec<OpaqueRegion>, Vec<Lut>), CoreError> {
    let mut view = attack_view.clone();
    let mut regions = Vec::new();
    let mut luts = Vec::new();
    // Each round re-finds one unprocessed GK by key-input name, since every
    // absorption rebuilds the netlist and renumbers nets.
    let mut gk_index = 0usize;
    loop {
        let key_name = format!("gk{gk_index}_key");
        let Some(key_net) = view.net_by_name(&key_name) else {
            break;
        };
        gk_index += 1;
        // The GK mux: the Mux2 whose select pin reads the key input.
        let Some(&(mux, _)) = view
            .net(key_net)
            .fanout()
            .iter()
            .find(|&&(c, pin)| view.cell(c).kind() == GateKind::Mux2 && pin == 2)
        else {
            continue; // already replaced or unusual structure
        };
        // x = the shared data input of the two branch gates.
        let ins = view.cell(mux).inputs().to_vec();
        let branch_inputs = |n: NetId| -> Vec<NetId> {
            view.net(n)
                .driver()
                .map(|d| view.cell(d).inputs().to_vec())
                .unwrap_or_default()
        };
        let (b0, b1) = (branch_inputs(ins[0]), branch_inputs(ins[1]));
        let Some(&x) = b0.iter().find(|n| b1.contains(n)) else {
            continue;
        };
        // Opaque-ify x's cone, if it is absorbable (driven by logic and
        // narrow enough).
        match absorb_cone(&view, x, max_inputs) {
            Ok((new_view, lut)) => {
                let name = format!("lut_{}", view.net(x).name());
                let input = new_view
                    .net_by_name(&name)
                    .expect("absorption promoted the named input");
                regions.push(OpaqueRegion {
                    input,
                    name,
                    arity: lut.arity(),
                });
                luts.push(lut);
                view = new_view;
                // Net ids of previously recorded regions changed: re-find
                // them by name.
                for r in &mut regions {
                    r.input = view
                        .net_by_name(&r.name)
                        .expect("opaque inputs survive later rebuilds");
                }
            }
            Err(_) => continue, // cone too wide or not absorbable: skip
        }
    }
    Ok((view, regions, luts))
}

/// Scalar recursive cone evaluation — the reference the packed forced-net
/// sweep in [`absorb_cone`] is checked against in the tests.
#[cfg(test)]
fn eval_cone(
    netlist: &Netlist,
    cone: &HashSet<CellId>,
    net: NetId,
    values: &mut Vec<Option<Logic>>,
) -> Logic {
    if let Some(v) = values[net.index()] {
        return v;
    }
    let Some(driver) = netlist.net(net).driver() else {
        return Logic::X;
    };
    if !cone.contains(&driver) {
        // Outside the cone and not a cut value: constants are allowed.
        let v = match netlist.cell(driver).kind() {
            GateKind::Const0 => Logic::Zero,
            GateKind::Const1 => Logic::One,
            _ => Logic::X,
        };
        values[net.index()] = Some(v);
        return v;
    }
    let cell = netlist.cell(driver);
    let ins: Vec<Logic> = cell
        .inputs()
        .iter()
        .map(|&n| eval_cone(netlist, cone, n, values))
        .collect();
    let v = cell.kind().eval(&ins);
    values[net.index()] = Some(v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 10's shape: an AND gate feeding a cone that gets absorbed.
    fn circuit() -> (Netlist, NetId) {
        let mut nl = Netlist::new("w");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let and1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let region = nl.add_gate(GateKind::Xor, &[and1, c]).unwrap();
        let y = nl.add_gate(GateKind::Inv, &[region]).unwrap();
        nl.mark_output(y, "y");
        (nl, region)
    }

    #[test]
    fn lut_table_matches_cone_function() {
        let (nl, region) = circuit();
        let (_view, lut) = absorb_cone(&nl, region, 4).unwrap();
        assert_eq!(lut.arity(), 3);
        // region = (a & b) ^ c over cut {a, b, c} (cut order is sorted net
        // id order = a, b, c here).
        for bits in 0u8..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = (ins[0] && ins[1]) ^ ins[2];
            assert_eq!(lut.eval(&ins), expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn packed_table_sweep_matches_scalar_cone_eval() {
        // Rebuild the cone walk of absorb_cone by hand and check the packed
        // forced-net table against the recursive scalar evaluator, row by
        // row — including a DFF Q net and a constant in the cut.
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let q = nl.add_dff(a).unwrap();
        let one = nl.add_const(true);
        let g1 = nl.add_gate(GateKind::Nand, &[a, q]).unwrap();
        let g2 = nl.add_gate(GateKind::Mux2, &[g1, b, one]).unwrap();
        let region = nl.add_gate(GateKind::Xnor, &[g1, g2]).unwrap();
        let y = nl.add_gate(GateKind::Buf, &[region]).unwrap();
        nl.mark_output(y, "y");
        let (_view, lut) = absorb_cone(&nl, region, 5).unwrap();
        // Scalar reference over the same cut order.
        let mut cone = HashSet::new();
        for (cell_id, cell) in nl.cells() {
            if [g1, g2, region].contains(&cell.output()) {
                cone.insert(cell_id);
            }
        }
        for bits in 0usize..1 << lut.arity() {
            let ins: Vec<bool> = (0..lut.arity()).map(|i| bits >> i & 1 == 1).collect();
            let mut values: Vec<Option<Logic>> = vec![None; nl.net_count()];
            for (i, &n) in lut.inputs.iter().enumerate() {
                values[n.index()] = Some(Logic::from_bool(ins[i]));
            }
            let expect = eval_cone(&nl, &cone, region, &mut values);
            assert_eq!(Logic::from_bool(lut.eval(&ins)), expect, "row {bits:b}");
        }
    }

    #[test]
    fn attacker_view_hides_the_cone() {
        let (nl, region) = circuit();
        let (view, _lut) = absorb_cone(&nl, region, 4).unwrap();
        // The AND and XOR are gone; the inverter reads an opaque input.
        assert_eq!(view.stats().gates, 1);
        assert_eq!(view.input_nets().len(), 4, "a, b, c, lut output");
        view.validate().unwrap();
    }

    #[test]
    fn oversized_cone_is_rejected() {
        let (nl, region) = circuit();
        let err = absorb_cone(&nl, region, 2).unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughSites { .. }));
    }

    #[test]
    fn candidate_count_grows_double_exponentially() {
        assert_eq!(Lut::candidate_function_count(1), 4.0);
        assert_eq!(Lut::candidate_function_count(2), 16.0);
        assert_eq!(Lut::candidate_function_count(3), 256.0);
        assert!(Lut::candidate_function_count(5) > 4e9);
    }

    #[test]
    fn integrated_flow_absorbs_gk_cones() {
        use crate::gk::{build_gk, GkDesign};
        use glitchlock_stdcell::Library;
        // A GK attacker-view shape: x has a private cone (NAND of two
        // inputs), the GK key is the `gk0_key` input.
        let lib = Library::cl013g_like();
        let mut view = Netlist::new("v");
        let a = view.add_input("a");
        let b = view.add_input("b");
        let x = view.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let key = view.add_input("gk0_key");
        let gk = build_gk(&mut view, &lib, x, key, &GkDesign::paper_default()).unwrap();
        let q = view.add_dff(gk.y).unwrap();
        view.mark_output(q, "q");

        let (hardened, regions, luts) = withhold_gk_inputs(&view, 4).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(luts.len(), 1);
        assert_eq!(luts[0].arity(), 2, "NAND cone has a 2-input cut");
        // The opaque input exists and feeds the GK branches.
        let opaque = hardened.net_by_name(&regions[0].name).unwrap();
        assert_eq!(opaque, regions[0].input);
        assert!(hardened.net(opaque).fanout().len() >= 2);
        // The NAND itself is gone from the hardened view.
        assert!(
            hardened.cells().all(|(_, c)| c.kind() != GateKind::Nand),
            "the withheld cone must not appear in the attacker's view"
        );
        // The truth table is the NAND.
        assert!(!luts[0].eval(&[true, true]));
        assert!(luts[0].eval(&[false, true]));
    }

    #[test]
    fn integrated_flow_skips_wide_or_shared_cones() {
        use crate::gk::{build_gk, GkDesign};
        use glitchlock_stdcell::Library;
        let lib = Library::cl013g_like();
        let mut view = Netlist::new("v");
        let ins: Vec<_> = (0..6).map(|i| view.add_input(format!("i{i}"))).collect();
        // x's cone has a 6-input cut: wider than the max of 3.
        let g1 = view
            .add_gate(GateKind::And, &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = view
            .add_gate(GateKind::Or, &[ins[3], ins[4], ins[5]])
            .unwrap();
        let x = view.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        let key = view.add_input("gk0_key");
        let gk = build_gk(&mut view, &lib, x, key, &GkDesign::paper_default()).unwrap();
        let q = view.add_dff(gk.y).unwrap();
        view.mark_output(q, "q");
        let (hardened, regions, _) = withhold_gk_inputs(&view, 3).unwrap();
        assert!(
            regions.is_empty(),
            "wide cone must be skipped, not absorbed"
        );
        assert_eq!(hardened.stats().cells, view.stats().cells);
    }

    #[test]
    fn output_without_comb_driver_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.mark_output(a, "y");
        let err = absorb_cone(&nl, a, 4).unwrap_err();
        assert!(matches!(err, CoreError::Netlist(_)));
    }
}
