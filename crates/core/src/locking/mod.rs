//! Baseline logic-locking schemes the paper positions GK against.
//!
//! * [`XorLock`] — classic XOR/XNOR key-gates (Roy et al. \[9\], Fig. 1):
//!   broken by the SAT attack.
//! * [`MuxLock`] — MUX key-gates selecting between the true signal and a
//!   decoy.
//! * [`Tdk`] — Tunable Delay Key-gate delay locking (Xie et al. \[12\],
//!   Fig. 2): defeated by removal + re-synthesis + SAT.
//! * [`SarLock`] — SARLock point-function locking \[14\]: SAT-resistant but
//!   located by probability-skew removal attacks.
//! * [`AntiSat`] — Anti-SAT \[13\]: same fate.

mod antisat;
mod mux;
mod sarlock;
mod tdk;
mod xor;

pub use antisat::AntiSat;
pub use mux::MuxLock;
pub use sarlock::SarLock;
pub use tdk::{Tdk, TdkLocked};
pub use xor::XorLock;

use crate::CoreError;
use glitchlock_netlist::{NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use rand::RngCore;

/// A combinationally-keyed locked design (static key bits).
#[derive(Clone, Debug)]
pub struct Locked {
    /// The locked netlist (key inputs are extra primary inputs).
    pub netlist: Netlist,
    /// The original design (the attack oracle).
    pub original: Netlist,
    /// The key-input nets in key order.
    pub key_inputs: Vec<NetId>,
    /// The correct key.
    pub correct_key: Vec<bool>,
}

impl Locked {
    /// Key width.
    pub fn key_width(&self) -> usize {
        self.key_inputs.len()
    }

    /// Full input vector for [`Netlist::eval_comb`] on the locked netlist:
    /// the data inputs followed-or-interleaved per the netlist's input
    /// order, with key inputs taken from `key`.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree.
    pub fn assemble_inputs(
        &self,
        data: &[glitchlock_netlist::Logic],
        key: &[bool],
    ) -> Vec<glitchlock_netlist::Logic> {
        assert_eq!(key.len(), self.key_inputs.len());
        let mut out = Vec::with_capacity(self.netlist.input_nets().len());
        let mut di = 0;
        for &net in self.netlist.input_nets() {
            if let Some(ki) = self.key_inputs.iter().position(|&k| k == net) {
                out.push(glitchlock_netlist::Logic::from_bool(key[ki]));
            } else {
                out.push(data[di]);
                di += 1;
            }
        }
        assert_eq!(di, data.len(), "data width mismatch");
        out
    }
}

/// A logic-locking scheme producing statically-keyed designs.
pub trait LockScheme {
    /// Locks `original`, adding key inputs and returning the correct key.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotEnoughSites`] when the design is too small
    /// for the requested key width.
    fn lock(&self, original: &Netlist, rng: &mut dyn RngCore) -> Result<Locked, CoreError>;
}

/// Splices a key-gate in series on `net`: every existing reader of `net`
/// (including primary-output bindings) is rewired to the new gate's output.
/// Returns the new gate's output net.
pub(crate) fn splice_on_net(
    netlist: &mut Netlist,
    net: NetId,
    kind: glitchlock_netlist::GateKind,
    extra_inputs: &[NetId],
) -> Result<NetId, CoreError> {
    let old_fanout: Vec<_> = netlist.net(net).fanout().to_vec();
    let mut ins = vec![net];
    ins.extend_from_slice(extra_inputs);
    let y = netlist.add_gate(kind, &ins)?;
    for (cell, pin) in old_fanout {
        netlist.rewire_input(cell, pin, y)?;
    }
    netlist.rewire_output_po(net, y);
    Ok(y)
}

/// Candidate nets for in-series key-gate insertion: nets driven by logic or
/// inputs (not constants), excluding nets already created for keys.
pub(crate) fn lockable_nets(netlist: &Netlist) -> Vec<NetId> {
    use glitchlock_netlist::GateKind;
    netlist
        .nets()
        .filter(|(_, n)| {
            n.driver()
                .map(|d| {
                    let k = netlist.cell(d).kind();
                    !matches!(k, GateKind::Const0 | GateKind::Const1)
                })
                .unwrap_or(false)
        })
        .filter(|(id, n)| {
            !n.fanout().is_empty() || netlist.output_ports().iter().any(|&(po, _)| po == *id)
        })
        .map(|(id, _)| id)
        .collect()
}

/// Records one completed lock in the obs registry: bumps the shared
/// scheme counters and (when tracing) emits a `result` event naming the
/// scheme and its key width.
pub(crate) fn record_lock(scheme: &str, key_bits: usize) {
    let collector = obs::current();
    collector.counter(names::LOCK_DESIGNS).incr();
    collector.counter(names::LOCK_KEYBITS).add(key_bits as u64);
    obs::event("result", scheme)
        .u64("key_width", key_bits as u64)
        .emit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::{GateKind, Logic};

    #[test]
    fn splice_rewires_all_readers_and_pos() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let y1 = nl.add_gate(GateKind::Inv, &[w]).unwrap();
        nl.mark_output(w, "w");
        nl.mark_output(y1, "y1");
        let k = nl.add_input("k");
        let new = splice_on_net(&mut nl, w, GateKind::Xor, &[k]).unwrap();
        // Old readers now read the key-gate.
        assert_eq!(nl.output_ports()[0].0, new);
        let inv = nl.net(y1).driver().unwrap();
        assert_eq!(nl.cell(inv).inputs()[0], new);
        // The key-gate reads the original net.
        assert_eq!(nl.net(w).fanout().len(), 1);
        // Behaviour: k = 0 transparent, k = 1 inverts.
        assert_eq!(
            nl.eval_comb(&[Logic::One, Logic::One, Logic::Zero]),
            vec![Logic::One, Logic::Zero]
        );
        assert_eq!(
            nl.eval_comb(&[Logic::One, Logic::One, Logic::One]),
            vec![Logic::Zero, Logic::One]
        );
    }

    #[test]
    fn lockable_nets_exclude_constants_and_dead() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let c = nl.add_const(true);
        let y = nl.add_gate(GateKind::And, &[a, c]).unwrap();
        nl.mark_output(y, "y");
        let sites = lockable_nets(&nl);
        assert!(sites.contains(&a));
        assert!(sites.contains(&y));
        assert!(!sites.contains(&c));
    }
}
