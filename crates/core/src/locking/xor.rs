//! Classic XOR/XNOR logic locking (Roy et al. \[9\]; paper Fig. 1).

use crate::locking::{lockable_nets, splice_on_net, LockScheme, Locked};
use crate::CoreError;
use glitchlock_netlist::{GateKind, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Inserts `n_bits` XOR/XNOR key-gates in series on random nets. An XOR
/// gate is transparent under key 0 (its correct key bit), an XNOR gate
/// under key 1 — so an attacker cannot tell buffers from inverters without
/// the key (Fig. 1's argument).
#[derive(Clone, Copy, Debug)]
pub struct XorLock {
    /// Number of key bits / key-gates.
    pub n_bits: usize,
}

impl XorLock {
    /// A lock with `n_bits` key-gates.
    pub fn new(n_bits: usize) -> Self {
        XorLock { n_bits }
    }
}

impl LockScheme for XorLock {
    fn lock(&self, original: &Netlist, rng: &mut dyn RngCore) -> Result<Locked, CoreError> {
        let mut netlist = original.clone();
        let mut sites = lockable_nets(&netlist);
        if sites.len() < self.n_bits {
            return Err(CoreError::NotEnoughSites {
                requested: self.n_bits,
                available: sites.len(),
            });
        }
        sites.shuffle(rng);
        let mut key_inputs = Vec::with_capacity(self.n_bits);
        let mut correct_key = Vec::with_capacity(self.n_bits);
        for (i, &site) in sites.iter().take(self.n_bits).enumerate() {
            let key = netlist.add_input(format!("key{i}"));
            let use_xnor: bool = rng.gen();
            let kind = if use_xnor {
                GateKind::Xnor
            } else {
                GateKind::Xor
            };
            splice_on_net(&mut netlist, site, kind, &[key])?;
            key_inputs.push(key);
            correct_key.push(use_xnor);
        }
        netlist.validate()?;
        crate::locking::record_lock("lock_xor", key_inputs.len());
        Ok(Locked {
            netlist,
            original: original.clone(),
            key_inputs,
            correct_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> Netlist {
        let mut nl = Netlist::new("add");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let s1 = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let s = nl.add_gate(GateKind::Xor, &[s1, c]).unwrap();
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[s1, c]).unwrap();
        let co = nl.add_gate(GateKind::Or, &[g1, g2]).unwrap();
        nl.mark_output(s, "s");
        nl.mark_output(co, "co");
        nl
    }

    #[test]
    fn correct_key_recovers_function_exhaustively() {
        let nl = adder();
        let mut rng = StdRng::seed_from_u64(3);
        let locked = XorLock::new(4).lock(&nl, &mut rng).unwrap();
        assert_eq!(locked.key_width(), 4);
        for bits in 0u8..8 {
            let data: Vec<Logic> = (0..3)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            let expect = nl.eval_comb(&data);
            let inputs = locked.assemble_inputs(&data, &locked.correct_key);
            assert_eq!(locked.netlist.eval_comb(&inputs), expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn some_wrong_key_corrupts_some_input() {
        let nl = adder();
        let mut rng = StdRng::seed_from_u64(4);
        let locked = XorLock::new(3).lock(&nl, &mut rng).unwrap();
        let mut wrong = locked.correct_key.clone();
        wrong[0] = !wrong[0];
        let corrupted = (0u8..8).any(|bits| {
            let data: Vec<Logic> = (0..3)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            let expect = nl.eval_comb(&data);
            let inputs = locked.assemble_inputs(&data, &wrong);
            locked.netlist.eval_comb(&inputs) != expect
        });
        assert!(
            corrupted,
            "flipping a key bit must corrupt at least one pattern"
        );
    }

    #[test]
    fn too_many_bits_rejected() {
        let nl = adder();
        let mut rng = StdRng::seed_from_u64(5);
        let err = XorLock::new(1000).lock(&nl, &mut rng).unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughSites { .. }));
    }

    #[test]
    fn key_gate_count_matches_bits() {
        let nl = adder();
        let mut rng = StdRng::seed_from_u64(6);
        let locked = XorLock::new(4).lock(&nl, &mut rng).unwrap();
        let before = nl.stats().gates;
        assert_eq!(locked.netlist.stats().gates, before + 4);
    }
}
