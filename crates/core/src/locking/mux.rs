//! MUX-based logic locking: each key bit selects between the true signal
//! and a decoy signal.

use crate::locking::{lockable_nets, LockScheme, Locked};
use crate::CoreError;
use glitchlock_netlist::{GateKind, NetId, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Inserts `n_bits` 2:1 MUX key-gates. Each selects the true net under the
/// correct key bit and a random decoy net otherwise.
#[derive(Clone, Copy, Debug)]
pub struct MuxLock {
    /// Number of key bits / key-gates.
    pub n_bits: usize,
}

impl MuxLock {
    /// A lock with `n_bits` MUX key-gates.
    pub fn new(n_bits: usize) -> Self {
        MuxLock { n_bits }
    }
}

impl LockScheme for MuxLock {
    fn lock(&self, original: &Netlist, rng: &mut dyn RngCore) -> Result<Locked, CoreError> {
        let mut netlist = original.clone();
        let mut sites = lockable_nets(&netlist);
        if sites.len() < self.n_bits + 1 {
            return Err(CoreError::NotEnoughSites {
                requested: self.n_bits,
                available: sites.len().saturating_sub(1),
            });
        }
        sites.shuffle(rng);
        let decoy_pool = sites.clone();
        let mut key_inputs = Vec::with_capacity(self.n_bits);
        let mut correct_key = Vec::with_capacity(self.n_bits);
        let mut locked_count = 0;
        let mut site_iter = sites.into_iter();
        while locked_count < self.n_bits {
            let Some(site) = site_iter.next() else {
                return Err(CoreError::NotEnoughSites {
                    requested: self.n_bits,
                    available: locked_count,
                });
            };
            // Try decoys until the insertion stays acyclic.
            match self.try_insert(&mut netlist, site, &decoy_pool, locked_count, rng)? {
                Some((key, bit)) => {
                    key_inputs.push(key);
                    correct_key.push(bit);
                    locked_count += 1;
                }
                None => continue,
            }
        }
        netlist.validate()?;
        crate::locking::record_lock("lock_mux", key_inputs.len());
        Ok(Locked {
            netlist,
            original: original.clone(),
            key_inputs,
            correct_key,
        })
    }
}

impl MuxLock {
    fn try_insert(
        &self,
        netlist: &mut Netlist,
        site: NetId,
        decoy_pool: &[NetId],
        index: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Option<(NetId, bool)>, CoreError> {
        for _attempt in 0..8 {
            let decoy = decoy_pool[rng.gen_range(0..decoy_pool.len())];
            if decoy == site {
                continue;
            }
            let snapshot = netlist.clone();
            let key = netlist.add_input(format!("key{index}"));
            // Correct bit random: bit=0 means the true signal is on in0.
            let bit: bool = rng.gen();
            let y = if bit {
                // sel=1 selects in1 = true signal.
                let y = netlist.add_gate(GateKind::Mux2, &[decoy, site, key])?;
                self.rewire(netlist, site, y)?;
                y
            } else {
                let y = netlist.add_gate(GateKind::Mux2, &[site, decoy, key])?;
                self.rewire(netlist, site, y)?;
                y
            };
            let _ = y;
            if netlist.topo_order().is_ok() {
                return Ok(Some((key, bit)));
            }
            // Cycle through the decoy: roll back and retry.
            *netlist = snapshot;
        }
        Ok(None)
    }

    fn rewire(&self, netlist: &mut Netlist, site: NetId, y: NetId) -> Result<(), CoreError> {
        // Move the *original* readers of `site` (snapshot excludes the mux
        // itself, which was appended last and reads `site`).
        let readers: Vec<_> = netlist
            .net(site)
            .fanout()
            .iter()
            .copied()
            .filter(|&(c, _)| c != netlist.net(y).driver().expect("mux drives y"))
            .collect();
        for (cell, pin) in readers {
            netlist.rewire_input(cell, pin, y)?;
        }
        netlist.rewire_output_po(site, y);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn circuit() -> Netlist {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w1 = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let w2 = nl.add_gate(GateKind::Nor, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[w1, w2]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn correct_key_preserves_function() {
        let nl = circuit();
        let mut rng = StdRng::seed_from_u64(11);
        let locked = MuxLock::new(2).lock(&nl, &mut rng).unwrap();
        for bits in 0u8..4 {
            let data: Vec<Logic> = (0..2)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            let expect = nl.eval_comb(&data);
            let inputs = locked.assemble_inputs(&data, &locked.correct_key);
            assert_eq!(locked.netlist.eval_comb(&inputs), expect, "bits {bits:02b}");
        }
    }

    #[test]
    fn result_is_acyclic_across_seeds() {
        let nl = circuit();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let locked = MuxLock::new(2).lock(&nl, &mut rng).unwrap();
            locked.netlist.validate().unwrap();
        }
    }

    #[test]
    fn too_many_bits_rejected() {
        let nl = circuit();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            MuxLock::new(50).lock(&nl, &mut rng),
            Err(CoreError::NotEnoughSites { .. })
        ));
    }
}
