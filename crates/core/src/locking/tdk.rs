//! Tunable Delay Key-gate (TDK) delay locking (Xie & Srivastava \[12\];
//! paper Fig. 2).
//!
//! Each TDK combines a functional XOR key-gate (key `k1`) with a Tunable
//! Delay Buffer — a 2:1 MUX between a fast buffer and a slow delay chain,
//! selected by the delay key `k2`. A wrong `k2` routes the data through the
//! wrong branch, violating setup (slow branch) or hold (the paper's
//! Fig. 2(d) case is modelled as picking the wrong branch for the signed-off
//! period). The paper's critique (Sec. I): the TDB is *removable* — strip
//! it, re-synthesize, and the remaining XOR locking falls to the SAT
//! attack. `glitchlock-attacks` implements exactly that.

use crate::locking::{LockScheme, Locked};
use crate::CoreError;
use glitchlock_netlist::{CellId, GateKind, Netlist};
use glitchlock_stdcell::{Library, Ps};
use glitchlock_synth::compose_delay;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// One inserted TDK's structural record.
#[derive(Clone, Debug)]
pub struct TdkInfo {
    /// The flip-flop whose D path carries this TDK.
    pub target_ff: CellId,
    /// The TDB's MUX cell (what a removal attack strips).
    pub tdb_mux: CellId,
    /// The slow branch's delay cells.
    pub slow_cells: Vec<CellId>,
    /// Which MUX side is the fast (correct) branch: `false` = in0.
    pub fast_is_in1: bool,
}

/// A TDK-locked design: the static [`Locked`] view plus TDB records.
#[derive(Clone, Debug)]
pub struct TdkLocked {
    /// The locked design; key order is `[k1 (functional), k2 (delay)]` per
    /// TDK.
    pub locked: Locked,
    /// Per-TDK structural records.
    pub tdks: Vec<TdkInfo>,
}

/// Inserts `n` TDKs, each on a distinct flip-flop's D path.
#[derive(Clone, Copy, Debug)]
pub struct Tdk {
    /// Number of TDKs (2 key bits each).
    pub n: usize,
    /// Extra delay of the slow branch.
    pub slow_extra: Ps,
}

impl Tdk {
    /// `n` TDKs with the default 1.2ns slow branch.
    pub fn new(n: usize) -> Self {
        Tdk {
            n,
            slow_extra: Ps(1200),
        }
    }

    /// Locks with an explicit library (TDKs need delay-element mapping, so
    /// this is the primary entry point; the [`LockScheme`] impl uses the
    /// default library).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotEnoughSites`] when the design has fewer flip-flops
    /// than requested TDKs.
    pub fn lock_with_library(
        &self,
        original: &Netlist,
        library: &Library,
        rng: &mut dyn RngCore,
    ) -> Result<TdkLocked, CoreError> {
        let mut netlist = original.clone();
        let mut ffs: Vec<CellId> = netlist.dff_cells().to_vec();
        if ffs.len() < self.n {
            return Err(CoreError::NotEnoughSites {
                requested: self.n,
                available: ffs.len(),
            });
        }
        ffs.shuffle(rng);
        let mut key_inputs = Vec::new();
        let mut correct_key = Vec::new();
        let mut tdks = Vec::new();
        for (i, &ff) in ffs.iter().take(self.n).enumerate() {
            let d = netlist.cell(ff).inputs()[0];
            // Functional key-gate: XOR (correct k1 = 0) or XNOR (k1 = 1).
            let k1 = netlist.add_input(format!("tdk{i}_k1"));
            let use_xnor: bool = rng.gen();
            let kind = if use_xnor {
                GateKind::Xnor
            } else {
                GateKind::Xor
            };
            let xored = netlist.add_gate(kind, &[d, k1])?;
            // TDB: fast buffer vs slow chain, muxed by k2.
            let fast = netlist.add_gate(GateKind::Buf, &[xored])?;
            let (slow, slow_cells, _) =
                compose_delay(&mut netlist, library, xored, self.slow_extra, Ps(60))?;
            let fast_is_in1: bool = rng.gen();
            let (in0, in1) = if fast_is_in1 {
                (slow, fast)
            } else {
                (fast, slow)
            };
            let k2 = netlist.add_input(format!("tdk{i}_k2"));
            let y = netlist.add_gate(GateKind::Mux2, &[in0, in1, k2])?;
            let tdb_mux = netlist.net(y).driver().expect("mux drives y");
            netlist.rewire_input(ff, 0, y)?;
            key_inputs.push(k1);
            key_inputs.push(k2);
            correct_key.push(use_xnor);
            correct_key.push(fast_is_in1);
            tdks.push(TdkInfo {
                target_ff: ff,
                tdb_mux,
                slow_cells,
                fast_is_in1,
            });
        }
        netlist.validate()?;
        crate::locking::record_lock("lock_tdk", key_inputs.len());
        Ok(TdkLocked {
            locked: Locked {
                netlist,
                original: original.clone(),
                key_inputs,
                correct_key,
            },
            tdks,
        })
    }
}

impl LockScheme for Tdk {
    fn lock(&self, original: &Netlist, rng: &mut dyn RngCore) -> Result<Locked, CoreError> {
        let library = Library::cl013g_like();
        Ok(self.lock_with_library(original, &library, rng)?.locked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use glitchlock_sta::{analyze, ClockModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_circuit() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let q1 = nl.add_dff(w).unwrap();
        let x = nl.add_gate(GateKind::Xor, &[q1, a]).unwrap();
        let q2 = nl.add_dff(x).unwrap();
        nl.mark_output(q2, "y");
        nl
    }

    #[test]
    fn functional_key_preserves_zero_delay_semantics() {
        let nl = seq_circuit();
        let lib = Library::cl013g_like();
        let mut rng = StdRng::seed_from_u64(2);
        let tdk = Tdk::new(2).lock_with_library(&nl, &lib, &mut rng).unwrap();
        assert_eq!(tdk.locked.key_width(), 4);
        // In the *functional* (zero-delay) view the TDB is transparent;
        // only k1 matters. Verify over the combinational view.
        use glitchlock_netlist::CombView;
        let ov = CombView::new(&nl);
        let lv = CombView::new(&tdk.locked.netlist);
        // Locked comb view inputs: data PIs + key PIs + FF Qs.
        for pat in 0u8..16 {
            let data: Vec<Logic> = (0..4)
                .map(|i| Logic::from_bool(pat >> i & 1 == 1))
                .collect();
            // original inputs: a, b, q1, q2
            let expect = ov.eval(&nl, &data);
            // locked inputs in net order: a, b, then tdk keys interleaved,
            // then qs — assemble by position.
            let mut inputs = Vec::new();
            let mut di = 0;
            for &net in lv.input_nets() {
                if let Some(ki) = tdk.locked.key_inputs.iter().position(|&k| k == net) {
                    inputs.push(Logic::from_bool(tdk.locked.correct_key[ki]));
                } else {
                    inputs.push(data[di]);
                    di += 1;
                }
            }
            let got = lv.eval(&tdk.locked.netlist, &inputs);
            assert_eq!(got, expect, "pattern {pat:04b}");
        }
    }

    #[test]
    fn wrong_delay_key_violates_timing() {
        let nl = seq_circuit();
        let lib = Library::cl013g_like();
        let mut rng = StdRng::seed_from_u64(3);
        let tdk = Tdk::new(1).lock_with_library(&nl, &lib, &mut rng).unwrap();
        // STA can't evaluate key-dependent muxes; emulate the wrong branch
        // by checking that the slow chain pushes arrival past a 2ns UB.
        let clock = ClockModel::new(Ps::from_ns(2));
        let report = analyze(&tdk.locked.netlist, &lib, &clock);
        let ff = tdk.tdks[0].target_ff;
        let check = report.check_of(ff).unwrap();
        // The max-arrival path goes through the slow branch: 1.2ns extra
        // blows the 2ns budget only if the base path is long enough; at
        // minimum the slow arrival exceeds the fast arrival by ~1.1ns.
        assert!(
            check.arrival_max.as_ps() >= 1200,
            "slow branch visible to STA: {}",
            check.arrival_max
        );
        assert_eq!(tdk.tdks[0].slow_cells.len(), tdk.tdks[0].slow_cells.len());
    }

    #[test]
    fn event_simulation_confirms_wrong_delay_key_violates() {
        // Fig. 2's claim, observed in the timing domain: with the correct
        // delay key the capture flip-flop is clean; with the wrong one the
        // slow branch's transition lands inside the setup window.
        use glitchlock_sim::{ClockSpec, SimConfig, Simulator, Stimulus};
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        // A moderately long base path so slow-branch arrival crosses UB.
        let mut n = a;
        for _ in 0..2 {
            n = nl.add_gate(GateKind::Buf, &[n]).unwrap();
            let c = nl.net(n).driver().unwrap();
            nl.bind_lib(c, lib.by_name("DLY1X1").unwrap()).unwrap();
        }
        let q = nl.add_dff(n).unwrap();
        nl.mark_output(q, "y");

        let mut rng = StdRng::seed_from_u64(9);
        let tdk = Tdk::new(1).lock_with_library(&nl, &lib, &mut rng).unwrap();
        let info = &tdk.tdks[0];
        let nlk = &tdk.locked.netlist;
        let period = Ps::from_ns(2);
        // Keys: k1 functional (index 0), k2 delay (index 1).
        let k1_net = tdk.locked.key_inputs[0];
        let k2_net = tdk.locked.key_inputs[1];
        let k1 = tdk.locked.correct_key[0];
        let run = |k2: bool| {
            let mut stim = Stimulus::new();
            for &ff in nlk.dff_cells() {
                stim.set_ff(ff, Logic::Zero);
            }
            stim.set(k1_net, Logic::from_bool(k1));
            stim.set(k2_net, Logic::from_bool(k2));
            // Launch a data transition at the start of cycle 1.
            stim.set(a, Logic::Zero);
            stim.at(period + Ps(200), a, Logic::One);
            let cfg = SimConfig::new().with_clock(ClockSpec::new(period));
            let res = Simulator::new(nlk, &lib, cfg).run(&stim, period * 3);
            let violations = res.violations_of(info.target_ff).len();
            // The value captured at the second edge (end of the launch
            // cycle).
            let captured = res.samples_of(info.target_ff)[1].1;
            (violations, captured)
        };
        let correct_k2 = tdk.locked.correct_key[1];
        let (clean_violations, clean_value) = run(correct_k2);
        assert_eq!(clean_violations, 0, "fast branch captures cleanly");
        let (bad_violations, bad_value) = run(!correct_k2);
        // The slow branch either trips the setup/hold monitor or arrives
        // after the edge and latches stale data — both are failures of the
        // wrong delay key (Figs. 2(c)/(d)).
        assert!(
            bad_violations > 0 || bad_value != clean_value,
            "wrong delay key must corrupt the capture"
        );
    }

    #[test]
    fn too_many_tdks_rejected() {
        let nl = seq_circuit();
        let lib = Library::cl013g_like();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            Tdk::new(5).lock_with_library(&nl, &lib, &mut rng),
            Err(CoreError::NotEnoughSites { .. })
        ));
    }
}
