//! Anti-SAT locking (Xie & Srivastava \[13\]).
//!
//! The Anti-SAT block computes `Y = g(X ⊕ K_a) ∧ ḡ(X ⊕ K_b)` with `g` an
//! AND tree. When `K_a = K_b` (the correct relation) `Y ≡ 0`; any other
//! key makes `Y = 1` on exactly one input pattern, so the SAT attack
//! eliminates one key pair per DIP. Like SARLock, the block's output is
//! skewed almost-always-0 — removal-attack bait.

use crate::locking::{LockScheme, Locked};
use crate::CoreError;
use glitchlock_netlist::{GateKind, NetId, Netlist};
use rand::{Rng, RngCore};

/// An Anti-SAT block over the first `n` primary inputs (2·`n` key bits).
#[derive(Clone, Copy, Debug)]
pub struct AntiSat {
    /// Width of the AND trees (`n`); key width is `2n`.
    pub n: usize,
}

impl AntiSat {
    /// An Anti-SAT block of width `n`.
    pub fn new(n: usize) -> Self {
        AntiSat { n }
    }
}

impl LockScheme for AntiSat {
    fn lock(&self, original: &Netlist, rng: &mut dyn RngCore) -> Result<Locked, CoreError> {
        if original.input_nets().len() < self.n || original.output_ports().is_empty() {
            return Err(CoreError::NotEnoughSites {
                requested: self.n,
                available: original.input_nets().len(),
            });
        }
        let mut netlist = original.clone();
        let xs: Vec<NetId> = netlist.input_nets()[..self.n].to_vec();
        // Correct keys: K_a = K_b (bitwise); the shared value is random.
        let shared: Vec<bool> = (0..self.n).map(|_| rng.gen()).collect();
        let mut key_inputs = Vec::with_capacity(2 * self.n);
        let mut a_terms = Vec::with_capacity(self.n);
        let mut b_terms = Vec::with_capacity(self.n);
        for (i, &x) in xs.iter().enumerate() {
            let ka = netlist.add_input(format!("ka{i}"));
            a_terms.push(netlist.add_gate(GateKind::Xor, &[x, ka])?);
            key_inputs.push(ka);
        }
        for (i, &x) in xs.iter().enumerate() {
            let kb = netlist.add_input(format!("kb{i}"));
            b_terms.push(netlist.add_gate(GateKind::Xor, &[x, kb])?);
            key_inputs.push(kb);
        }
        let g = netlist.add_gate(GateKind::And, &a_terms)?;
        let gbar = netlist.add_gate(GateKind::Nand, &b_terms)?;
        let y = netlist.add_gate(GateKind::And, &[g, gbar])?;
        let (po_net, _) = netlist.output_ports()[0].clone();
        let flipped = netlist.add_gate(GateKind::Xor, &[po_net, y])?;
        netlist.rewire_output_po(po_net, flipped);
        netlist.validate()?;
        let mut correct_key = shared.clone();
        correct_key.extend(shared);
        crate::locking::record_lock("lock_antisat", key_inputs.len());
        Ok(Locked {
            netlist,
            original: original.clone(),
            key_inputs,
            correct_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y = nl.add_gate(GateKind::Or, &[a, b, c]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    fn eval(locked: &Locked, data: &[Logic], key: &[bool]) -> Vec<Logic> {
        let inputs = locked.assemble_inputs(data, key);
        locked.netlist.eval_comb(&inputs)
    }

    #[test]
    fn equal_key_halves_never_flip() {
        let nl = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let locked = AntiSat::new(3).lock(&nl, &mut rng).unwrap();
        assert_eq!(locked.key_width(), 6);
        // Any K_a = K_b is functionally correct, not just the drawn one.
        for kbits in 0u8..8 {
            let half: Vec<bool> = (0..3).map(|i| kbits >> i & 1 == 1).collect();
            let mut key = half.clone();
            key.extend(half);
            for bits in 0u8..8 {
                let data: Vec<Logic> = (0..3)
                    .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                    .collect();
                assert_eq!(eval(&locked, &data, &key), nl.eval_comb(&data));
            }
        }
    }

    #[test]
    fn unequal_halves_flip_exactly_one_pattern() {
        let nl = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let locked = AntiSat::new(3).lock(&nl, &mut rng).unwrap();
        let mut key = locked.correct_key.clone();
        key[4] = !key[4]; // perturb K_b only
        let mismatches = (0u8..8)
            .filter(|&bits| {
                let data: Vec<Logic> = (0..3)
                    .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                    .collect();
                eval(&locked, &data, &key) != nl.eval_comb(&data)
            })
            .count();
        assert_eq!(mismatches, 1);
    }

    #[test]
    fn needs_enough_inputs() {
        let mut nl = Netlist::new("small");
        let a = nl.add_input("a");
        nl.mark_output(a, "y");
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            AntiSat::new(2).lock(&nl, &mut rng),
            Err(CoreError::NotEnoughSites { .. })
        ));
    }
}
