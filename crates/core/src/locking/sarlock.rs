//! SARLock point-function locking (Yasin et al. \[14\]).
//!
//! Adds a comparator block that flips one primary output exactly when the
//! data inputs equal the supplied key *and* the key is wrong: each DIP the
//! SAT attack finds eliminates only a single wrong key, forcing
//! exponentially many iterations. The cost (paper Sec. I): the flip signal
//! is almost always 0, a probability skew that removal attacks use to
//! locate and strip the block.

use crate::locking::{LockScheme, Locked};
use crate::CoreError;
use glitchlock_netlist::{GateKind, NetId, Netlist};
use rand::{Rng, RngCore};

/// SARLock over the first `n_bits` primary inputs.
#[derive(Clone, Copy, Debug)]
pub struct SarLock {
    /// Key width (compared against the same number of data inputs).
    pub n_bits: usize,
}

impl SarLock {
    /// A SARLock block of `n_bits`.
    pub fn new(n_bits: usize) -> Self {
        SarLock { n_bits }
    }
}

impl LockScheme for SarLock {
    fn lock(&self, original: &Netlist, rng: &mut dyn RngCore) -> Result<Locked, CoreError> {
        if original.input_nets().len() < self.n_bits || original.output_ports().is_empty() {
            return Err(CoreError::NotEnoughSites {
                requested: self.n_bits,
                available: original.input_nets().len(),
            });
        }
        let mut netlist = original.clone();
        let xs: Vec<NetId> = netlist.input_nets()[..self.n_bits].to_vec();
        let correct_key: Vec<bool> = (0..self.n_bits).map(|_| rng.gen()).collect();

        let mut key_inputs = Vec::with_capacity(self.n_bits);
        let mut eq_key_terms = Vec::with_capacity(self.n_bits);
        let mut eq_const_terms = Vec::with_capacity(self.n_bits);
        for (i, &x) in xs.iter().enumerate() {
            let k = netlist.add_input(format!("key{i}"));
            key_inputs.push(k);
            eq_key_terms.push(netlist.add_gate(GateKind::Xnor, &[x, k])?);
            // Hard-wired comparator against the correct key — the masking
            // that keeps the correct key from ever flipping the output.
            let c = netlist.add_const(correct_key[i]);
            eq_const_terms.push(netlist.add_gate(GateKind::Xnor, &[x, c])?);
        }
        let eq_key = netlist.add_gate(GateKind::And, &eq_key_terms)?;
        let eq_const = netlist.add_gate(GateKind::And, &eq_const_terms)?;
        let not_const = netlist.add_gate(GateKind::Inv, &[eq_const])?;
        let flip = netlist.add_gate(GateKind::And, &[eq_key, not_const])?;

        // Flip the first primary output.
        let (po_net, _) = netlist.output_ports()[0].clone();
        let flipped = netlist.add_gate(GateKind::Xor, &[po_net, flip])?;
        netlist.rewire_output_po(po_net, flipped);
        netlist.validate()?;
        crate::locking::record_lock("lock_sarlock", key_inputs.len());
        Ok(Locked {
            netlist,
            original: original.clone(),
            key_inputs,
            correct_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y = nl.add_gate(GateKind::And, &[a, b, c]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    fn eval(locked: &Locked, data: &[Logic], key: &[bool]) -> Vec<Logic> {
        let inputs = locked.assemble_inputs(data, key);
        locked.netlist.eval_comb(&inputs)
    }

    #[test]
    fn correct_key_never_flips() {
        let nl = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let locked = SarLock::new(3).lock(&nl, &mut rng).unwrap();
        for bits in 0u8..8 {
            let data: Vec<Logic> = (0..3)
                .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                .collect();
            assert_eq!(
                eval(&locked, &data, &locked.correct_key),
                nl.eval_comb(&data),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn wrong_key_flips_exactly_one_pattern() {
        let nl = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let locked = SarLock::new(3).lock(&nl, &mut rng).unwrap();
        let mut wrong = locked.correct_key.clone();
        wrong[1] = !wrong[1];
        let mismatches: Vec<u8> = (0u8..8)
            .filter(|&bits| {
                let data: Vec<Logic> = (0..3)
                    .map(|i| Logic::from_bool(bits >> i & 1 == 1))
                    .collect();
                eval(&locked, &data, &wrong) != nl.eval_comb(&data)
            })
            .collect();
        assert_eq!(
            mismatches.len(),
            1,
            "SARLock: a wrong key corrupts exactly the pattern equal to it"
        );
        // The corrupted pattern is x == wrong key.
        let bits = mismatches[0];
        let pattern: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        assert_eq!(pattern, wrong);
    }

    #[test]
    fn needs_enough_inputs() {
        let mut nl = Netlist::new("small");
        let a = nl.add_input("a");
        nl.mark_output(a, "y");
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            SarLock::new(4).lock(&nl, &mut rng),
            Err(CoreError::NotEnoughSites { .. })
        ));
    }
}
