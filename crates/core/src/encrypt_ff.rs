//! Encrypt-FF flip-flop selection (Karmakar et al. \[4\]).
//!
//! Table I's last column selects, among the GK-feasible flip-flops, a group
//! **fanning out to the same set of primary outputs**. Encrypting such a
//! group makes scan-based attacks harder: the corruption from every key-gate
//! aliases onto the same observable outputs.

use glitchlock_netlist::{reachable_outputs, CellId, Netlist};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A group of flip-flops whose Q pins reach exactly the same primary
/// outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FfGroup {
    /// Indices (into [`Netlist::output_ports`]) of the reached outputs.
    pub outputs: BTreeSet<usize>,
    /// The flip-flops in the group.
    pub ffs: Vec<CellId>,
}

/// Groups `candidates` by the set of primary outputs their Q pins reach
/// combinationally, largest group first (ties broken by output-set order
/// for determinism).
pub fn group_by_output_cone(netlist: &Netlist, candidates: &[CellId]) -> Vec<FfGroup> {
    let mut groups: BTreeMap<BTreeSet<usize>, Vec<CellId>> = BTreeMap::new();
    for &ff in candidates {
        let q = netlist.cell(ff).output();
        let outs = reachable_outputs(netlist, q);
        groups.entry(outs).or_default().push(ff);
    }
    let mut v: Vec<FfGroup> = groups
        .into_iter()
        .map(|(outputs, ffs)| FfGroup { outputs, ffs })
        .collect();
    v.sort_by(|a, b| {
        b.ffs
            .len()
            .cmp(&a.ffs.len())
            .then(a.outputs.cmp(&b.outputs))
    });
    v
}

/// The Encrypt-FF selection: the largest same-output-cone group among the
/// candidates (Table I's "Ava. FF \[4\]" counts its size).
pub fn select_encrypt_ff(netlist: &Netlist, candidates: &[CellId]) -> Vec<CellId> {
    group_by_output_cone(netlist, candidates)
        .into_iter()
        .next()
        .map(|g| g.ffs)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    /// Two flip-flops feed output y1 through shared logic; a third feeds y2.
    fn three_ffs() -> (Netlist, Vec<CellId>) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q1 = nl.add_dff_named(a, "f1").unwrap();
        let q2 = nl.add_dff_named(a, "f2").unwrap();
        let q3 = nl.add_dff_named(a, "f3").unwrap();
        let y1 = nl.add_gate(GateKind::And, &[q1, q2]).unwrap();
        let y2 = nl.add_gate(GateKind::Inv, &[q3]).unwrap();
        nl.mark_output(y1, "y1");
        nl.mark_output(y2, "y2");
        let ffs = nl.dff_cells().to_vec();
        (nl, ffs)
    }

    #[test]
    fn groups_partition_by_cone() {
        let (nl, ffs) = three_ffs();
        let groups = group_by_output_cone(&nl, &ffs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].ffs.len(), 2, "largest group first");
        assert_eq!(
            groups[0].outputs.iter().copied().collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(groups[1].ffs, vec![ffs[2]]);
    }

    #[test]
    fn selection_returns_largest_group() {
        let (nl, ffs) = three_ffs();
        let sel = select_encrypt_ff(&nl, &ffs);
        assert_eq!(sel, vec![ffs[0], ffs[1]]);
    }

    #[test]
    fn empty_candidates_give_empty_selection() {
        let (nl, _) = three_ffs();
        assert!(select_encrypt_ff(&nl, &[]).is_empty());
    }

    #[test]
    fn candidate_subset_is_respected() {
        let (nl, ffs) = three_ffs();
        let sel = select_encrypt_ff(&nl, &ffs[2..]);
        assert_eq!(sel, vec![ffs[2]]);
    }
}
