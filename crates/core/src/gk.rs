//! The Glitch Key-gate (GK) cell: Fig. 3 of the paper.
//!
//! A GK has a data input `x` and a key input `key`:
//!
//! ```text
//!          ┌─ delay A ─ XNOR(x,·) ─┐ (in0)
//!   key ───┤                        MUX ── y      (Fig. 3(a))
//!          └─ delay B ─ XOR(x,·)  ─┘ (in1)
//!              (sel = key, undelayed)
//! ```
//!
//! With `key` constant (0 or 1) the selected gate sees the settled key and
//! `y = x'` — a stable **inverter**. A key transition flips the MUX to the
//! branch whose gate still holds the *old* key value, so for the branch's
//! path delay the output carries `x` — a glitch acting as a **buffer**.
//! Fig. 3(b) swaps the XNOR/XOR allocation, exchanging the two roles.

use crate::CoreError;
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use glitchlock_stdcell::{Library, Ps};
use glitchlock_synth::compose_delay;

/// Which of the paper's two GK schemes to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GkScheme {
    /// Fig. 3(a): stable **inverter**; the glitch transmits `x` (buffer).
    InverterSteady,
    /// Fig. 3(b): stable **buffer**; the glitch transmits `x'` (inverter).
    BufferSteady,
}

impl GkScheme {
    /// Output level as a function of `x` under a *constant* key — the
    /// static Boolean view a netlist attacker sees (key-independent!).
    pub fn steady_inverts(self) -> bool {
        self == GkScheme::InverterSteady
    }
}

/// Delay design for one GK.
#[derive(Clone, Copy, Debug)]
pub struct GkDesign {
    /// Scheme (gate allocation).
    pub scheme: GkScheme,
    /// Target glitch length (Eq. (2)): realized as each branch's path delay
    /// (delay chain + XOR/XNOR gate).
    pub l_glitch: Ps,
    /// Delay-chain composition tolerance.
    pub tolerance: Ps,
}

impl GkDesign {
    /// The paper's experimental configuration: Fig. 3(a) GKs transmitting
    /// on 1ns glitches (Sec. VI, "the strictest requirement").
    pub fn paper_default() -> Self {
        GkDesign {
            scheme: GkScheme::InverterSteady,
            l_glitch: Ps::from_ns(1),
            tolerance: Ps(30),
        }
    }
}

/// A GK instantiated in a netlist.
#[derive(Clone, Debug)]
pub struct GkInstance {
    /// The scheme built.
    pub scheme: GkScheme,
    /// The data input net (`x`).
    pub x: NetId,
    /// The key input net.
    pub key: NetId,
    /// The GK output net (`y`).
    pub y: NetId,
    /// Every cell added for this GK (gates + delay chains).
    pub cells: Vec<CellId>,
    /// Achieved path delay of branch A (delay chain + XNOR/XOR gate).
    pub d_path_a: Ps,
    /// Achieved path delay of branch B.
    pub d_path_b: Ps,
    /// MUX select-to-output latency (`D_react`).
    pub d_react: Ps,
}

impl GkInstance {
    /// Glitch length for a **rising** key transition (branch B's stale
    /// value is exposed; Fig. 4's first glitch).
    pub fn l_glitch_rising(&self) -> Ps {
        self.d_path_b
    }

    /// Glitch length for a **falling** key transition.
    pub fn l_glitch_falling(&self) -> Ps {
        self.d_path_a
    }

    /// `D_ready` for a rising transition (paper Sec. IV-A): the selected
    /// branch's full path delay.
    pub fn d_ready_rising(&self) -> Ps {
        self.d_path_b
    }

    /// `D_ready` for a falling transition.
    pub fn d_ready_falling(&self) -> Ps {
        self.d_path_a
    }
}

/// Builds a GK in `netlist` reading data from `x` and key from `key`.
/// Returns the instance (its output net is *not* connected to anything —
/// the caller rewires the capture flip-flop or sink pin).
///
/// ```rust
/// use glitchlock_core::gk::{build_gk, GkDesign};
/// use glitchlock_netlist::{Netlist, Logic};
/// use glitchlock_stdcell::Library;
///
/// # fn main() -> Result<(), glitchlock_core::CoreError> {
/// let lib = Library::cl013g_like();
/// let mut nl = Netlist::new("demo");
/// let x = nl.add_input("x");
/// let key = nl.add_input("key");
/// let gk = build_gk(&mut nl, &lib, x, key, &GkDesign::paper_default())?;
/// nl.mark_output(gk.y, "y");
/// // Statically the GK inverts x regardless of the key constant — the
/// // property that blinds the SAT attack.
/// assert_eq!(nl.eval_comb(&[Logic::One, Logic::Zero]),
///            nl.eval_comb(&[Logic::One, Logic::One]));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::Delay`] if the delay chains cannot realize the design.
/// * [`CoreError::Netlist`] on structural failures.
pub fn build_gk(
    netlist: &mut Netlist,
    library: &Library,
    x: NetId,
    key: NetId,
    design: &GkDesign,
) -> Result<GkInstance, CoreError> {
    let xnor_delay = library
        .cell(library.default_cell(GateKind::Xnor))
        .delay_with_fanout(1);
    let xor_delay = library
        .cell(library.default_cell(GateKind::Xor))
        .delay_with_fanout(1);
    let mux_delay = library
        .cell(library.default_cell(GateKind::Mux2))
        .delay_with_fanout(1);

    // Each branch's chain target: L_glitch minus its gate's own delay.
    let chain_a_target = design.l_glitch.saturating_sub(xnor_delay);
    let chain_b_target = design.l_glitch.saturating_sub(xor_delay);

    let mut cells = Vec::new();
    let (key_a, chain_a, plan_a) =
        compose_delay(netlist, library, key, chain_a_target, design.tolerance)?;
    cells.extend(chain_a);
    let (key_b, chain_b, plan_b) =
        compose_delay(netlist, library, key, chain_b_target, design.tolerance)?;
    cells.extend(chain_b);

    let (upper_kind, lower_kind) = match design.scheme {
        GkScheme::InverterSteady => (GateKind::Xnor, GateKind::Xor),
        GkScheme::BufferSteady => (GateKind::Xor, GateKind::Xnor),
    };
    let a_out = netlist.add_gate(upper_kind, &[x, key_a])?;
    cells.push(netlist.net(a_out).driver().expect("gate drives net"));
    let b_out = netlist.add_gate(lower_kind, &[x, key_b])?;
    cells.push(netlist.net(b_out).driver().expect("gate drives net"));
    let y = netlist.add_gate(GateKind::Mux2, &[a_out, b_out, key])?;
    cells.push(netlist.net(y).driver().expect("gate drives net"));

    let (gate_a, gate_b) = match design.scheme {
        GkScheme::InverterSteady => (xnor_delay, xor_delay),
        GkScheme::BufferSteady => (xor_delay, xnor_delay),
    };
    Ok(GkInstance {
        scheme: design.scheme,
        x,
        key,
        y,
        cells,
        d_path_a: plan_a.achieved + gate_a,
        d_path_b: plan_b.achieved + gate_b,
        d_react: mux_delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use glitchlock_sim::{SimConfig, Simulator, Stimulus};

    fn lib() -> Library {
        Library::cl013g_like()
    }

    #[test]
    fn static_view_is_key_independent() {
        // The crucial security property: under *any constant* key the GK
        // output is the same function of x. A SAT attacker's CNF therefore
        // admits no DIP through a GK.
        for scheme in [GkScheme::InverterSteady, GkScheme::BufferSteady] {
            let lib = lib();
            let mut nl = Netlist::new("gk");
            let x = nl.add_input("x");
            let key = nl.add_input("key");
            let design = GkDesign {
                scheme,
                ..GkDesign::paper_default()
            };
            let gk = build_gk(&mut nl, &lib, x, key, &design).unwrap();
            nl.mark_output(gk.y, "y");
            for xv in [Logic::Zero, Logic::One] {
                let y0 = nl.eval_comb(&[xv, Logic::Zero]);
                let y1 = nl.eval_comb(&[xv, Logic::One]);
                assert_eq!(y0, y1, "constant keys indistinguishable");
                let expect = if scheme.steady_inverts() { !xv } else { xv };
                assert_eq!(y0[0], expect);
            }
        }
    }

    #[test]
    fn paper_default_matches_sec6() {
        let d = GkDesign::paper_default();
        assert_eq!(d.l_glitch, Ps::from_ns(1));
        assert_eq!(d.scheme, GkScheme::InverterSteady);
    }

    #[test]
    fn achieved_path_delays_near_target() {
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let key = nl.add_input("key");
        let gk = build_gk(&mut nl, &lib, x, key, &GkDesign::paper_default()).unwrap();
        nl.mark_output(gk.y, "y");
        for d in [gk.d_path_a, gk.d_path_b] {
            assert!(
                d.as_ps().abs_diff(1000) <= 40,
                "path delay {d} should be ~1ns"
            );
        }
        assert_eq!(gk.d_react, Ps(80), "MUX2X1 latency");
        assert!(gk.cells.len() >= 3, "two gates + mux + chains");
    }

    #[test]
    fn transition_produces_buffer_glitch_in_simulation() {
        // End-to-end: a rising key transition exposes x for ~L_glitch.
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let key = nl.add_input("key");
        let gk = build_gk(&mut nl, &lib, x, key, &GkDesign::paper_default()).unwrap();
        nl.mark_output(gk.y, "y");

        let mut stim = Stimulus::new();
        stim.set(x, Logic::One).set(key, Logic::Zero);
        stim.rise(Ps::from_ns(4), key);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps::from_ns(10));
        let w = res.waveform(gk.y);
        // Steady inverter: y = 0. Glitch at 1 after the transition.
        assert_eq!(w.initial(), Logic::Zero);
        let (start, end) = w
            .pulse_after(Logic::One, Ps::from_ns(4), Ps::from_ns(10))
            .expect("glitch must appear");
        let length = end - start;
        assert!(
            length.as_ps().abs_diff(gk.l_glitch_rising().as_ps()) <= 2,
            "glitch length {length} vs designed {}",
            gk.l_glitch_rising()
        );
        // Glitch starts D_react after the trigger.
        assert_eq!(start, Ps::from_ns(4) + gk.d_react);
        // And the output settles back to the inverter level.
        assert_eq!(res.final_value(gk.y), Logic::Zero);
    }

    #[test]
    fn falling_transition_glitches_with_branch_a_length() {
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let key = nl.add_input("key");
        let gk = build_gk(&mut nl, &lib, x, key, &GkDesign::paper_default()).unwrap();
        nl.mark_output(gk.y, "y");
        let mut stim = Stimulus::new();
        stim.set(x, Logic::One).set(key, Logic::One);
        stim.fall(Ps::from_ns(4), key);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps::from_ns(10));
        let (start, end) = res
            .waveform(gk.y)
            .pulse_after(Logic::One, Ps::from_ns(4), Ps::from_ns(10))
            .expect("glitch must appear");
        assert!(
            (end - start)
                .as_ps()
                .abs_diff(gk.l_glitch_falling().as_ps())
                <= 2
        );
        assert_eq!(start, Ps::from_ns(4) + gk.d_react);
    }

    #[test]
    fn buffer_steady_scheme_glitch_is_inverter() {
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let key = nl.add_input("key");
        let design = GkDesign {
            scheme: GkScheme::BufferSteady,
            ..GkDesign::paper_default()
        };
        let gk = build_gk(&mut nl, &lib, x, key, &design).unwrap();
        nl.mark_output(gk.y, "y");
        let mut stim = Stimulus::new();
        stim.set(x, Logic::One).set(key, Logic::Zero);
        stim.rise(Ps::from_ns(4), key);
        let res = Simulator::new(&nl, &lib, SimConfig::new()).run(&stim, Ps::from_ns(10));
        let w = res.waveform(gk.y);
        // Steady buffer: y = x = 1; glitch dips to 0 (inverter).
        assert_eq!(w.initial(), Logic::One);
        assert!(w
            .pulse_after(Logic::Zero, Ps::from_ns(4), Ps::from_ns(10))
            .is_some());
    }

    #[test]
    fn inertial_simulation_can_swallow_the_glitch() {
        // Margin study: under inertial filtering with a long downstream
        // gate delay, the glitch is swallowed — motivating the paper's
        // transport-delay operating assumption.
        use glitchlock_sim::DelayModel;
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let key = nl.add_input("key");
        let gk = build_gk(&mut nl, &lib, x, key, &GkDesign::paper_default()).unwrap();
        // Chase the GK with a delay cell slower than the glitch.
        let slow = nl.add_gate(GateKind::Buf, &[gk.y]).unwrap();
        let slow_cell = nl.net(slow).driver().unwrap();
        nl.bind_lib(slow_cell, lib.by_name("DLY8X1").unwrap())
            .unwrap();
        nl.mark_output(slow, "y");
        let mut stim = Stimulus::new();
        stim.set(x, Logic::One).set(key, Logic::Zero);
        stim.rise(Ps::from_ns(4), key);
        let cfg = SimConfig::new().with_delay_model(DelayModel::Inertial);
        let res = Simulator::new(&nl, &lib, cfg).run(&stim, Ps::from_ns(12));
        assert!(
            res.waveform(slow)
                .pulse_after(Logic::One, Ps::from_ns(4), Ps::from_ns(12))
                .is_none(),
            "2ns inertial gate swallows the 1ns glitch"
        );
    }
}
