//! The key generator (KEYGEN) of Fig. 5: a toggle flip-flop plus an
//! Adjustable Delay Buffer.
//!
//! A GK whose intended behaviour needs a transition must receive one **every
//! clock cycle** (Sec. II-B). The KEYGEN provides it: a toggle flip-flop
//! produces alternating rising/falling transitions at each clock edge, and
//! a simplified ADB — a 4:1 MUX over `{constant 0, Q delayed by DA,
//! Q delayed by DB, constant 1}` selected by the key bits `(k1, k2)` —
//! either transmits a constant (glitchless GK) or shifts the transition so
//! it triggers the GK at a precise time.

use crate::CoreError;
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use glitchlock_stdcell::{Library, Ps};
use glitchlock_synth::compose_delay;

/// The four `(k1, k2)` selections of a KEYGEN, in Fig. 6's top-to-bottom
/// order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeygenSelect {
    /// `(0,0)`: constant 0 — the GK is glitchless.
    Const0,
    /// `(1,0)`: transition shifted by delay A.
    DelayA,
    /// `(0,1)`: transition shifted by delay B.
    DelayB,
    /// `(1,1)`: constant 1 — glitchless.
    Const1,
}

impl KeygenSelect {
    /// The `(k1, k2)` bit pair for this selection.
    pub fn bits(self) -> (bool, bool) {
        match self {
            KeygenSelect::Const0 => (false, false),
            KeygenSelect::DelayA => (true, false),
            KeygenSelect::DelayB => (false, true),
            KeygenSelect::Const1 => (true, true),
        }
    }

    /// Inverse of [`KeygenSelect::bits`].
    pub fn from_bits(k1: bool, k2: bool) -> Self {
        match (k1, k2) {
            (false, false) => KeygenSelect::Const0,
            (true, false) => KeygenSelect::DelayA,
            (false, true) => KeygenSelect::DelayB,
            (true, true) => KeygenSelect::Const1,
        }
    }
}

/// A KEYGEN instantiated in a netlist.
#[derive(Clone, Debug)]
pub struct KeygenInstance {
    /// The toggle flip-flop (needs a defined reset value in testbenches).
    pub toggle_ff: CellId,
    /// The `k1` key-input net (MUX4 `s0`).
    pub k1: NetId,
    /// The `k2` key-input net (MUX4 `s1`).
    pub k2: NetId,
    /// The ADB output, wired to the GK key pin.
    pub key_out: NetId,
    /// Every cell added for this KEYGEN.
    pub cells: Vec<CellId>,
    /// Achieved trigger time (within the clock cycle) when `DelayA` is
    /// selected.
    pub trigger_a: Ps,
    /// Achieved trigger time when `DelayB` is selected.
    pub trigger_b: Ps,
}

impl KeygenInstance {
    /// Trigger time of a selection, if it is transitional.
    pub fn trigger_of(&self, sel: KeygenSelect) -> Option<Ps> {
        match sel {
            KeygenSelect::DelayA => Some(self.trigger_a),
            KeygenSelect::DelayB => Some(self.trigger_b),
            _ => None,
        }
    }
}

/// Builds a KEYGEN whose `DelayA`/`DelayB` selections trigger the GK at
/// `trigger_a`/`trigger_b` (times within the clock cycle, measured from the
/// launching edge).
///
/// `k1`/`k2` are the key-input nets (typically fresh primary inputs). The
/// trigger chain targets are derived by subtracting the toggle flip-flop's
/// clk→q and the ADB MUX's data latency.
///
/// # Errors
///
/// * [`CoreError::Delay`] if a trigger is earlier than clk→q + MUX latency
///   or no chain composition lands within tolerance.
pub fn build_keygen(
    netlist: &mut Netlist,
    library: &Library,
    k1: NetId,
    k2: NetId,
    trigger_a: Ps,
    trigger_b: Ps,
    tolerance: Ps,
) -> Result<KeygenInstance, CoreError> {
    let clk_to_q = library
        .cell(library.default_cell(GateKind::Dff))
        .seq()
        .expect("library DFF has sequential timing")
        .clk_to_q;
    // The ADB MUX output drives the GK key pin, which fans out to the GK's
    // two delay chains plus the MUX select: 3 sinks.
    let mux4_delay = library
        .cell(library.default_cell(GateKind::Mux4))
        .delay_with_fanout(3);

    let base = clk_to_q + mux4_delay;
    let chain_target = |trigger: Ps| -> Result<Ps, CoreError> {
        trigger.checked_sub(base).ok_or(CoreError::Delay(format!(
            "trigger {trigger} is earlier than clk->q + ADB latency {base}"
        )))
    };

    let mut cells = Vec::new();
    // Toggle flip-flop: D = !Q.
    let d_placeholder = netlist.add_net(format!("kg_d_{}", netlist.net_count()));
    let q = netlist.add_dff(d_placeholder)?;
    let toggle_ff = netlist.net(q).driver().expect("dff drives q");
    cells.push(toggle_ff);
    let nq = netlist.add_gate(GateKind::Inv, &[q])?;
    cells.push(netlist.net(nq).driver().expect("gate drives net"));
    netlist.rewire_input(toggle_ff, 0, nq)?;

    let (a_net, a_cells, a_plan) =
        compose_delay(netlist, library, q, chain_target(trigger_a)?, tolerance)?;
    cells.extend(a_cells);
    let (b_net, b_cells, b_plan) =
        compose_delay(netlist, library, q, chain_target(trigger_b)?, tolerance)?;
    cells.extend(b_cells);

    let zero = netlist.add_const(false);
    cells.push(netlist.net(zero).driver().expect("const drives net"));
    let one = netlist.add_const(true);
    cells.push(netlist.net(one).driver().expect("const drives net"));
    let key_out = netlist.add_gate(GateKind::Mux4, &[zero, a_net, b_net, one, k1, k2])?;
    cells.push(netlist.net(key_out).driver().expect("gate drives net"));

    Ok(KeygenInstance {
        toggle_ff,
        k1,
        k2,
        key_out,
        cells,
        trigger_a: base + a_plan.achieved,
        trigger_b: base + b_plan.achieved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Logic;
    use glitchlock_sim::{ClockSpec, SimConfig, Simulator, Stimulus};

    fn lib() -> Library {
        Library::cl013g_like()
    }

    /// Builds a bare KEYGEN with key bits as primary inputs and its output
    /// fanned out to three dummy sinks (mimicking the GK key pin load).
    fn harness(trigger_a: Ps, trigger_b: Ps) -> (Netlist, KeygenInstance) {
        let lib = lib();
        let mut nl = Netlist::new("kg");
        let k1 = nl.add_input("k1");
        let k2 = nl.add_input("k2");
        let kg = build_keygen(&mut nl, &lib, k1, k2, trigger_a, trigger_b, Ps(30)).unwrap();
        // Three sinks to match the assumed fanout.
        for i in 0..3 {
            let s = nl.add_gate(GateKind::Buf, &[kg.key_out]).unwrap();
            nl.mark_output(s, format!("s{i}"));
        }
        (nl, kg)
    }

    #[test]
    fn select_bit_encoding_round_trips() {
        for sel in [
            KeygenSelect::Const0,
            KeygenSelect::DelayA,
            KeygenSelect::DelayB,
            KeygenSelect::Const1,
        ] {
            let (k1, k2) = sel.bits();
            assert_eq!(KeygenSelect::from_bits(k1, k2), sel);
        }
    }

    #[test]
    fn constant_selections_are_glitchless() {
        let (nl, kg) = harness(Ps::from_ns(2), Ps::from_ns(4));
        let lib = lib();
        for (sel, expect) in [
            (KeygenSelect::Const0, Logic::Zero),
            (KeygenSelect::Const1, Logic::One),
        ] {
            let (k1v, k2v) = sel.bits();
            let mut stim = Stimulus::new();
            stim.set(kg.k1, Logic::from_bool(k1v))
                .set(kg.k2, Logic::from_bool(k2v))
                .set_ff(kg.toggle_ff, Logic::Zero);
            let cfg = SimConfig::new().with_clock(ClockSpec::new(Ps::from_ns(8)));
            let res = Simulator::new(&nl, &lib, cfg).run(&stim, Ps::from_ns(40));
            let w = res.waveform(kg.key_out);
            assert_eq!(w.transition_count(), 0, "{sel:?} must hold steady");
            assert_eq!(w.initial(), expect);
        }
    }

    #[test]
    fn delayed_selections_fire_once_per_cycle_at_the_designed_time() {
        let (nl, kg) = harness(Ps::from_ns(2), Ps::from_ns(4));
        let lib = lib();
        assert!(kg.trigger_a.as_ps().abs_diff(2000) <= 30);
        assert!(kg.trigger_b.as_ps().abs_diff(4000) <= 30);
        for (sel, designed) in [
            (KeygenSelect::DelayA, kg.trigger_a),
            (KeygenSelect::DelayB, kg.trigger_b),
        ] {
            let (k1v, k2v) = sel.bits();
            let mut stim = Stimulus::new();
            stim.set(kg.k1, Logic::from_bool(k1v))
                .set(kg.k2, Logic::from_bool(k2v))
                .set_ff(kg.toggle_ff, Logic::Zero);
            let period = Ps::from_ns(8);
            let cfg = SimConfig::new().with_clock(ClockSpec::new(period));
            let res = Simulator::new(&nl, &lib, cfg).run(&stim, Ps::from_ns(33));
            let w = res.waveform(kg.key_out);
            // Edges at 8, 16, 24, 32ns -> transitions in the following
            // cycles, alternating direction.
            let changes = w.changes();
            assert!(
                changes.len() >= 3,
                "{sel:?}: expected a transition per cycle, got {changes:?}"
            );
            for (i, &(t, v)) in changes.iter().enumerate() {
                let cycle_start = period * (i as u64 + 1);
                let offset = t - cycle_start;
                assert!(
                    offset.as_ps().abs_diff(designed.as_ps()) <= 30,
                    "{sel:?}: transition {i} at offset {offset}, designed {designed}"
                );
                // Toggle FF from 0: first transition rising, then falling, …
                let expect = if i % 2 == 0 { Logic::One } else { Logic::Zero };
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn too_early_trigger_is_rejected() {
        let lib = lib();
        let mut nl = Netlist::new("kg");
        let k1 = nl.add_input("k1");
        let k2 = nl.add_input("k2");
        let err = build_keygen(&mut nl, &lib, k1, k2, Ps(100), Ps::from_ns(4), Ps(30)).unwrap_err();
        assert!(matches!(err, CoreError::Delay(_)));
    }
}
