//! The paper's contribution: **glitch key-gates for logic locking**.
//!
//! This crate implements everything in Secs. II–V of *"A Glitch Key-Gate
//! for Logic Locking"* (Ji et al., SOCC 2019):
//!
//! * [`gk`] — the GK cell itself (Fig. 3(a)/(b)): an XNOR/XOR pair fed by
//!   delayed copies of the key signal, muxed by the undelayed key. A
//!   constant key yields a stable inverter (or buffer); a key *transition*
//!   produces a glitch of designed length during which the output carries
//!   the opposite polarity.
//! * [`keygen`] — the per-GK key generator (Fig. 5): a toggle flip-flop
//!   plus an Adjustable Delay Buffer (4:1 MUX over `{0, Q delayed by DA,
//!   Q delayed by DB, 1}`) driven by two key bits `(k1, k2)`.
//! * [`windows`] — the timing-window algebra of Eqs. (1)–(6): where a GK
//!   may be inserted and when its transition must trigger so the capture
//!   flip-flop latches the glitch level (Fig. 7(a)) or the stable level
//!   (Figs. 7(b)–(d)) without a true setup/hold violation.
//! * [`feasibility`] — Table I's analysis: which flip-flops can host a GK.
//! * [`encrypt_ff`] — the Encrypt-FF grouping \[4\] used for Table I's last
//!   column (flip-flops fanning out to the same primary outputs).
//! * [`insertion`] — the design flow of Sec. IV-B: select feasible
//!   flip-flops off the critical path, build GK + KEYGEN with composed
//!   delay elements, classify false vs. true timing violations, and emit
//!   both the manufactured netlist and the attacker's view (KEYGEN
//!   stripped, key inputs promoted to primary inputs) that the SAT attack
//!   operates on.
//! * [`locking`] — the baselines: XOR/XNOR \[9\], MUX, TDK delay locking
//!   \[12\], SARLock \[14\], and Anti-SAT \[13\].
//! * [`withholding`] — LUT-based design withholding \[5\]\[6\] combined with
//!   GK against the enhanced removal attack (Sec. V-D).

#![deny(missing_docs)]

mod error;

pub mod encrypt_ff;
pub mod feasibility;
pub mod gk;
pub mod insertion;
pub mod key;
pub mod keygen;
pub mod locking;
pub mod util;
pub mod windows;
pub mod withholding;

pub use error::CoreError;
pub use insertion::{GkEncryptor, GkLocked};
pub use key::{KeyBit, KeyVector, Transition};
pub use locking::{LockScheme, Locked};
