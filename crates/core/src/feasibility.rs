//! Feasible flip-flop analysis: which flip-flops can host a GK (Table I).
//!
//! A flip-flop is *available* for GK encryption when (paper Secs. IV,VI):
//!
//! 1. it is not on the critical path (the flow actively avoids those),
//! 2. the glitch is long enough to cover setup + hold (`L ≥ T_set + T_hold`),
//! 3. Eq. (3) holds: the glitch can be generated and triggered between the
//!    arrival bounds, and
//! 4. the Eq. (5) trigger window is non-empty — with enough width to absorb
//!    composition tolerance — and admits a trigger the KEYGEN can actually
//!    produce (no earlier than clk→q + ADB latency).

use crate::gk::GkDesign;
use crate::windows::{GkTiming, TriggerWindow};
use glitchlock_netlist::{CellId, GateKind, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_sta::{analyze, ClockModel, TimingReport};
use glitchlock_stdcell::{Library, Ps};

/// Why a flip-flop was rejected (or accepted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// A GK fits.
    Feasible,
    /// On the worst setup path; the flow avoids it (Sec. IV-B).
    OnCriticalPath,
    /// `L_glitch < T_setup + T_hold`: no glitch can latch cleanly.
    GlitchTooShort,
    /// Eq. (3) violated: data arrives too late (or bounds inverted).
    Eq3Violated,
    /// The Eq. (5) window is empty or narrower than the safety margin.
    WindowEmpty,
    /// The window closes before the KEYGEN's earliest producible trigger.
    TriggerTooEarly,
}

/// Per-flip-flop analysis result.
#[derive(Clone, Copy, Debug)]
pub struct FfFeasibility {
    /// The capture flip-flop.
    pub ff: CellId,
    /// The accept/reject verdict.
    pub verdict: Verdict,
    /// The timing context used (arrival from STA, bounds from Eq. (1)).
    pub timing: GkTiming,
    /// The on-glitch trigger window, when one exists (already clipped to
    /// the KEYGEN's earliest producible trigger).
    pub window: Option<TriggerWindow>,
}

impl FfFeasibility {
    /// True when a GK fits here.
    pub fn is_feasible(&self) -> bool {
        self.verdict == Verdict::Feasible
    }
}

/// The full report: one entry per flip-flop, in [`Netlist::dff_cells`]
/// order.
#[derive(Clone, Debug)]
pub struct FeasibilityReport {
    entries: Vec<FfFeasibility>,
    total_ffs: usize,
}

impl FeasibilityReport {
    /// All per-flip-flop entries.
    pub fn entries(&self) -> &[FfFeasibility] {
        &self.entries
    }

    /// The feasible ("available") flip-flops, Table I's `Ava. FF`.
    pub fn available(&self) -> Vec<CellId> {
        self.entries
            .iter()
            .filter(|e| e.is_feasible())
            .map(|e| e.ff)
            .collect()
    }

    /// Number of available flip-flops.
    pub fn available_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_feasible()).count()
    }

    /// Coverage ratio, Table I's `Cov. (%)` (0–100).
    pub fn coverage_pct(&self) -> f64 {
        if self.total_ffs == 0 {
            return 0.0;
        }
        self.available_count() as f64 / self.total_ffs as f64 * 100.0
    }

    /// The entry for one flip-flop.
    pub fn entry_of(&self, ff: CellId) -> Option<&FfFeasibility> {
        self.entries.iter().find(|e| e.ff == ff)
    }
}

/// Minimum usable window width: absorbs delay-chain tolerance on both the
/// GK path delays and the KEYGEN trigger shift, plus fanout-load drift from
/// the insertion itself.
pub const WINDOW_MARGIN: Ps = Ps(120);

/// The earliest trigger a KEYGEN can produce: toggle-FF clk→q plus the ADB
/// MUX latency at its working fanout.
pub fn keygen_trigger_floor(library: &Library) -> Ps {
    let clk_to_q = library
        .cell(library.default_cell(GateKind::Dff))
        .seq()
        .expect("library DFF is sequential")
        .clk_to_q;
    let mux4 = library
        .cell(library.default_cell(GateKind::Mux4))
        .delay_with_fanout(3);
    clk_to_q + mux4
}

/// Analyzes every flip-flop for GK availability under `design`, using a
/// fresh STA run. Pass the same [`ClockModel`] the sign-off used.
pub fn analyze_feasibility(
    netlist: &Netlist,
    library: &Library,
    clock: &ClockModel,
    design: &GkDesign,
) -> FeasibilityReport {
    let report = analyze(netlist, library, clock);
    analyze_feasibility_with(netlist, library, clock, design, &report)
}

/// Same as [`analyze_feasibility`] but reusing an existing STA report.
pub fn analyze_feasibility_with(
    netlist: &Netlist,
    library: &Library,
    clock: &ClockModel,
    design: &GkDesign,
    sta: &TimingReport,
) -> FeasibilityReport {
    let critical: Vec<CellId> = sta.critical_ffs(netlist);
    let d_react = library
        .cell(library.default_cell(GateKind::Mux2))
        .delay_with_fanout(1);
    let floor = keygen_trigger_floor(library);

    let mut entries = Vec::with_capacity(netlist.dff_cells().len());
    for &ff in netlist.dff_cells() {
        let seq = library.ff_timing(netlist, ff);
        let check = sta.check_of(ff).expect("every DFF has a check");
        let timing = GkTiming {
            t_arrival: check.arrival_max,
            t_j: clock.skew_of(ff),
            t_clk: clock.period,
            t_setup: seq.setup,
            t_hold: seq.hold,
            l_glitch: design.l_glitch,
            // Conservative D_ready: the selected branch's whole path delay,
            // which the design targets at L_glitch (paper Sec. IV-A).
            d_ready: design.l_glitch,
            d_react,
        };
        let raw_window = timing.on_glitch_window();
        // Clip to what a KEYGEN can actually trigger.
        let window = raw_window.and_then(|w| {
            let lo = w.lo.max(floor);
            (lo < w.hi).then_some(TriggerWindow { lo, hi: w.hi })
        });
        let verdict = if critical.contains(&ff) {
            Verdict::OnCriticalPath
        } else if design.l_glitch < seq.setup + seq.hold {
            Verdict::GlitchTooShort
        } else if !timing.eq3_ok() {
            Verdict::Eq3Violated
        } else if raw_window.is_none() || raw_window.is_some_and(|w| w.width() < WINDOW_MARGIN) {
            Verdict::WindowEmpty
        } else if window.is_none() || window.is_some_and(|w| w.width() < WINDOW_MARGIN) {
            Verdict::TriggerTooEarly
        } else {
            Verdict::Feasible
        };
        if verdict == Verdict::Feasible {
            obs::incr(names::LOCK_GK_FEASIBLE);
        } else {
            obs::incr(names::LOCK_GK_REJECTED);
        }
        obs::event("placement", netlist.net(netlist.cell(ff).output()).name())
            .str(
                "verdict",
                match verdict {
                    Verdict::OnCriticalPath => "on-critical-path",
                    Verdict::GlitchTooShort => "glitch-too-short",
                    Verdict::Eq3Violated => "eq3-violated",
                    Verdict::WindowEmpty => "window-empty",
                    Verdict::TriggerTooEarly => "trigger-too-early",
                    Verdict::Feasible => "feasible",
                },
            )
            .u64("window_lo_ps", window.map_or(0, |w| w.lo.as_ps()))
            .u64("window_hi_ps", window.map_or(0, |w| w.hi.as_ps()))
            .emit();
        entries.push(FfFeasibility {
            ff,
            verdict,
            timing,
            window,
        });
    }
    FeasibilityReport {
        total_ffs: entries.len(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    fn lib() -> Library {
        Library::cl013g_like()
    }

    /// One shallow FF (feasible) and one deep FF (arrival close to UB).
    fn mixed_design(period: Ps) -> (Netlist, CellId, CellId) {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let q0 = nl.add_dff_named(a, "src").unwrap();
        // Shallow: one inverter.
        let fast = nl.add_gate(GateKind::Inv, &[q0]).unwrap();
        let qf = nl.add_dff_named(fast, "fast").unwrap();
        // Deep: a long delay-cell chain.
        let mut slow = q0;
        for _ in 0..2 {
            let s = nl.add_gate(GateKind::Buf, &[slow]).unwrap();
            let c = nl.net(s).driver().unwrap();
            nl.bind_lib(c, lib.by_name("DLY4X1").unwrap()).unwrap();
            slow = s;
        }
        let qs = nl.add_dff_named(slow, "slow").unwrap();
        nl.mark_output(qf, "yf");
        nl.mark_output(qs, "ys");
        let ffs = nl.dff_cells().to_vec();
        let _ = period;
        (nl, ffs[1], ffs[2])
    }

    #[test]
    fn shallow_ff_feasible_deep_ff_not() {
        let (nl, fast, slow) = mixed_design(Ps::from_ns(3));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let report = analyze_feasibility(&nl, &lib, &clock, &GkDesign::paper_default());
        let f = report.entry_of(fast).unwrap();
        assert!(f.is_feasible(), "shallow FF: {:?}", f.verdict);
        assert!(f.window.is_some());
        let s = report.entry_of(slow).unwrap();
        assert!(!s.is_feasible());
        // Deep: arrival ~ 160 + 2000 = 2160; UB = 2910; arrival + 2*L > UB.
        assert!(matches!(
            s.verdict,
            Verdict::Eq3Violated | Verdict::WindowEmpty | Verdict::OnCriticalPath
        ));
        assert!(report.coverage_pct() > 0.0 && report.coverage_pct() < 100.0);
    }

    #[test]
    fn too_short_glitch_rejected_everywhere() {
        let (nl, _, _) = mixed_design(Ps::from_ns(3));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let design = GkDesign {
            l_glitch: Ps(100), // < setup(90) + hold(35)
            ..GkDesign::paper_default()
        };
        let report = analyze_feasibility(&nl, &lib, &clock, &design);
        assert_eq!(report.available_count(), 0);
        assert!(report
            .entries()
            .iter()
            .all(|e| e.verdict == Verdict::GlitchTooShort || e.verdict == Verdict::OnCriticalPath));
    }

    #[test]
    fn tight_clock_kills_feasibility() {
        let (nl, fast, _) = mixed_design(Ps::from_ns(3));
        let lib = lib();
        // With a 1.2ns period there is no room for a 1ns glitch flow.
        let clock = ClockModel::new(Ps(1200));
        let report = analyze_feasibility(&nl, &lib, &clock, &GkDesign::paper_default());
        assert!(!report.entry_of(fast).unwrap().is_feasible());
    }

    #[test]
    fn window_respects_keygen_floor() {
        let (nl, fast, _) = mixed_design(Ps::from_ns(3));
        let lib = lib();
        let clock = ClockModel::new(Ps::from_ns(3));
        let report = analyze_feasibility(&nl, &lib, &clock, &GkDesign::paper_default());
        let w = report.entry_of(fast).unwrap().window.unwrap();
        assert!(w.lo >= keygen_trigger_floor(&lib));
    }

    #[test]
    fn coverage_on_synthetic_profile_is_in_calibrated_range() {
        let profile = glitchlock_circuits::profile_by_name("s5378").unwrap();
        let nl = glitchlock_circuits::generate(&profile);
        let lib = lib();
        let clock = ClockModel::new(profile.clock_period);
        let report = analyze_feasibility(&nl, &lib, &clock, &GkDesign::paper_default());
        let cov = report.coverage_pct();
        // Calibrated toward the paper's 63.8%; wide tolerance—the value is
        // measured, not copied.
        assert!(
            (30.0..95.0).contains(&cov),
            "s5378 coverage {cov:.1}% out of plausible range"
        );
    }
}
