//! Dependency-free seeded pseudo-random numbers for the `glitchlock`
//! workspace.
//!
//! The workspace must build with **no network access**, so the external
//! `rand` crate is replaced by this one: every member declares
//! `rand = { package = "glitchlock-prng", … }`, which keeps all existing
//! `use rand::…` paths compiling unchanged. The API mirrors the subset of
//! rand 0.8 the workspace actually uses:
//!
//! * [`rngs::StdRng`] — xoshiro256\*\* seeded through SplitMix64.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`].
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is deterministic in its seed on every platform. It is
//! **not** cryptographically secure — experiments and tests only.

#![deny(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of uniformly distributed words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly — the argument type of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift mapping of a uniform u64 onto [0, span);
                // bias is < span / 2^64 — negligible for experiment use.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random slice operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and selection over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[sample_index(rng, self.len())])
            }
        }
    }

    fn sample_index<R: RngCore + ?Sized>(rng: &mut R, len: usize) -> usize {
        ((rng.next_u64() as u128 * len as u128) >> 64) as usize
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* (Blackman &
    /// Vigna), seeded through SplitMix64. Fast, 256-bit state, passes BigCrush;
    /// deterministic in the seed on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias kept for call sites that prefer rand's small-generator name.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let u: usize = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f: f64 = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let s: i32 = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} of ~2500");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn bool_sampling_is_balanced() {
        let mut rng = StdRng::seed_from_u64(17);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4600..5400).contains(&ones));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes all");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(23);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_seed_accepts_all_zero() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn generic_rng_bounds_compose() {
        // Mirrors workspace call shapes: `fn f<R: Rng>(rng: &mut R)` and
        // trait-object style `&mut dyn RngCore`.
        fn draw<R: Rng>(rng: &mut R) -> bool {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(31);
        let _ = draw(&mut rng);
        let dynref: &mut dyn RngCore = &mut rng;
        let _ = dynref.next_u32();
    }
}
