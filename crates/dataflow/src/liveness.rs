//! Backward liveness: which nets can influence a primary output.
//!
//! A net is *needed* when it is a primary output or feeds any pin —
//! including flip-flop D pins — of a cell whose own output is needed.
//! This is the dataflow formulation of the lint dead-cone sweep: a cell
//! whose output net is not needed (and is not itself a primary output)
//! heads a cone resynthesis would strip.

use crate::engine::{solve, Config, Direction, Domain, Solution, Values};
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};

/// The boolean liveness domain (`false` = dead, `true` = needed).
pub struct LiveDomain;

impl Domain for LiveDomain {
    type Value = bool;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _nl: &Netlist) -> bool {
        false
    }

    fn boundary(&self, nl: &Netlist, net: NetId) -> Option<bool> {
        nl.output_ports()
            .iter()
            .any(|&(po, _)| po == net)
            .then_some(true)
    }

    fn transfer(
        &self,
        nl: &Netlist,
        cell: CellId,
        values: &Values<bool>,
        out: &mut Vec<(NetId, bool)>,
    ) {
        let c = nl.cell(cell);
        if c.kind() == GateKind::Input || !*values.net(c.output()) {
            return;
        }
        for &i in c.inputs() {
            out.push((i, true));
        }
    }

    fn join(&self, into: &mut bool, from: &bool) -> bool {
        if *from && !*into {
            *into = true;
            true
        } else {
            false
        }
    }

    fn widen(&self, value: &mut bool) {
        *value = true;
    }
}

/// Per-net liveness for `nl`.
pub fn live_facts(nl: &Netlist) -> Solution<bool> {
    solve(nl, &LiveDomain, Config::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_cone_is_not_needed_but_its_shared_fanin_is() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let shared = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let live = nl.add_gate(GateKind::Inv, &[shared]).unwrap();
        nl.mark_output(live, "y");
        let dead_mid = nl.add_gate(GateKind::Or, &[shared, a]).unwrap();
        let dead_root = nl.add_gate(GateKind::Inv, &[dead_mid]).unwrap();
        let facts = live_facts(&nl);
        assert!(*facts.net(live) && *facts.net(shared) && *facts.net(a));
        assert!(!*facts.net(dead_mid) && !*facts.net(dead_root));
    }

    #[test]
    fn liveness_crosses_flip_flops() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let q = nl.add_dff(g).unwrap();
        nl.mark_output(q, "q");
        let facts = live_facts(&nl);
        assert!(*facts.net(g) && *facts.net(a));
    }
}
