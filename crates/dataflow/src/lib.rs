//! Monotone-framework dataflow analysis over gate-level netlists.
//!
//! This crate is the shared static-analysis substrate for the glitchlock
//! workspace: a generic worklist [`engine`] with pluggable lattice
//! [`Domain`]s, plus the day-one domains the lint passes, the CLI's
//! `analyze` subcommand, and the removal attack build on:
//!
//! * [`consts`] — ternary constant/X propagation under partial (key)
//!   assignments, bit-identical to `Netlist::eval_nets` semantics.
//! * [`taint`] — per-key-bit dependence tracking over [`KeyBitSet`]
//!   lattices (64 bits per word, mirroring the packed evaluator's lane
//!   layout), in a raw structural and a semantically refined flavor.
//! * [`scoap`] — SCOAP-style controllability/observability scores that
//!   feed the timing pass's glitch-sensitivity suggestions.
//! * [`liveness`] — backward can-reach-a-primary-output facts, the
//!   engine-based rebuild of the lint dead-cone sweep.
//!
//! Sequential (flip-flop-cyclic) designs converge through the same
//! worklist; [`Domain::widen`] bounds iteration on domains whose chains
//! would otherwise be long. [`AnalysisFacts`] bundles every domain for
//! one netlist and emits the `analysis.*` observability counters.
//!
//! The crate sits below `glitchlock-lint` and `glitchlock-attacks` and is
//! re-exported from the facade crate as `glitchlock::dataflow` (the
//! netlist crate cannot re-export it without a dependency cycle).

#![deny(missing_docs)]

pub mod bitset;
pub mod consts;
pub mod engine;
pub mod facts;
pub mod liveness;
pub mod scoap;
pub mod taint;
pub mod vn;

pub use bitset::KeyBitSet;
pub use consts::{const_facts, const_facts_for_inputs, ConstDomain, Ternary};
pub use engine::{solve, Config, Direction, Domain, Solution, Values};
pub use facts::AnalysisFacts;
pub use liveness::{live_facts, LiveDomain};
pub use scoap::{scoap_facts, CcDomain, CcPair, CoDomain, ScoapFacts, INF};
pub use taint::{taint_facts, TaintDomain, TaintMode};
pub use vn::{gk_identity_x, Class, Def, ValueNumbering};
