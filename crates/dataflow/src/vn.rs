//! Structural value numbering over a netlist.
//!
//! Nets that provably carry the same waveform get the same class:
//! buffers (including bound delay cells, which are `GateKind::Buf` with a
//! library binding) are transparent, commutative gates sort their operand
//! classes, and identical `(kind, operands)` definitions hash-cons to one
//! class. The refined taint domain uses classes to recognize
//! mux-arms-equal and glitch-key-gate identities without walking delay
//! chains by hand.

use glitchlock_netlist::{GateKind, NetId, Netlist};
use std::collections::HashMap;

/// A value class index.
pub type Class = u32;

/// The hash-consed definition of a class: gate kind plus operand classes
/// (sorted for commutative kinds). Opaque sources — primary inputs and
/// flip-flop Q pins — have no definition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Def {
    /// The defining gate kind.
    pub kind: GateKind,
    /// Operand classes, sorted when `kind` is commutative.
    pub operands: Vec<Class>,
}

/// Per-net value classes for one netlist.
pub struct ValueNumbering {
    class_of_net: Vec<Class>,
    defs: Vec<Option<Def>>,
    repr: Vec<NetId>,
}

fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    )
}

impl ValueNumbering {
    /// Numbers every net of `nl`.
    ///
    /// On a netlist with combinational cycles every net falls back to its
    /// own class (no definitions), which degrades refined-taint rules to
    /// the raw ones rather than failing.
    pub fn build(nl: &Netlist) -> Self {
        let n_nets = nl.nets().len();
        let mut vn = ValueNumbering {
            class_of_net: vec![0; n_nets],
            defs: Vec::new(),
            repr: Vec::new(),
        };
        let Ok(order) = nl.topo_order_cached() else {
            for (id, _) in nl.nets() {
                let class = vn.fresh(None, id);
                vn.class_of_net[id.index()] = class;
            }
            return vn;
        };

        let mut cons: HashMap<Def, Class> = HashMap::new();
        // Primary inputs first: they are sources, not cell outputs.
        for &pi in nl.input_nets() {
            let class = vn.fresh(None, pi);
            vn.class_of_net[pi.index()] = class;
        }
        for &cid in order {
            let cell = nl.cell(cid);
            let out = cell.output();
            let class = match cell.kind() {
                GateKind::Input => continue, // numbered above
                GateKind::Dff => vn.fresh(None, out),
                GateKind::Buf => vn.class_of_net[cell.inputs()[0].index()],
                kind => {
                    let mut operands: Vec<Class> = cell
                        .inputs()
                        .iter()
                        .map(|&i| vn.class_of_net[i.index()])
                        .collect();
                    if commutative(kind) {
                        operands.sort_unstable();
                    }
                    let def = Def { kind, operands };
                    match cons.get(&def) {
                        Some(&class) => class,
                        None => {
                            let class = vn.fresh(Some(def.clone()), out);
                            cons.insert(def, class);
                            class
                        }
                    }
                }
            };
            vn.class_of_net[out.index()] = class;
        }
        vn
    }

    fn fresh(&mut self, def: Option<Def>, repr: NetId) -> Class {
        let class = self.defs.len() as Class;
        self.defs.push(def);
        self.repr.push(repr);
        class
    }

    /// The class of `net`.
    pub fn class(&self, net: NetId) -> Class {
        self.class_of_net[net.index()]
    }

    /// The definition of `class`, if it is a visible gate.
    pub fn def(&self, class: Class) -> Option<&Def> {
        self.defs[class as usize].as_ref()
    }

    /// The topologically earliest net carrying `class`.
    pub fn repr(&self, class: Class) -> NetId {
        self.repr[class as usize]
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.defs.len()
    }
}

/// If the Mux2 `(in0, in1, sel)` is a glitch-key-gate identity —
/// `MUX(XNOR(x, k), XOR(x, k), sel)` with `k` in the same value class as
/// `sel` — the output is semantically `INV(x)` (or `x` with the arms
/// swapped) for *every* key value. Returns the class of `x`.
pub fn gk_identity_x(vn: &ValueNumbering, in0: NetId, in1: NetId, sel: NetId) -> Option<Class> {
    let d0 = vn.def(vn.class(in0))?;
    let d1 = vn.def(vn.class(in1))?;
    let (xnor, xor) = match (d0.kind, d1.kind) {
        (GateKind::Xnor, GateKind::Xor) => (d0, d1),
        (GateKind::Xor, GateKind::Xnor) => (d1, d0),
        _ => return None,
    };
    if xnor.operands.len() != 2 || xor.operands.len() != 2 {
        return None;
    }
    let k = vn.class(sel);
    let other = |def: &Def| -> Option<Class> {
        if def.operands[0] == k {
            Some(def.operands[1])
        } else if def.operands[1] == k {
            Some(def.operands[0])
        } else {
            None
        }
    };
    let x0 = other(xnor)?;
    let x1 = other(xor)?;
    (x0 == x1).then_some(x0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_transparent_and_commutative_gates_hash_cons() {
        let mut nl = Netlist::new("vn");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ab = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let ba = nl.add_gate(GateKind::And, &[b, a]).unwrap();
        let buf = nl.add_gate(GateKind::Buf, &[ab]).unwrap();
        let y = nl.add_gate(GateKind::Or, &[buf, ba]).unwrap();
        nl.mark_output(y, "y");
        let vn = ValueNumbering::build(&nl);
        assert_eq!(vn.class(ab), vn.class(ba));
        assert_eq!(vn.class(buf), vn.class(ab));
        assert_eq!(vn.repr(vn.class(buf)), ab);
        assert_ne!(vn.class(y), vn.class(ab));
    }

    #[test]
    fn gk_identity_recognized_through_delay_buffers() {
        // MUX(XNOR(x, k), XOR(x, buf(buf(k))), k) == INV(x).
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let k = nl.add_input("k");
        let kd1 = nl.add_gate(GateKind::Buf, &[k]).unwrap();
        let kd2 = nl.add_gate(GateKind::Buf, &[kd1]).unwrap();
        let xnor = nl.add_gate(GateKind::Xnor, &[x, k]).unwrap();
        let xor = nl.add_gate(GateKind::Xor, &[x, kd2]).unwrap();
        let y = nl.add_gate(GateKind::Mux2, &[xnor, xor, k]).unwrap();
        nl.mark_output(y, "y");
        let vn = ValueNumbering::build(&nl);
        let xc = gk_identity_x(&vn, xnor, xor, k).expect("identity");
        assert_eq!(xc, vn.class(x));
        // x and k are symmetric in the motif: selecting on x makes the
        // output a function of k alone.
        assert_eq!(gk_identity_x(&vn, xnor, xor, x), Some(vn.class(k)));
        // A sel unrelated to either operand is no identity.
        let z = nl.add_input("z");
        let vn = ValueNumbering::build(&nl);
        assert_eq!(gk_identity_x(&vn, xnor, xor, z), None);
    }
}
