//! The generic monotone-framework worklist engine.
//!
//! A [`Domain`] plugs a lattice and a per-cell transfer function into the
//! engine; [`solve`] iterates to a fixpoint over the netlist graph. The
//! engine is direction-agnostic: forward domains re-run a cell when one of
//! its input nets changes, backward domains re-run it when its output net
//! changes. Sequential (flip-flop-cyclic) designs converge through the
//! same worklist; a per-net widening threshold bounds iteration on domains
//! whose chains would otherwise be long (see [`Domain::widen`]).

use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use std::collections::VecDeque;

/// Which way facts flow through the netlist graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from cell inputs to the cell's output net.
    Forward,
    /// Facts flow from a cell's output net back to its input nets.
    Backward,
}

/// Read-only view of the current per-net values, passed to transfer
/// functions.
pub struct Values<'a, V>(pub(crate) &'a [V]);

impl<V> Values<'_, V> {
    /// Current value of `net`.
    pub fn net(&self, net: NetId) -> &V {
        &self.0[net.index()]
    }
}

/// A pluggable lattice domain.
///
/// Contracts the engine relies on:
///
/// * `join` must be a semilattice join: associative, commutative,
///   idempotent, and it must return `true` iff the stored value changed.
/// * `transfer` must be monotone in the values it reads.
/// * `widen` must drive any value to one that repeated widening leaves
///   fixed (typically the lattice top); the engine calls it once a net has
///   changed more than [`Config::widen_after`] times, so domains with
///   infinite (or merely long) ascending chains still terminate.
pub trait Domain {
    /// The lattice element stored per net.
    type Value: Clone + PartialEq;

    /// Flow direction of this domain.
    fn direction(&self) -> Direction;

    /// The lattice bottom, stored for every net before iteration.
    fn bottom(&self, nl: &Netlist) -> Self::Value;

    /// Boundary value joined into `net` before iteration starts (primary
    /// inputs for forward domains, primary outputs for backward ones).
    fn boundary(&self, nl: &Netlist, net: NetId) -> Option<Self::Value>;

    /// Apply the cell's transfer function: read current values through
    /// `values` and push `(net, value)` updates. Forward domains update
    /// the cell's output net; backward domains update its input nets.
    fn transfer(
        &self,
        nl: &Netlist,
        cell: CellId,
        values: &Values<Self::Value>,
        out: &mut Vec<(NetId, Self::Value)>,
    );

    /// Join `from` into `into`; return whether `into` changed.
    fn join(&self, into: &mut Self::Value, from: &Self::Value) -> bool;

    /// Force `value` up (or, for cost lattices, to the saturated element)
    /// so iteration terminates. Must reach a fixed value under repetition.
    fn widen(&self, value: &mut Self::Value);

    /// Extra nets (beyond the direction-implied ones) whose change must
    /// re-run `cell`'s transfer. Used by domains whose transfer peeks at
    /// non-local values, e.g. the refined taint domain reading a value
    /// class representative.
    fn extra_deps(&self, _nl: &Netlist, _cell: CellId) -> Vec<NetId> {
        Vec::new()
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Per-net update budget before [`Domain::widen`] kicks in. The
    /// default (8) lets small sequential loops settle exactly and widens
    /// anything deeper.
    pub widen_after: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { widen_after: 8 }
    }
}

/// The fixpoint reached by [`solve`]: one lattice value per net plus
/// iteration statistics.
pub struct Solution<V> {
    values: Vec<V>,
    /// Transfer-function applications performed.
    pub iterations: u64,
    /// Nets that hit the widening threshold at least once.
    pub widened: u64,
}

impl<V> Solution<V> {
    /// The fixpoint value of `net`.
    pub fn net(&self, net: NetId) -> &V {
        &self.values[net.index()]
    }

    /// All per-net values, indexed by `NetId::index`.
    pub fn values(&self) -> &[V] {
        &self.values
    }
}

/// Run `dom` to a fixpoint over `nl` and return the per-net solution.
///
/// Deterministic: the worklist is seeded in (reverse) topological order
/// when the netlist is acyclic modulo flip-flops, in id order otherwise,
/// and processed FIFO, so two runs over the same netlist produce identical
/// iteration counts.
pub fn solve<D: Domain>(nl: &Netlist, dom: &D, cfg: Config) -> Solution<D::Value> {
    let n_nets = nl.nets().len();
    let mut values: Vec<D::Value> = (0..n_nets).map(|_| dom.bottom(nl)).collect();
    for (id, _) in nl.nets() {
        if let Some(b) = dom.boundary(nl, id) {
            dom.join(&mut values[id.index()], &b);
        }
    }

    // Net -> cells whose transfer must re-run when the net's value changes.
    let mut deps: Vec<Vec<CellId>> = vec![Vec::new(); n_nets];
    for (cid, cell) in nl.cells() {
        if cell.kind() == GateKind::Input {
            continue;
        }
        match dom.direction() {
            Direction::Forward => {
                for &i in cell.inputs() {
                    deps[i.index()].push(cid);
                }
            }
            Direction::Backward => deps[cell.output().index()].push(cid),
        }
        for extra in dom.extra_deps(nl, cid) {
            deps[extra.index()].push(cid);
        }
    }

    // The cached topological order covers combinational cells only;
    // flip-flops are sources there but carry transfer functions here, so
    // append them explicitly.
    let mut order: Vec<CellId> = match nl.topo_order_cached() {
        Ok(topo) => topo
            .iter()
            .copied()
            .chain(nl.dff_cells().iter().copied())
            .collect(),
        Err(_) => nl.cells().map(|(id, _)| id).collect(),
    };
    if dom.direction() == Direction::Backward {
        order.reverse();
    }

    let mut queue: VecDeque<CellId> = VecDeque::with_capacity(order.len());
    let mut in_queue = vec![false; nl.cells().len()];
    for cid in order {
        if nl.cell(cid).kind() != GateKind::Input {
            queue.push_back(cid);
            in_queue[cid.index()] = true;
        }
    }

    let mut update_count = vec![0u32; n_nets];
    let mut widened_nets = vec![false; n_nets];
    let mut iterations = 0u64;
    let mut scratch: Vec<(NetId, D::Value)> = Vec::new();

    while let Some(cid) = queue.pop_front() {
        in_queue[cid.index()] = false;
        iterations += 1;
        scratch.clear();
        dom.transfer(nl, cid, &Values(&values), &mut scratch);
        for (net, v) in scratch.drain(..) {
            let ix = net.index();
            let will_widen = update_count[ix] >= cfg.widen_after;
            let before = if will_widen {
                Some(values[ix].clone())
            } else {
                None
            };
            if !dom.join(&mut values[ix], &v) {
                continue;
            }
            update_count[ix] += 1;
            if let Some(before) = before {
                dom.widen(&mut values[ix]);
                widened_nets[ix] = true;
                if values[ix] == before {
                    continue;
                }
            }
            for &reader in &deps[ix] {
                if !in_queue[reader.index()] {
                    in_queue[reader.index()] = true;
                    queue.push_back(reader);
                }
            }
        }
    }

    Solution {
        values,
        iterations,
        widened: widened_nets.iter().filter(|&&w| w).count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::Netlist;

    /// Forward "combinational depth" domain: every net's value is the
    /// longest gate count from a primary input, saturating. Through a
    /// flip-flop loop the chain is infinite, so widening must fire.
    struct Depth;

    impl Domain for Depth {
        type Value = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self, _nl: &Netlist) -> u32 {
            0
        }
        fn boundary(&self, _nl: &Netlist, _net: NetId) -> Option<u32> {
            None
        }
        fn transfer(
            &self,
            nl: &Netlist,
            cell: CellId,
            values: &Values<u32>,
            out: &mut Vec<(NetId, u32)>,
        ) {
            let c = nl.cell(cell);
            let depth = c
                .inputs()
                .iter()
                .map(|&i| *values.net(i))
                .max()
                .unwrap_or(0)
                .saturating_add(1);
            out.push((c.output(), depth));
        }
        fn join(&self, into: &mut u32, from: &u32) -> bool {
            if *from > *into {
                *into = *from;
                true
            } else {
                false
            }
        }
        fn widen(&self, value: &mut u32) {
            *value = u32::MAX;
        }
    }

    #[test]
    fn forward_depth_on_a_chain() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::Inv, &[g1]).unwrap();
        nl.mark_output(g2, "y");
        let sol = solve(&nl, &Depth, Config::default());
        assert_eq!(*sol.net(g1), 1);
        assert_eq!(*sol.net(g2), 2);
        assert_eq!(sol.widened, 0);
    }

    #[test]
    fn ff_loop_widens_instead_of_diverging() {
        // q = DFF(d); d = INV(q): the depth lattice ascends forever
        // without widening.
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let d = nl.add_gate(GateKind::Inv, &[q]).unwrap();
        let ff = nl.dff_cells()[0];
        nl.rewire_input(ff, 0, d).unwrap();
        let y = nl.add_gate(GateKind::And, &[a, q]).unwrap();
        nl.mark_output(y, "y");
        let sol = solve(&nl, &Depth, Config { widen_after: 4 });
        assert!(sol.widened >= 1, "loop must trigger widening");
        assert_eq!(*sol.net(d), u32::MAX);
    }
}
