//! Key-dependence taint: which key bits can influence which nets.
//!
//! Two precision levels share one domain:
//!
//! * **Raw** taint is purely structural — a net is tainted by every key
//!   bit in its transitive fan-in. It over-approximates influence and is
//!   what attack-side pruning wants (nothing semantically dependent is
//!   ever missed).
//! * **Refined** taint additionally applies semantic laundering rules:
//!   a net that constant-collapses under all-`X` inputs carries no taint;
//!   a mux whose data arms are in the same value class drops its select's
//!   taint; and a glitch-key-gate identity `MUX(XNOR(x,k), XOR(x,k), k)`
//!   reduces to `INV(x)`, so only `x`'s taint flows through. Refined
//!   taint is what the lint reachability codes report: a key bit whose
//!   refined taint reaches no primary output is statically inert.

use crate::bitset::KeyBitSet;
use crate::consts::Ternary;
use crate::engine::{solve, Config, Direction, Domain, Solution, Values};
use crate::vn::{gk_identity_x, ValueNumbering};
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use std::collections::HashMap;

/// Precision level of the taint transfer function.
pub enum TaintMode<'a> {
    /// Structural union over all cell inputs.
    Raw,
    /// Semantic rules on top of raw, consulting value numbering and
    /// all-`X` constant facts.
    Refined {
        /// Value classes for mux-arm and glitch-key-gate reasoning.
        vn: &'a ValueNumbering,
        /// Constant facts under no pins (all inputs `X`).
        consts: &'a Solution<Ternary>,
    },
}

/// The key-taint domain over [`KeyBitSet`]s.
pub struct TaintDomain<'a> {
    bit_of: HashMap<NetId, usize>,
    width: usize,
    mode: TaintMode<'a>,
    through_ffs: bool,
}

impl<'a> TaintDomain<'a> {
    /// A domain tracking `keys` (bit `i` is `keys[i]`). With
    /// `through_ffs`, taint crosses flip-flops (sequential influence);
    /// without, Q pins are clean (single-frame combinational influence).
    pub fn new(keys: &[NetId], mode: TaintMode<'a>, through_ffs: bool) -> Self {
        TaintDomain {
            bit_of: keys.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
            width: keys.len(),
            mode,
            through_ffs,
        }
    }
}

impl Domain for TaintDomain<'_> {
    type Value = KeyBitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _nl: &Netlist) -> KeyBitSet {
        KeyBitSet::empty(self.width)
    }

    fn boundary(&self, _nl: &Netlist, net: NetId) -> Option<KeyBitSet> {
        self.bit_of
            .get(&net)
            .map(|&bit| KeyBitSet::singleton(self.width, bit))
    }

    fn transfer(
        &self,
        nl: &Netlist,
        cell: CellId,
        values: &Values<KeyBitSet>,
        out: &mut Vec<(NetId, KeyBitSet)>,
    ) {
        let c = nl.cell(cell);
        let output = c.output();
        match c.kind() {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => return,
            GateKind::Dff => {
                if self.through_ffs {
                    out.push((output, values.net(c.inputs()[0]).clone()));
                }
                return;
            }
            _ => {}
        }
        if let TaintMode::Refined { vn, consts } = &self.mode {
            // A constant net carries no influence at all.
            if consts.net(output).is_const() {
                return;
            }
            if c.kind() == GateKind::Mux2 {
                let (in0, in1, sel) = (c.inputs()[0], c.inputs()[1], c.inputs()[2]);
                if let Some(x_class) = gk_identity_x(vn, in0, in1, sel) {
                    // Output is INV(x) (or x) for every key value: only
                    // x's taint survives the key-gate.
                    out.push((output, values.net(vn.repr(x_class)).clone()));
                    return;
                }
                if vn.class(in0) == vn.class(in1) {
                    // Equal arms: the select cannot change the output.
                    let mut t = values.net(in0).clone();
                    t.union_with(values.net(in1));
                    out.push((output, t));
                    return;
                }
            }
        }
        let mut t = KeyBitSet::empty(self.width);
        for &i in c.inputs() {
            t.union_with(values.net(i));
        }
        out.push((output, t));
    }

    fn join(&self, into: &mut KeyBitSet, from: &KeyBitSet) -> bool {
        into.union_with(from)
    }

    fn widen(&self, _value: &mut KeyBitSet) {
        // The bitset lattice has height `width`: chains are finite, so
        // widening never needs to over-approximate.
    }

    fn extra_deps(&self, nl: &Netlist, cell: CellId) -> Vec<NetId> {
        if let TaintMode::Refined { vn, .. } = &self.mode {
            let c = nl.cell(cell);
            if c.kind() == GateKind::Mux2 {
                let (in0, in1, sel) = (c.inputs()[0], c.inputs()[1], c.inputs()[2]);
                if let Some(x_class) = gk_identity_x(vn, in0, in1, sel) {
                    return vec![vn.repr(x_class)];
                }
            }
        }
        Vec::new()
    }
}

/// Taint facts for `keys` over `nl` at the given precision.
pub fn taint_facts(
    nl: &Netlist,
    keys: &[NetId],
    mode: TaintMode<'_>,
    through_ffs: bool,
) -> Solution<KeyBitSet> {
    solve(
        nl,
        &TaintDomain::new(keys, mode, through_ffs),
        Config::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::const_facts;
    use glitchlock_netlist::Logic;

    #[test]
    fn raw_taint_unions_and_crosses_ffs() {
        let mut nl = Netlist::new("raw");
        let a = nl.add_input("a");
        let k = nl.add_input("k");
        let x = nl.add_gate(GateKind::Xor, &[a, k]).unwrap();
        let q = nl.add_dff(x).unwrap();
        let y = nl.add_gate(GateKind::And, &[q, a]).unwrap();
        nl.mark_output(y, "y");
        let seq = taint_facts(&nl, &[k], TaintMode::Raw, true);
        assert!(seq.net(y).contains(0));
        let comb = taint_facts(&nl, &[k], TaintMode::Raw, false);
        assert!(comb.net(y).is_empty(), "FF blocks single-frame taint");
    }

    #[test]
    fn refined_taint_drops_constant_collapsed_and_equal_arm_muxes() {
        let mut nl = Netlist::new("refined");
        let a = nl.add_input("a");
        let k = nl.add_input("k");
        let zero = nl.add_const(false);
        let masked = nl.add_gate(GateKind::And, &[k, zero]).unwrap();
        let fast = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let slow1 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let slow = nl.add_gate(GateKind::Buf, &[slow1]).unwrap();
        let tdb = nl.add_gate(GateKind::Mux2, &[fast, slow, k]).unwrap();
        let y = nl.add_gate(GateKind::Or, &[masked, tdb]).unwrap();
        nl.mark_output(y, "y");

        let raw = taint_facts(&nl, &[k], TaintMode::Raw, true);
        assert!(raw.net(y).contains(0));

        let vn = ValueNumbering::build(&nl);
        let consts = const_facts(&nl, &[]);
        let refined = taint_facts(
            &nl,
            &[k],
            TaintMode::Refined {
                vn: &vn,
                consts: &consts,
            },
            true,
        );
        assert!(refined.net(masked).is_empty(), "AND with 0 collapses");
        assert!(refined.net(tdb).is_empty(), "equal-arm mux drops sel");
        assert!(refined.net(y).is_empty());
    }

    #[test]
    fn refined_taint_kills_key_through_gk_identity() {
        let mut nl = Netlist::new("gk");
        let x = nl.add_input("x");
        let k = nl.add_input("k");
        let kd = nl.add_gate(GateKind::Buf, &[k]).unwrap();
        let xnor = nl.add_gate(GateKind::Xnor, &[x, kd]).unwrap();
        let xor = nl.add_gate(GateKind::Xor, &[x, kd]).unwrap();
        let y = nl.add_gate(GateKind::Mux2, &[xnor, xor, k]).unwrap();
        nl.mark_output(y, "y");

        let vn = ValueNumbering::build(&nl);
        let consts = const_facts(&nl, &[]);
        let refined = taint_facts(
            &nl,
            &[k],
            TaintMode::Refined {
                vn: &vn,
                consts: &consts,
            },
            true,
        );
        assert!(refined.net(xnor).contains(0), "branches see the key");
        assert!(refined.net(y).is_empty(), "the mux output is INV(x)");
        // Semantics check: y really is INV(x) for both key values.
        for kv in [Logic::Zero, Logic::One] {
            for xv in [Logic::Zero, Logic::One] {
                let dense = nl.eval_nets(&[xv, kv], None);
                assert_eq!(dense[y.index()], !xv);
            }
        }
    }
}
