//! Fixed-width key-bit sets, packed 64 bits per word.
//!
//! The taint domain stores one of these per net; the packing mirrors the
//! 64-lane layout of `glitchlock_netlist::PackedLogic`, so a design with
//! 64 or fewer key bits costs one word per net.

/// A set over key-bit indices `0..width`, packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KeyBitSet {
    words: Vec<u64>,
    width: usize,
}

impl KeyBitSet {
    /// The empty set over `width` bits.
    pub fn empty(width: usize) -> Self {
        KeyBitSet {
            words: vec![0; width.div_ceil(64)],
            width,
        }
    }

    /// The singleton `{bit}` over `width` bits.
    pub fn singleton(width: usize, bit: usize) -> Self {
        let mut s = Self::empty(width);
        s.insert(bit);
        s
    }

    /// Number of tracked bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Adds `bit` to the set.
    pub fn insert(&mut self, bit: usize) {
        debug_assert!(bit < self.width);
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether `bit` is in the set.
    pub fn contains(&self, bit: usize) -> bool {
        bit < self.width && self.words[bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &KeyBitSet) -> bool {
        debug_assert_eq!(self.width, other.width);
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of bits set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the two sets share at least one bit.
    pub fn intersects(&self, other: &KeyBitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_union_iterate_across_word_boundaries() {
        let mut a = KeyBitSet::empty(130);
        a.insert(0);
        a.insert(63);
        a.insert(64);
        a.insert(129);
        let mut b = KeyBitSet::empty(130);
        b.insert(65);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union is a no-op");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
        assert_eq!(b.count(), 5);
        assert!(b.contains(129) && !b.contains(128));
        assert!(b.intersects(&KeyBitSet::singleton(130, 64)));
        assert!(!b.intersects(&KeyBitSet::singleton(130, 100)));
    }
}
