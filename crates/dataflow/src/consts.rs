//! Ternary constant/X propagation under partial input assignments.
//!
//! The lattice is `Bot < {0, 1} < X`: `Bot` means "not yet computed", a
//! definite level means "provably this constant for every assignment of
//! the unpinned inputs", and `X` is the top ("unknown"). Transfer is the
//! netlist's own three-valued [`GateKind::eval`], and flip-flop Q pins
//! are pinned to `X` unless the caller pins them — exactly the semantics
//! of `Netlist::eval_nets(inputs, None)`, which the lint key-bit checks
//! were originally built on.

use crate::engine::{solve, Config, Direction, Domain, Solution, Values};
use glitchlock_netlist::{CellId, GateKind, Logic, NetId, Netlist};
use std::collections::HashMap;

/// A ternary constant fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ternary {
    /// Not yet computed (lattice bottom).
    Bot,
    /// Provably this level under the given pins.
    Val(Logic),
}

impl Ternary {
    /// Collapses `Bot` to `X` for consumers that want plain logic.
    pub fn to_logic(self) -> Logic {
        match self {
            Ternary::Bot => Logic::X,
            Ternary::Val(l) => l,
        }
    }

    /// Whether the fact is a definite constant (`0` or `1`).
    pub fn is_const(self) -> bool {
        matches!(self, Ternary::Val(Logic::Zero) | Ternary::Val(Logic::One))
    }
}

/// The constant-propagation domain. `pins` fixes chosen nets (typically
/// primary inputs, optionally flip-flop Q nets) to definite levels; every
/// other primary input and Q pin starts at `X`.
pub struct ConstDomain {
    pins: HashMap<NetId, Logic>,
}

impl ConstDomain {
    /// A domain with the given pinned nets.
    pub fn new(pins: &[(NetId, Logic)]) -> Self {
        ConstDomain {
            pins: pins.iter().copied().collect(),
        }
    }
}

impl Domain for ConstDomain {
    type Value = Ternary;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _nl: &Netlist) -> Ternary {
        Ternary::Bot
    }

    fn boundary(&self, nl: &Netlist, net: NetId) -> Option<Ternary> {
        if let Some(&level) = self.pins.get(&net) {
            return Some(Ternary::Val(level));
        }
        let source = match nl.net(net).driver() {
            Some(cell) => matches!(nl.cell(cell).kind(), GateKind::Input | GateKind::Dff),
            None => true, // undriven nets read as X, like the evaluator
        };
        source.then_some(Ternary::Val(Logic::X))
    }

    fn transfer(
        &self,
        nl: &Netlist,
        cell: CellId,
        values: &Values<Ternary>,
        out: &mut Vec<(NetId, Ternary)>,
    ) {
        let c = nl.cell(cell);
        if matches!(c.kind(), GateKind::Input | GateKind::Dff) {
            return; // boundary nets
        }
        let mut inputs = Vec::with_capacity(c.inputs().len());
        for &i in c.inputs() {
            match values.net(i) {
                Ternary::Bot => return, // inputs not all known yet
                Ternary::Val(l) => inputs.push(*l),
            }
        }
        out.push((c.output(), Ternary::Val(c.kind().eval(&inputs))));
    }

    fn join(&self, into: &mut Ternary, from: &Ternary) -> bool {
        let next = match (*into, *from) {
            (a, Ternary::Bot) => a,
            (Ternary::Bot, b) => b,
            (Ternary::Val(a), Ternary::Val(b)) if a == b => Ternary::Val(a),
            _ => Ternary::Val(Logic::X),
        };
        let changed = next != *into;
        *into = next;
        changed
    }

    fn widen(&self, value: &mut Ternary) {
        *value = Ternary::Val(Logic::X);
    }
}

/// Constant facts for `nl` with `pins` fixed; all other primary inputs
/// and flip-flop Q pins are `X`.
pub fn const_facts(nl: &Netlist, pins: &[(NetId, Logic)]) -> Solution<Ternary> {
    solve(nl, &ConstDomain::new(pins), Config::default())
}

/// Constant facts with the full primary-input vector pinned in
/// `Netlist::input_nets` order — the dataflow twin of
/// `Netlist::eval_nets(inputs, None)`.
pub fn const_facts_for_inputs(nl: &Netlist, inputs: &[Logic]) -> Solution<Ternary> {
    let pins: Vec<(NetId, Logic)> = nl
        .input_nets()
        .iter()
        .copied()
        .zip(inputs.iter().copied())
        .collect();
    const_facts(nl, &pins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Netlist, NetId, NetId, NetId) {
        let mut nl = Netlist::new("toy");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_const(false);
        let and = nl.add_gate(GateKind::And, &[a, z]).unwrap();
        let or = nl.add_gate(GateKind::Or, &[and, b]).unwrap();
        nl.mark_output(or, "y");
        (nl, a, and, or)
    }

    #[test]
    fn masked_cone_collapses_to_constant() {
        let (nl, _a, and, or) = toy();
        let sol = const_facts(&nl, &[]);
        assert_eq!(*sol.net(and), Ternary::Val(Logic::Zero));
        assert_eq!(*sol.net(or), Ternary::Val(Logic::X));
        assert!(sol.net(and).is_const());
    }

    #[test]
    fn matches_eval_nets_on_every_full_assignment() {
        let (nl, _, _, _) = toy();
        for pat in 0..4u32 {
            let inputs = vec![
                Logic::from_bool(pat & 1 == 1),
                Logic::from_bool(pat & 2 == 2),
            ];
            let dense = nl.eval_nets(&inputs, None);
            let sol = const_facts_for_inputs(&nl, &inputs);
            for (id, _) in nl.nets() {
                assert_eq!(sol.net(id).to_logic(), dense[id.index()], "net {id:?}");
            }
        }
    }

    #[test]
    fn sequential_q_pins_read_x() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let y = nl.add_gate(GateKind::And, &[a, q]).unwrap();
        nl.mark_output(y, "y");
        let sol = const_facts_for_inputs(&nl, &[Logic::One]);
        assert_eq!(*sol.net(q), Ternary::Val(Logic::X));
        assert_eq!(*sol.net(y), Ternary::Val(Logic::X));
    }
}
