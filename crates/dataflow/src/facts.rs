//! One-call bundle of every day-one domain over a keyed netlist.
//!
//! [`AnalysisFacts::compute`] runs constant/X propagation, raw and
//! refined key taint (sequential, i.e. through flip-flops), and SCOAP
//! scores, and emits the `analysis.*` observability counters. Lint's
//! analysis pass, `glk analyze`, and the acceptance tests all consume
//! this one structure so their numbers can never drift apart.

use crate::bitset::KeyBitSet;
use crate::consts::{const_facts, Ternary};
use crate::engine::Solution;
use crate::scoap::{scoap_facts, CcPair, ScoapFacts};
use crate::taint::{taint_facts, TaintMode};
use crate::vn::ValueNumbering;
use glitchlock_netlist::{NetId, Netlist};
use glitchlock_obs::{self as obs, names};

/// Everything the day-one domains know about one netlist.
pub struct AnalysisFacts {
    /// The tracked key-input nets; taint bit `i` is `keys[i]`.
    pub keys: Vec<NetId>,
    /// Constant/X facts under no pins (every input `X`).
    pub consts: Solution<Ternary>,
    /// Structural (raw) key taint, through flip-flops.
    pub raw: Solution<KeyBitSet>,
    /// Semantically refined key taint, through flip-flops.
    pub refined: Solution<KeyBitSet>,
    /// SCOAP controllability/observability scores.
    pub scoap: ScoapFacts,
    /// Value classes used by the refined rules.
    pub vn: ValueNumbering,
    /// Total transfer applications across all five fixpoints.
    pub iterations: u64,
    /// Nets that hit the widening threshold in any fixpoint.
    pub widened: u64,
}

impl AnalysisFacts {
    /// Runs every domain over `nl`, tracking the primary inputs whose
    /// name starts with `key_prefix` as key bits.
    pub fn compute(nl: &Netlist, key_prefix: &str) -> AnalysisFacts {
        let keys: Vec<NetId> = nl
            .input_nets()
            .iter()
            .copied()
            .filter(|&n| nl.net(n).name().starts_with(key_prefix))
            .collect();
        let consts = const_facts(nl, &[]);
        let vn = ValueNumbering::build(nl);
        let raw = taint_facts(nl, &keys, TaintMode::Raw, true);
        let refined = taint_facts(
            nl,
            &keys,
            TaintMode::Refined {
                vn: &vn,
                consts: &consts,
            },
            true,
        );
        let scoap = scoap_facts(nl);

        let iterations = consts.iterations
            + raw.iterations
            + refined.iterations
            + scoap.cc.iterations
            + scoap.co.iterations;
        let widened =
            consts.widened + raw.widened + refined.widened + scoap.cc.widened + scoap.co.widened;

        obs::incr(names::ANALYSIS_RUNS);
        obs::add(names::ANALYSIS_ITERATIONS, iterations);
        obs::add(names::ANALYSIS_NETS, nl.nets().len() as u64);
        obs::add(names::ANALYSIS_KEY_BITS, keys.len() as u64);
        if widened > 0 {
            obs::add(names::ANALYSIS_WIDENED, widened);
        }

        AnalysisFacts {
            keys,
            consts,
            raw,
            refined,
            scoap,
            vn,
            iterations,
            widened,
        }
    }

    /// Number of tracked key bits.
    pub fn key_width(&self) -> usize {
        self.keys.len()
    }

    /// Primary outputs whose refined taint contains `bit`, in port order.
    pub fn observable_pos(&self, nl: &Netlist, bit: usize) -> Vec<NetId> {
        nl.output_ports()
            .iter()
            .filter(|&&(po, _)| self.refined.net(po).contains(bit))
            .map(|&(po, _)| po)
            .collect()
    }

    /// Number of nets whose raw taint contains `bit`.
    pub fn raw_reach(&self, bit: usize) -> usize {
        self.raw.values().iter().filter(|t| t.contains(bit)).count()
    }

    /// Nets in `bit`'s raw cone that constant-collapse under all-`X`
    /// inputs — evidence that the bit's influence dies in provably
    /// constant logic.
    pub fn collapsed_nets(&self, nl: &Netlist, bit: usize) -> Vec<NetId> {
        nl.nets()
            .filter(|&(id, _)| self.raw.net(id).contains(bit) && self.consts.net(id).is_const())
            .map(|(id, _)| id)
            .collect()
    }

    /// SCOAP scores of `net` as `(cc0, cc1, co)`.
    pub fn scoap_of(&self, net: NetId) -> (u32, u32, u32) {
        let CcPair { cc0, cc1 } = *self.scoap.cc.net(net);
        (cc0, cc1, *self.scoap.co.net(net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    #[test]
    fn facts_bundle_reports_reachability_and_collapse() {
        let mut nl = Netlist::new("bundle");
        let a = nl.add_input("a");
        let k0 = nl.add_input("key0");
        let k1 = nl.add_input("key1");
        let zero = nl.add_const(false);
        let good = nl.add_gate(GateKind::Xor, &[a, k0]).unwrap();
        let masked = nl.add_gate(GateKind::And, &[k1, zero]).unwrap();
        let y = nl.add_gate(GateKind::Or, &[good, masked]).unwrap();
        nl.mark_output(y, "y");

        let facts = AnalysisFacts::compute(&nl, "key");
        assert_eq!(facts.key_width(), 2);
        assert_eq!(facts.observable_pos(&nl, 0), vec![y]);
        assert!(facts.observable_pos(&nl, 1).is_empty());
        assert!(facts.raw_reach(0) >= 2);
        assert!(facts.collapsed_nets(&nl, 0).is_empty());
        assert_eq!(facts.collapsed_nets(&nl, 1), vec![masked]);
        assert!(facts.iterations > 0);
    }
}
