//! SCOAP-style testability scores: combinational 0/1-controllability
//! (CC0/CC1, forward) and observability (CO, backward).
//!
//! Costs are saturating gate counts in the classic Goldstein formulation:
//! a primary input costs 1 to set either way, every gate level adds 1,
//! AND needs all inputs at 1 (sum) but any input at 0 (min), and so on.
//! [`INF`] marks "uncontrollable/unobservable as far as the fixpoint can
//! tell" — constants are uncontrollable to the opposite value, and nets
//! cut off from every primary output are unobservable. Flip-flops add one
//! time frame (+1) in both directions. Costs descend monotonically from
//! [`INF`] under a min-join and are bounded below, so sequential feedback
//! converges without over-approximating (the widening hook is a no-op for
//! these domains; the scores feed the timing pass's glitch-sensitivity
//! suggestions, they are not a soundness boundary).

use crate::engine::{solve, Config, Direction, Domain, Solution, Values};
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};

/// Saturated cost: unreachable / uncontrollable.
pub const INF: u32 = u32::MAX;

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

/// Controllability pair for one net.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CcPair {
    /// Cost to drive the net to 0.
    pub cc0: u32,
    /// Cost to drive the net to 1.
    pub cc1: u32,
}

impl CcPair {
    /// Both directions unknown/unreachable.
    pub const UNKNOWN: CcPair = CcPair { cc0: INF, cc1: INF };

    fn add1(self) -> CcPair {
        CcPair {
            cc0: sat_add(self.cc0, 1),
            cc1: sat_add(self.cc1, 1),
        }
    }

    /// The cheaper of the two directions.
    pub fn easiest(self) -> u32 {
        self.cc0.min(self.cc1)
    }
}

fn xor2(a: CcPair, b: CcPair) -> CcPair {
    CcPair {
        cc0: sat_add(a.cc0, b.cc0).min(sat_add(a.cc1, b.cc1)),
        cc1: sat_add(a.cc0, b.cc1).min(sat_add(a.cc1, b.cc0)),
    }
}

fn mux4_sel_costs(s0: CcPair, s1: CcPair) -> [u32; 4] {
    [
        sat_add(s0.cc0, s1.cc0),
        sat_add(s0.cc1, s1.cc0),
        sat_add(s0.cc0, s1.cc1),
        sat_add(s0.cc1, s1.cc1),
    ]
}

/// Forward controllability domain.
pub struct CcDomain;

impl Domain for CcDomain {
    type Value = CcPair;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _nl: &Netlist) -> CcPair {
        CcPair::UNKNOWN
    }

    fn boundary(&self, nl: &Netlist, net: NetId) -> Option<CcPair> {
        nl.input_nets()
            .contains(&net)
            .then_some(CcPair { cc0: 1, cc1: 1 })
    }

    fn transfer(
        &self,
        nl: &Netlist,
        cell: CellId,
        values: &Values<CcPair>,
        out: &mut Vec<(NetId, CcPair)>,
    ) {
        let c = nl.cell(cell);
        let v = |net: NetId| *values.net(net);
        let ins: Vec<CcPair> = c.inputs().iter().map(|&i| v(i)).collect();
        let pair = match c.kind() {
            GateKind::Input => return,
            GateKind::Const0 => CcPair { cc0: 1, cc1: INF },
            GateKind::Const1 => CcPair { cc0: INF, cc1: 1 },
            GateKind::Buf => ins[0].add1(),
            GateKind::Inv => CcPair {
                cc0: ins[0].cc1,
                cc1: ins[0].cc0,
            }
            .add1(),
            GateKind::And | GateKind::Nand => {
                let all1 = ins.iter().fold(0u32, |acc, p| sat_add(acc, p.cc1));
                let any0 = ins.iter().map(|p| p.cc0).min().unwrap_or(INF);
                let and = CcPair {
                    cc0: any0,
                    cc1: all1,
                };
                if c.kind() == GateKind::Nand {
                    CcPair {
                        cc0: and.cc1,
                        cc1: and.cc0,
                    }
                    .add1()
                } else {
                    and.add1()
                }
            }
            GateKind::Or | GateKind::Nor => {
                let all0 = ins.iter().fold(0u32, |acc, p| sat_add(acc, p.cc0));
                let any1 = ins.iter().map(|p| p.cc1).min().unwrap_or(INF);
                let or = CcPair {
                    cc0: all0,
                    cc1: any1,
                };
                if c.kind() == GateKind::Nor {
                    CcPair {
                        cc0: or.cc1,
                        cc1: or.cc0,
                    }
                    .add1()
                } else {
                    or.add1()
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let parity = ins.iter().copied().reduce(xor2).unwrap_or(CcPair::UNKNOWN);
                if c.kind() == GateKind::Xnor {
                    CcPair {
                        cc0: parity.cc1,
                        cc1: parity.cc0,
                    }
                    .add1()
                } else {
                    parity.add1()
                }
            }
            GateKind::Mux2 => {
                let (a, b, s) = (ins[0], ins[1], ins[2]);
                CcPair {
                    cc0: sat_add(s.cc0, a.cc0).min(sat_add(s.cc1, b.cc0)),
                    cc1: sat_add(s.cc0, a.cc1).min(sat_add(s.cc1, b.cc1)),
                }
                .add1()
            }
            GateKind::Mux4 => {
                let sel = mux4_sel_costs(ins[4], ins[5]);
                let mut cc0 = INF;
                let mut cc1 = INF;
                for (arm, &sc) in ins[..4].iter().zip(&sel) {
                    cc0 = cc0.min(sat_add(sc, arm.cc0));
                    cc1 = cc1.min(sat_add(sc, arm.cc1));
                }
                CcPair { cc0, cc1 }.add1()
            }
            GateKind::Dff => ins[0].add1(),
        };
        out.push((c.output(), pair));
    }

    fn join(&self, into: &mut CcPair, from: &CcPair) -> bool {
        let next = CcPair {
            cc0: into.cc0.min(from.cc0),
            cc1: into.cc1.min(from.cc1),
        };
        let changed = next != *into;
        *into = next;
        changed
    }

    fn widen(&self, _value: &mut CcPair) {
        // Saturating u32 costs only descend and are bounded below, so
        // every chain is finite; no over-approximation is needed.
    }
}

/// Backward observability domain; needs the controllability fixpoint for
/// the "hold the side inputs non-controlling" terms.
pub struct CoDomain<'a> {
    cc: &'a Solution<CcPair>,
}

impl<'a> CoDomain<'a> {
    /// An observability domain over the given controllability facts.
    pub fn new(cc: &'a Solution<CcPair>) -> Self {
        CoDomain { cc }
    }
}

impl Domain for CoDomain<'_> {
    type Value = u32;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _nl: &Netlist) -> u32 {
        INF
    }

    fn boundary(&self, nl: &Netlist, net: NetId) -> Option<u32> {
        nl.output_ports()
            .iter()
            .any(|&(po, _)| po == net)
            .then_some(0)
    }

    fn transfer(
        &self,
        nl: &Netlist,
        cell: CellId,
        values: &Values<u32>,
        out: &mut Vec<(NetId, u32)>,
    ) {
        let c = nl.cell(cell);
        let out_co = *values.net(c.output());
        if out_co == INF {
            return;
        }
        let cc = |net: NetId| *self.cc.net(net);
        let ins = c.inputs();
        match c.kind() {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
            GateKind::Buf | GateKind::Inv => out.push((ins[0], sat_add(out_co, 1))),
            GateKind::Dff => out.push((ins[0], sat_add(out_co, 1))),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                // Side inputs must hold the non-controlling value.
                for (i, &net) in ins.iter().enumerate() {
                    let mut cost = sat_add(out_co, 1);
                    for (j, &other) in ins.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        let hold = match c.kind() {
                            GateKind::And | GateKind::Nand => cc(other).cc1,
                            _ => cc(other).cc0,
                        };
                        cost = sat_add(cost, hold);
                    }
                    out.push((net, cost));
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for (i, &net) in ins.iter().enumerate() {
                    let mut cost = sat_add(out_co, 1);
                    for (j, &other) in ins.iter().enumerate() {
                        if i != j {
                            cost = sat_add(cost, cc(other).easiest());
                        }
                    }
                    out.push((net, cost));
                }
            }
            GateKind::Mux2 => {
                let (a, b, s) = (ins[0], ins[1], ins[2]);
                out.push((a, sat_add(out_co, sat_add(cc(s).cc0, 1))));
                out.push((b, sat_add(out_co, sat_add(cc(s).cc1, 1))));
                // Observing the select needs the arms to differ; use the
                // cheaper arm as an optimistic bound.
                let arm = cc(a).easiest().min(cc(b).easiest());
                out.push((s, sat_add(out_co, sat_add(arm, 1))));
            }
            GateKind::Mux4 => {
                let sel = mux4_sel_costs(cc(ins[4]), cc(ins[5]));
                let mut best_arm = INF;
                for (arm, &sc) in ins[..4].iter().zip(&sel) {
                    out.push((*arm, sat_add(out_co, sat_add(sc, 1))));
                    best_arm = best_arm.min(cc(*arm).easiest());
                }
                out.push((ins[4], sat_add(out_co, sat_add(best_arm, 1))));
                out.push((ins[5], sat_add(out_co, sat_add(best_arm, 1))));
            }
        }
    }

    fn join(&self, into: &mut u32, from: &u32) -> bool {
        if *from < *into {
            *into = *from;
            true
        } else {
            false
        }
    }

    fn widen(&self, _value: &mut u32) {
        // Same finite-descent argument as controllability.
    }
}

/// Controllability + observability scores for a netlist.
pub struct ScoapFacts {
    /// CC0/CC1 per net.
    pub cc: Solution<CcPair>,
    /// CO per net (`INF` when no primary output can see the net).
    pub co: Solution<u32>,
}

/// Compute SCOAP facts for `nl`.
pub fn scoap_facts(nl: &Netlist) -> ScoapFacts {
    let cc = solve(nl, &CcDomain, Config::default());
    let co = solve(nl, &CoDomain::new(&cc), Config::default());
    ScoapFacts { cc, co }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_scores_on_an_and_gate() {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(y, "y");
        let f = scoap_facts(&nl);
        assert_eq!(*f.cc.net(a), CcPair { cc0: 1, cc1: 1 });
        // AND: cc1 = 1+1+1 = 3, cc0 = min(1,1)+1 = 2.
        assert_eq!(*f.cc.net(y), CcPair { cc0: 2, cc1: 3 });
        assert_eq!(*f.co.net(y), 0);
        // Observing `a` needs b=1: 0 + 1 + 1 = 2.
        assert_eq!(*f.co.net(a), 2);
    }

    #[test]
    fn constants_and_dead_nets_saturate() {
        let mut nl = Netlist::new("sat");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate(GateKind::Or, &[a, one]).unwrap();
        nl.mark_output(y, "y");
        let dead = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let f = scoap_facts(&nl);
        assert_eq!(f.cc.net(one).cc0, INF, "const 1 never reads 0");
        assert_eq!(*f.co.net(dead), INF, "no PO sees the dangling inverter");
    }

    #[test]
    fn dffs_add_a_frame_in_both_directions() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        nl.mark_output(q, "q");
        let f = scoap_facts(&nl);
        assert_eq!(*f.cc.net(q), CcPair { cc0: 2, cc1: 2 });
        assert_eq!(*f.co.net(a), 1);
    }
}
