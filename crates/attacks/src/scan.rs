//! Scan-chain (BIST) based attack on GK locking — the weakness the paper
//! concedes in Sec. VI ("the GK that works solely to encrypt the input of
//! FF at the end of the path can provide only limited security").
//!
//! With scan access, an attacker fully controls and observes the state, so
//! each flip-flop's next-state function can be *tested* against the
//! activated chip. A bare GK then falls to a simple hypothesis test: feed
//! patterns through the scan chain, compare the capture against "the GK is
//! a buffer" vs "the GK is an inverter", and keep the hypothesis that
//! matches.
//!
//! When the path also carries conventional key-gates (the paper's hybrid),
//! the test resolves a *composite* model: the GK's polarity gets absorbed
//! into the guessed key bits, so the attacker may label a buffer-GK
//! "inverter" yet still hold a functionally equivalent model — or, when
//! the unknown key bits interact non-linearly with the tested cone, get an
//! [`GkResolution::Inconsistent`] answer. Full protection of the structure
//! itself comes from withholding (Sec. V-D), which removes the hypothesis
//! space entirely.

use crate::oracle::ComboOracle;
use crate::removal::{locate_gk_candidates, GkSite};
use glitchlock_netlist::{CombView, EvalProgram, Logic, NetId, Netlist, PackedLogic, LANES};
use glitchlock_obs::{self as obs, names};
use rand::Rng;

/// The attacker's conclusion for one located GK.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GkResolution {
    /// Every probed pattern matched the buffer hypothesis.
    Buffer,
    /// Every probed pattern matched the inverter hypothesis.
    Inverter,
    /// Neither hypothesis explained all observations (e.g. other key-gates
    /// on the same path corrupt the comparison — the hybrid defense).
    Inconsistent,
}

/// Runs the scan-based hypothesis test for each located GK site.
///
/// `locked_view` is the attacker's netlist (KEYGEN stripped, GK keys as
/// inputs); `oracle` the activated chip. Non-key inputs of the view must
/// align with the oracle's combinational view (same convention as the SAT
/// attack). Returns one resolution per located site, in
/// [`locate_gk_candidates`] order.
pub fn scan_hypothesis_attack<R: Rng>(
    locked_view: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    samples: usize,
    rng: &mut R,
) -> Vec<(GkSite, GkResolution)> {
    let sites = locate_gk_candidates(locked_view);
    let view = CombView::new(locked_view);
    let oracle_chip = ComboOracle::new(oracle);
    let data_positions: Vec<usize> = view
        .input_nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| !key_inputs.contains(n))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        data_positions.len(),
        oracle_chip.num_inputs(),
        "view data inputs must align with the oracle"
    );

    // GK statics are key-free, so toggling the key input cannot emulate the
    // two hypotheses. Instead each is tested by *forcing* the GK output net
    // inside the compiled program: one unforced pass reads the GK's data
    // input `x`, then `eval_forced` replays the batch with `y` held at `x`
    // (buffer) or `!x` (inverter) — 64 patterns per pass.
    let _span = obs::span("attack.scan");
    obs::add(names::SCAN_SITES, sites.len() as u64);
    let sample_counter = obs::counter(names::SCAN_SAMPLES);
    let resolved_counter = obs::counter(names::SCAN_RESOLVED);
    let program = EvalProgram::compile(locked_view).expect("locked view is acyclic");
    let n_pi = locked_view.input_nets().len();
    sites
        .iter()
        .map(|&site| {
            let mut buf_ok = true;
            let mut inv_ok = true;
            let mut buf = program.scratch();
            let mut done = 0usize;
            while done < samples && (buf_ok || inv_ok) {
                let lanes = LANES.min(samples - done);
                let data_rows: Vec<Vec<bool>> = (0..lanes)
                    .map(|_| (0..data_positions.len()).map(|_| rng.gen()).collect())
                    .collect();
                let expect = oracle_chip.query_many(&data_rows);
                let mut words = vec![PackedLogic::splat(Logic::Zero); view.num_inputs()];
                for (lane, row) in data_rows.iter().enumerate() {
                    for (di, &pos) in data_positions.iter().enumerate() {
                        words[pos].set(lane, Logic::from_bool(row[di]));
                    }
                }
                let (pi, qs) = words.split_at(n_pi);
                // Unforced pass: read the GK's data input for this batch.
                program.eval(pi, Some(qs), &mut buf);
                let xw = buf.net(site.x);
                for hypothesis_buffer in [true, false] {
                    let forced = if hypothesis_buffer { xw } else { !xw };
                    program.eval_forced(pi, Some(qs), &[(site.y, forced)], &mut buf);
                    let ok = if hypothesis_buffer {
                        &mut buf_ok
                    } else {
                        &mut inv_ok
                    };
                    for (lane, exp) in expect.iter().enumerate() {
                        *ok &= view
                            .output_nets()
                            .iter()
                            .zip(exp)
                            .all(|(n, e)| buf.net(*n).get(lane).to_bool() == Some(*e));
                    }
                }
                done += lanes;
            }
            sample_counter.add(done as u64);
            let resolution = match (buf_ok, inv_ok) {
                (true, false) => GkResolution::Buffer,
                (false, true) => GkResolution::Inverter,
                _ => GkResolution::Inconsistent,
            };
            if resolution != GkResolution::Inconsistent {
                resolved_counter.incr();
            }
            obs::event("probe", "scan_site")
                .u64("samples", done as u64)
                .str(
                    "resolution",
                    match resolution {
                        GkResolution::Buffer => "buffer",
                        GkResolution::Inverter => "inverter",
                        GkResolution::Inconsistent => "inconsistent",
                    },
                )
                .emit();
            (site, resolution)
        })
        .collect()
}

/// Evaluates the locked view with one GK's output forced to `x` (buffer
/// hypothesis) or `!x` (inverter hypothesis), other GKs left at their
/// static behaviour. Scalar reference for the packed `eval_forced` path,
/// kept for the differential tests.
#[cfg(test)]
fn eval_with_patched_gk(
    netlist: &Netlist,
    view: &CombView,
    data_positions: &[usize],
    data: &[bool],
    site: GkSite,
    buffer: bool,
) -> Vec<Logic> {
    let mut inputs = vec![Logic::Zero; view.num_inputs()];
    for (di, &pos) in data_positions.iter().enumerate() {
        inputs[pos] = Logic::from_bool(data[di]);
    }
    // Evaluate once to get x, then re-evaluate with the GK output pinned.
    // Pinning is emulated by evaluating the full net table and replaying
    // the fanout cone of the GK output with the patched value — for
    // simplicity we just evaluate a patched copy of the net values in
    // topological order.
    let (pi, qs) = split_inputs(netlist, &inputs);
    let mut values = netlist.eval_nets(&pi, Some(&qs));
    let xv = values[site.x.index()];
    let patched = if buffer { xv } else { !xv };
    values[site.y.index()] = patched;
    // Recompute everything downstream of the patch.
    let order = netlist.topo_order().expect("acyclic");
    let mut in_buf = Vec::new();
    for cell_id in order {
        let cell = netlist.cell(cell_id);
        if cell.output() == site.y {
            continue; // hold the patch
        }
        in_buf.clear();
        in_buf.extend(cell.inputs().iter().map(|n| values[n.index()]));
        if cell.kind().is_combinational() {
            values[cell.output().index()] = cell.kind().eval(&in_buf);
        }
    }
    view.output_nets()
        .iter()
        .map(|n| values[n.index()])
        .collect()
}

#[cfg(test)]
fn split_inputs(netlist: &Netlist, inputs: &[Logic]) -> (Vec<Logic>, Vec<Logic>) {
    let n_pi = netlist.input_nets().len();
    (inputs[..n_pi].to_vec(), inputs[n_pi..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_core::gk::{build_gk, GkDesign, GkScheme};
    use glitchlock_core::locking::{LockScheme, XorLock};
    use glitchlock_netlist::GateKind;
    use glitchlock_stdcell::Library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Original circuit plus its GK'd attacker view where the real chip
    /// behaves as a *buffer* on the locked path.
    fn setup() -> (Netlist, Netlist, Vec<NetId>) {
        let mut original = Netlist::new("o");
        let a = original.add_input("a");
        let b = original.add_input("b");
        let w = original.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let q = original.add_dff(w).unwrap();
        let y = original.add_gate(GateKind::Xor, &[q, a]).unwrap();
        original.mark_output(y, "y");

        let lib = Library::cl013g_like();
        let mut view = original.clone();
        let key = view.add_input("gk0_key");
        let d = view.cell(view.dff_cells()[0]).inputs()[0];
        // BufferSteady: the static view IS a buffer, and the real chip's
        // glitch-mode behaviour (correct key) is also a buffer of x — so
        // the hypothesis test must resolve to Buffer.
        let design = GkDesign {
            scheme: GkScheme::BufferSteady,
            ..GkDesign::paper_default()
        };
        let gk = build_gk(&mut view, &lib, d, key, &design).unwrap();
        let ff = view.dff_cells()[0];
        view.rewire_input(ff, 0, gk.y).unwrap();
        (original, view, vec![key])
    }

    #[test]
    fn packed_forced_eval_matches_scalar_patching() {
        let (_original, view_nl, keys) = setup();
        let sites = locate_gk_candidates(&view_nl);
        let site = sites[0];
        let view = CombView::new(&view_nl);
        let program = EvalProgram::compile(&view_nl).unwrap();
        let data_positions: Vec<usize> = view
            .input_nets()
            .iter()
            .enumerate()
            .filter(|(_, n)| !keys.contains(n))
            .map(|(i, _)| i)
            .collect();
        let n_pi = view_nl.input_nets().len();
        let width = data_positions.len();
        let all: Vec<Vec<bool>> = (0..1u32 << width)
            .map(|m| (0..width).map(|b| m >> b & 1 != 0).collect())
            .collect();
        let mut buf = program.scratch();
        for hypothesis_buffer in [true, false] {
            let mut words = vec![PackedLogic::splat(Logic::Zero); view.num_inputs()];
            for (lane, row) in all.iter().enumerate() {
                for (di, &pos) in data_positions.iter().enumerate() {
                    words[pos].set(lane, Logic::from_bool(row[di]));
                }
            }
            let (pi, qs) = words.split_at(n_pi);
            program.eval(pi, Some(qs), &mut buf);
            let xw = buf.net(site.x);
            let forced = if hypothesis_buffer { xw } else { !xw };
            program.eval_forced(pi, Some(qs), &[(site.y, forced)], &mut buf);
            for (lane, row) in all.iter().enumerate() {
                let scalar = eval_with_patched_gk(
                    &view_nl,
                    &view,
                    &data_positions,
                    row,
                    site,
                    hypothesis_buffer,
                );
                let packed: Vec<Logic> = view
                    .output_nets()
                    .iter()
                    .map(|n| buf.net(*n).get(lane))
                    .collect();
                assert_eq!(packed, scalar, "buffer={hypothesis_buffer} lane {lane}");
            }
        }
    }

    #[test]
    fn bare_gk_is_resolved_by_scan_testing() {
        let (original, view, keys) = setup();
        let mut rng = StdRng::seed_from_u64(51);
        let results = scan_hypothesis_attack(&view, &keys, &original, 32, &mut rng);
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].1,
            GkResolution::Buffer,
            "scan access resolves the buffer/inverter ambiguity (paper Sec. VI)"
        );
    }

    #[test]
    fn hybrid_xnor_absorbs_the_polarity() {
        // Put an XNOR key-gate (correct key = 1) between the GK and the
        // flip-flop. The attacker guesses 0 for the unknown key, so the
        // hypothesis test labels the buffer-GK "Inverter" — structurally
        // wrong, but the *composite* model (inverter GK + XNOR at 0) is
        // functionally identical to the chip. The structure stays hidden
        // even though the function is learned: exactly Sec. V-C's point
        // that locating/modelling gates is not the same as knowing them.
        let (original, mut view, mut keys) = setup();
        let ff = view.dff_cells()[0];
        let k = view.add_input("xk0");
        let gk_y = view.cell(ff).inputs()[0];
        let xnor = view.add_gate(GateKind::Xnor, &[gk_y, k]).unwrap();
        view.rewire_input(ff, 0, xnor).unwrap();
        keys.push(k);
        let mut rng = StdRng::seed_from_u64(52);
        let results = scan_hypothesis_attack(&view, &keys, &original, 32, &mut rng);
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].1,
            GkResolution::Inverter,
            "polarity absorbed by the downstream key-gate"
        );
    }

    #[test]
    fn random_hybrid_lock_resolutions_are_sound() {
        // Whatever XorLock inserts, a non-Inconsistent resolution must
        // correspond to a functionally correct composite model: re-check
        // the winning hypothesis on fresh patterns.
        for seed in 0..8u64 {
            let (original, view, mut keys) = setup();
            let mut rng = StdRng::seed_from_u64(seed);
            let hybrid = XorLock::new(2).lock(&view, &mut rng).unwrap();
            keys.extend(hybrid.key_inputs.iter().copied());
            let results = scan_hypothesis_attack(&hybrid.netlist, &keys, &original, 24, &mut rng);
            let Some(&(site, resolution)) = results.first() else {
                // A key-gate landed on the GK's own select net, destroying
                // the locator's structural pattern — also a (accidental)
                // defense; nothing to check.
                continue;
            };
            if resolution == GkResolution::Inconsistent {
                continue;
            }
            // Fresh patterns must keep matching.
            let confirm = {
                let view_c = CombView::new(&hybrid.netlist);
                let data_positions: Vec<usize> = view_c
                    .input_nets()
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !keys.contains(n))
                    .map(|(i, _)| i)
                    .collect();
                let oracle_chip = ComboOracle::new(&original);
                (0..16).all(|_| {
                    let data: Vec<bool> = (0..data_positions.len()).map(|_| rng.gen()).collect();
                    let expect = oracle_chip.query(&data);
                    let got = eval_with_patched_gk(
                        &hybrid.netlist,
                        &view_c,
                        &data_positions,
                        &data,
                        site,
                        resolution == GkResolution::Buffer,
                    );
                    got.iter()
                        .zip(&expect)
                        .all(|(g, e)| g.to_bool() == Some(*e))
                })
            };
            assert!(confirm, "seed {seed}: resolution must generalize");
        }
    }
}
