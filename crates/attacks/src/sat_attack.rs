//! The oracle-guided SAT attack (Subramanyan, Ray, Malik — HOST'15).
//!
//! Builds a miter of two copies of the locked netlist sharing data inputs
//! with independent keys, then iteratively: find a distinguishing input
//! pattern (DIP), query the oracle, and constrain both copies to agree with
//! the oracle on that pattern. When the miter becomes unsatisfiable every
//! surviving key is correct.
//!
//! Against a GK-locked design (attacker's view: KEYGEN stripped, GK key as
//! a primary input) the very first miter query is **unsatisfiable** — the
//! GK's static function is key-independent, so no DIP exists and the attack
//! is invalid from the start (paper Secs. V-A, VI).

use crate::cancel::CancelToken;
use crate::oracle::ComboOracle;
use glitchlock_netlist::{
    Aig, AigLit, CombView, EvalProgram, Logic, NetId, Netlist, PackedLogic, LANES,
};
use glitchlock_obs::{self as obs, names};
use glitchlock_sat::{
    encode_aig_into, encode_comb_into, EncoderKind, Lit, SatResult, Solver, SolverBackend,
    SolverStats, Var,
};
use std::time::Instant;

/// Renders a pattern as a `0`/`1` string for trace events (index 0 first).
pub(crate) fn bits(pattern: &[bool]) -> String {
    pattern.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// How the attack ended.
#[derive(Clone, Debug, PartialEq)]
pub enum SatOutcome {
    /// The DIP loop converged: every remaining key agrees with the oracle
    /// on all queried patterns.
    KeyRecovered {
        /// The recovered key, in `key_inputs` order.
        key: Vec<bool>,
    },
    /// The miter was unsatisfiable before any DIP was found — the paper's
    /// GK result: the attack cannot even start. `arbitrary_key` is a key
    /// satisfying the (empty) constraints, demonstrating that all keys are
    /// equivalent in the attacker's static view.
    NoDipAtFirstIteration {
        /// Any key (they are all equivalent to the attacker).
        arbitrary_key: Vec<bool>,
    },
    /// Gave up after the iteration budget.
    IterationLimit,
    /// Stopped early because the attached [`CancelToken`] fired (campaign
    /// timeout or external shutdown). No key claim is made.
    Cancelled,
}

/// The attack transcript.
#[derive(Clone, Debug)]
pub struct SatAttackResult {
    /// Final outcome.
    pub outcome: SatOutcome,
    /// Number of DIP iterations executed (0 when no DIP ever existed).
    pub iterations: usize,
    /// The distinguishing input patterns found, in order.
    pub dips: Vec<Vec<bool>>,
    /// Solver statistics at termination.
    pub stats: SolverStats,
}

impl SatAttackResult {
    /// Convenience: the recovered key, if the attack succeeded.
    pub fn key(&self) -> Option<&[bool]> {
        match &self.outcome {
            SatOutcome::KeyRecovered { key } => Some(key),
            _ => None,
        }
    }
}

/// The attack configuration and inputs.
#[derive(Debug)]
pub struct SatAttack<'a> {
    /// The locked netlist, as the attacker sees it.
    pub locked: &'a Netlist,
    /// Which of the locked netlist's primary inputs are key inputs.
    pub key_inputs: Vec<NetId>,
    /// Primary inputs to hold at 0 and exclude from DIPs (e.g. stale key
    /// pins left behind by a structural replacement).
    pub ignored_inputs: Vec<NetId>,
    /// The activated chip.
    pub oracle: &'a Netlist,
    /// DIP iteration budget.
    pub max_iterations: usize,
    /// Optional cooperative cancellation: polled before every DIP
    /// iteration (a single solver call is never interrupted).
    pub cancel: Option<CancelToken>,
    /// Which CDCL strategy profile drives the DIP loop.
    pub backend: SolverBackend,
    /// Which CNF encoder builds the miter (flat Tseitin or strashed AIG).
    pub encoder: EncoderKind,
}

impl<'a> SatAttack<'a> {
    /// A default-budget attack.
    pub fn new(locked: &'a Netlist, key_inputs: Vec<NetId>, oracle: &'a Netlist) -> Self {
        SatAttack {
            locked,
            key_inputs,
            ignored_inputs: Vec::new(),
            oracle,
            max_iterations: 4096,
            cancel: None,
            backend: SolverBackend::default(),
            encoder: EncoderKind::default(),
        }
    }

    /// Runs the attack.
    ///
    /// # Panics
    ///
    /// Panics if the locked view's non-key inputs do not align with the
    /// oracle's inputs, or the netlists are cyclic.
    pub fn run(&self) -> SatAttackResult {
        let _span = obs::span("attack.sat");
        let iter_counter = obs::counter(names::SAT_ITERATIONS);
        let dip_counter = obs::counter(names::SAT_DIPS);
        let mut session = MiterSession::with_config(
            self.locked,
            &self.key_inputs,
            &self.ignored_inputs,
            self.oracle,
            self.backend,
            self.encoder,
        );
        let mut dips = Vec::new();
        let mut iterations = 0;
        loop {
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                obs::event("result", "sat_attack")
                    .str("outcome", "cancelled")
                    .u64("iterations", iterations as u64)
                    .u64("dips", dips.len() as u64)
                    .emit();
                return SatAttackResult {
                    outcome: SatOutcome::Cancelled,
                    iterations,
                    dips,
                    stats: session.stats(),
                };
            }
            let Some(dip) = session.find_dip() else { break };
            iterations += 1;
            if iterations > self.max_iterations {
                obs::event("result", "sat_attack")
                    .str("outcome", "iteration-limit")
                    .u64("iterations", self.max_iterations as u64)
                    .u64("dips", dips.len() as u64)
                    .emit();
                return SatAttackResult {
                    outcome: SatOutcome::IterationLimit,
                    iterations: self.max_iterations,
                    dips,
                    stats: session.stats(),
                };
            }
            iter_counter.incr();
            dip_counter.incr();
            obs::event("dip", "sat")
                .u64("iter", iterations as u64)
                .str_with("pattern", || bits(&dip))
                .emit();
            let response = session.query_oracle(&dip);
            session.add_io_constraint(&dip, &response);
            dips.push(dip);
        }

        // Extract a surviving key from the accumulated constraints. When
        // the last miter call was UNSAT at the root — the formula itself,
        // not the miter-gate assumption, is contradictory — the
        // accumulated IO constraints admit no key at all and the
        // extraction solve is pointless; skip it. An assumption-UNSAT
        // miter (empty-core case excluded by `failed_assumptions`) is the
        // normal convergence: no more DIPs, surviving keys are correct.
        let extracted = if session.miter_root_unsat() {
            None
        } else {
            session.extract_key()
        };
        let (outcome, outcome_name) = match extracted {
            None => {
                // The constraints themselves became unsatisfiable: the
                // attack view cannot reproduce the oracle under any key
                // (GK's static inverter does exactly this), so the attack
                // is exhausted without a key.
                (SatOutcome::IterationLimit, "constraints-exhausted")
            }
            Some(key) => {
                if iterations == 0 {
                    (
                        SatOutcome::NoDipAtFirstIteration { arbitrary_key: key },
                        "no-dip-at-first-iteration",
                    )
                } else {
                    (SatOutcome::KeyRecovered { key }, "key-recovered")
                }
            }
        };
        obs::event("result", "sat_attack")
            .str("outcome", outcome_name)
            .u64("iterations", iterations as u64)
            .u64("dips", dips.len() as u64)
            .str_with("key", || match &outcome {
                SatOutcome::KeyRecovered { key }
                | SatOutcome::NoDipAtFirstIteration { arbitrary_key: key } => bits(key),
                SatOutcome::IterationLimit | SatOutcome::Cancelled => String::new(),
            })
            .emit();
        SatAttackResult {
            outcome,
            iterations,
            dips,
            stats: session.stats(),
        }
    }
}

/// The incremental miter machinery shared by the exact SAT attack and the
/// approximate (AppSAT-style) variant: two keyed circuit copies over shared
/// data inputs, a gated output miter, and IO-constraint injection.
pub struct MiterSession<'a> {
    locked: &'a Netlist,
    view: CombView,
    locked_program: EvalProgram,
    oracle: ComboOracle<'a>,
    solver: Solver,
    role: Vec<Role>,
    data_ix: Vec<usize>,
    key_ix: Vec<usize>,
    /// Per view-input solver variables of the first and second miter copy.
    /// Non-key positions share variables between the copies.
    in1: Vec<Var>,
    in2: Vec<Var>,
    miter_gate: Var,
    encoder: EncoderKind,
    /// The locked view lowered to a strashed AIG once (AIG encoder only);
    /// replayed per IO constraint with data pins as constants so the
    /// rewrite rules fold each constraint copy down to its key cone.
    aig_single: Option<Aig>,
    /// Stats snapshot at the previous solver call, for per-call deltas.
    last_stats: SolverStats,
    /// True when the last `find_dip` came back UNSAT at the root (the
    /// formula, not the miter-gate assumption, is contradictory).
    root_unsat: bool,
}

impl<'a> MiterSession<'a> {
    /// Builds the two-copy miter on the default solver backend.
    ///
    /// # Panics
    ///
    /// Panics when the locked view's non-key inputs do not align with the
    /// oracle.
    pub fn new(
        locked: &'a Netlist,
        key_inputs: &[NetId],
        ignored_inputs: &[NetId],
        oracle: &'a Netlist,
    ) -> Self {
        MiterSession::with_backend(
            locked,
            key_inputs,
            ignored_inputs,
            oracle,
            SolverBackend::default(),
        )
    }

    /// Builds the two-copy miter on an explicit solver backend and the
    /// default encoder.
    ///
    /// # Panics
    ///
    /// Panics when the locked view's non-key inputs do not align with the
    /// oracle.
    pub fn with_backend(
        locked: &'a Netlist,
        key_inputs: &[NetId],
        ignored_inputs: &[NetId],
        oracle: &'a Netlist,
        backend: SolverBackend,
    ) -> Self {
        MiterSession::with_config(
            locked,
            key_inputs,
            ignored_inputs,
            oracle,
            backend,
            EncoderKind::default(),
        )
    }

    /// Builds the two-copy miter on an explicit solver backend and CNF
    /// encoder. With [`EncoderKind::Aig`] the locked view is lowered to a
    /// strashed AIG once and replayed for both copies into one graph —
    /// structural hashing merges every key-independent cone between the
    /// copies, and output pairs whose AIG literals coincide are provably
    /// key-independent and skipped by the miter entirely.
    ///
    /// # Panics
    ///
    /// Panics when the locked view's non-key inputs do not align with the
    /// oracle.
    pub fn with_config(
        locked: &'a Netlist,
        key_inputs: &[NetId],
        ignored_inputs: &[NetId],
        oracle: &'a Netlist,
        backend: SolverBackend,
        encoder: EncoderKind,
    ) -> Self {
        let view = CombView::new(locked);
        let locked_program = EvalProgram::compile(locked).expect("locked netlist must be acyclic");
        let oracle = ComboOracle::new(oracle);
        let mut role = vec![Role::Data; view.num_inputs()];
        for (i, net) in view.input_nets().iter().enumerate() {
            if key_inputs.contains(net) {
                role[i] = Role::Key;
            } else if ignored_inputs.contains(net) {
                role[i] = Role::Ignored;
            }
        }
        let data_ix: Vec<usize> = (0..role.len()).filter(|&i| role[i] == Role::Data).collect();
        let key_ix: Vec<usize> = (0..role.len()).filter(|&i| role[i] == Role::Key).collect();
        assert_eq!(
            data_ix.len(),
            oracle.num_inputs(),
            "locked view data inputs must align with the oracle"
        );
        assert_eq!(
            view.num_outputs(),
            oracle.num_outputs(),
            "output widths must align"
        );

        let mut solver = Solver::with_backend(backend);
        let mut aig_single = None;
        let (in1, in2, diff_lits) = match encoder {
            EncoderKind::Flat => {
                let ports1 = encode_comb_into(&mut solver, locked, &view, &[]);
                let pinned: Vec<Option<Var>> = (0..role.len())
                    .map(|i| (role[i] != Role::Key).then(|| ports1.input_vars[i]))
                    .collect();
                let ports2 = encode_comb_into(&mut solver, locked, &view, &pinned);
                let mut diff_lits = Vec::new();
                for (o1, o2) in ports1.output_vars.iter().zip(&ports2.output_vars) {
                    let d = solver.new_var();
                    encode_xor(&mut solver, d, *o1, *o2);
                    diff_lits.push(Lit::pos(d));
                }
                (ports1.input_vars, ports2.input_vars, diff_lits)
            }
            EncoderKind::Aig => {
                let single = Aig::from_comb(locked, &view);
                let mut miter = Aig::new();
                // Shared input per non-key position; two inputs per key
                // position. `ord*` remember each position's miter-input
                // ordinal so solver variables can be mapped back.
                let mut map1 = Vec::with_capacity(role.len());
                let mut map2 = Vec::with_capacity(role.len());
                let mut ord1 = Vec::with_capacity(role.len());
                let mut ord2 = Vec::with_capacity(role.len());
                for &r in &role {
                    let o1 = miter.num_inputs();
                    let l1 = miter.add_input();
                    let (o2, l2) = if r == Role::Key {
                        (miter.num_inputs(), miter.add_input())
                    } else {
                        (o1, l1)
                    };
                    map1.push(l1);
                    map2.push(l2);
                    ord1.push(o1);
                    ord2.push(o2);
                }
                let out1 = single.rebuild_into(&mut miter, &map1);
                let out2 = single.rebuild_into(&mut miter, &map2);
                for (&a, &b) in out1.iter().zip(&out2) {
                    // Equal literals mean strash proved the output
                    // key-independent: no clause needed.
                    let d = miter.xor(a, b);
                    if d != AigLit::FALSE {
                        miter.mark_output(d);
                    }
                }
                // Only the cone feeding the surviving diff outputs goes to
                // the solver — logic that no key-dependent output observes
                // never becomes a clause. Every miter input still gets a
                // solver variable up front: `find_dip`/`extract_key` read
                // them, and off-cone data bits are legitimately free.
                let input_vars: Vec<Var> =
                    (0..miter.num_inputs()).map(|_| solver.new_var()).collect();
                let keep: Vec<usize> = (0..miter.outputs().len()).collect();
                let cone = miter.extract_cone(&keep);
                let pinned: Vec<Option<Var>> =
                    cone.support.iter().map(|&k| Some(input_vars[k])).collect();
                let ports = encode_aig_into(&mut solver, &cone.aig, &pinned);
                let diff_lits = ports.output_lits.clone();
                let in1 = ord1.iter().map(|&o| input_vars[o]).collect();
                let in2 = ord2.iter().map(|&o| input_vars[o]).collect();
                aig_single = Some(single);
                (in1, in2, diff_lits)
            }
        };
        for i in (0..role.len()).filter(|&i| role[i] == Role::Ignored) {
            solver.add_clause(&[Lit::neg(in1[i])]);
        }
        let miter_gate = solver.new_var();
        let mut miter_clause = vec![Lit::neg(miter_gate)];
        miter_clause.extend(diff_lits);
        solver.add_clause(&miter_clause);
        MiterSession {
            locked,
            view,
            locked_program,
            oracle,
            solver,
            role,
            data_ix,
            key_ix,
            in1,
            in2,
            miter_gate,
            encoder,
            aig_single,
            last_stats: SolverStats::default(),
            root_unsat: false,
        }
    }

    /// Searches for a distinguishing input pattern; `None` means the miter
    /// is unsatisfiable under the accumulated constraints. Check
    /// [`MiterSession::miter_root_unsat`] to learn whether the UNSAT came
    /// from the miter-gate assumption (normal convergence) or the formula
    /// itself (contradictory IO constraints: no key exists).
    pub fn find_dip(&mut self) -> Option<Vec<bool>> {
        let gate = Lit::pos(self.miter_gate);
        match self.timed_solve(Some(gate), "find_dip") {
            SatResult::Unsat => None,
            SatResult::Sat => Some(
                self.data_ix
                    .iter()
                    .map(|&i| self.solver.value(self.in1[i]).unwrap_or(false))
                    .collect(),
            ),
        }
    }

    /// Queries the activated chip.
    pub fn query_oracle(&self, data: &[bool]) -> Vec<bool> {
        self.oracle.query(data)
    }

    /// Queries the activated chip with a batch of patterns, 64 per packed
    /// evaluation pass.
    pub fn query_oracle_many(&self, data: &[impl AsRef<[bool]>]) -> Vec<Vec<bool>> {
        self.oracle.query_many(data)
    }

    /// Constrains both key copies to agree with `response` on `data`.
    ///
    /// Under the AIG encoder the constraint copy is built by replaying the
    /// lowered view with the data pins as constant literals, so the
    /// rewrite rules fold the copy down to its key cone before any clause
    /// is emitted; a constraint contradicting a constant output lands on
    /// the always-false constant variable and makes the formula UNSAT, as
    /// it should.
    pub fn add_io_constraint(&mut self, data: &[bool], response: &[bool]) {
        for copy_ix in 0..2 {
            let key_vars = if copy_ix == 0 { &self.in1 } else { &self.in2 };
            match self.encoder {
                EncoderKind::Flat => {
                    let mut pins: Vec<Option<Var>> = vec![None; self.role.len()];
                    for &i in &self.key_ix {
                        pins[i] = Some(key_vars[i]);
                    }
                    let copy = encode_comb_into(&mut self.solver, self.locked, &self.view, &pins);
                    let mut di = 0;
                    for i in 0..self.role.len() {
                        match self.role[i] {
                            Role::Key => {}
                            Role::Ignored => {
                                self.solver.add_clause(&[Lit::neg(copy.input_vars[i])]);
                            }
                            Role::Data => {
                                let lit = Lit::with_sign(copy.input_vars[i], !data[di]);
                                self.solver.add_clause(&[lit]);
                                di += 1;
                            }
                        }
                    }
                    for (j, &ov) in copy.output_vars.iter().enumerate() {
                        self.solver.add_clause(&[Lit::with_sign(ov, !response[j])]);
                    }
                }
                EncoderKind::Aig => {
                    let single = self.aig_single.as_ref().expect("AIG encoder state");
                    let mut cone = Aig::new();
                    let mut map = Vec::with_capacity(self.role.len());
                    let mut pinned: Vec<Option<Var>> = Vec::new();
                    let mut di = 0;
                    for (&role, &kv) in self.role.iter().zip(key_vars) {
                        map.push(match role {
                            Role::Key => {
                                pinned.push(Some(kv));
                                cone.add_input()
                            }
                            Role::Ignored => AigLit::FALSE,
                            Role::Data => {
                                let b = data[di];
                                di += 1;
                                if b {
                                    AigLit::TRUE
                                } else {
                                    AigLit::FALSE
                                }
                            }
                        });
                    }
                    for (j, lit) in single.rebuild_into(&mut cone, &map).iter().enumerate() {
                        cone.mark_output(lit.complement_if(!response[j]));
                    }
                    let ports = encode_aig_into(&mut self.solver, &cone, &pinned);
                    for &out in &ports.output_lits {
                        self.solver.add_clause(&[out]);
                    }
                }
            }
        }
    }

    /// A key satisfying every recorded IO constraint, or `None` when the
    /// constraints are contradictory.
    pub fn extract_key(&mut self) -> Option<Vec<bool>> {
        match self.timed_solve(None, "extract_key") {
            SatResult::Unsat => None,
            SatResult::Sat => Some(
                self.key_ix
                    .iter()
                    .map(|&i| self.solver.value(self.in1[i]).unwrap_or(false))
                    .collect(),
            ),
        }
    }

    /// Evaluates the locked view under (data, key) without the solver —
    /// used by the approximate attack's error probes.
    pub fn eval_locked(&self, data: &[bool], key: &[bool]) -> Vec<bool> {
        let mut inputs = vec![Logic::Zero; self.view.num_inputs()];
        for (di, &i) in self.data_ix.iter().enumerate() {
            inputs[i] = Logic::from_bool(data[di]);
        }
        for (ki, &i) in self.key_ix.iter().enumerate() {
            inputs[i] = Logic::from_bool(key[ki]);
        }
        self.view
            .eval(self.locked, &inputs)
            .into_iter()
            .map(|v| v == Logic::One)
            .collect()
    }

    /// Batched [`MiterSession::eval_locked`]: evaluates the locked view
    /// under one key for many data patterns, 64 per packed pass through the
    /// compiled program. Key lanes are splatted constants; result rows are
    /// in pattern order.
    pub fn eval_locked_many(&self, data: &[impl AsRef<[bool]>], key: &[bool]) -> Vec<Vec<bool>> {
        let mut buf = self.locked_program.scratch();
        let mut results = Vec::with_capacity(data.len());
        for chunk in data.chunks(LANES) {
            let mut words = vec![PackedLogic::splat(Logic::Zero); self.view.num_inputs()];
            for (ki, &i) in self.key_ix.iter().enumerate() {
                words[i] = PackedLogic::splat(Logic::from_bool(key[ki]));
            }
            for (lane, row) in chunk.iter().enumerate() {
                let row = row.as_ref();
                assert_eq!(row.len(), self.data_ix.len(), "data width");
                for (di, &i) in self.data_ix.iter().enumerate() {
                    words[i].set(lane, Logic::from_bool(row[di]));
                }
            }
            let outs = self
                .view
                .eval_packed_words(&self.locked_program, &words, &mut buf);
            for lane in 0..chunk.len() {
                results.push(outs.iter().map(|w| w.get(lane) == Logic::One).collect());
            }
        }
        results
    }

    /// Number of data inputs (DIP width).
    pub fn data_width(&self) -> usize {
        self.data_ix.len()
    }

    /// True when the last miter solve proved the formula itself (not the
    /// miter-gate assumption) unsatisfiable: the accumulated IO
    /// constraints admit no key. Distinguished via the solver's
    /// assumption unsat core.
    pub fn miter_root_unsat(&self) -> bool {
        self.root_unsat
    }

    /// Current CNF size of the live miter solver as `(variables,
    /// clauses)` — the bench harness records these per encoder to compare
    /// flat and AIG miter footprints.
    pub fn cnf_size(&self) -> (u64, u64) {
        (
            u64::from(self.solver.num_vars()),
            self.solver.num_clauses() as u64,
        )
    }

    /// Runs the solver with telemetry: per-call wall time, cumulative
    /// call/variable/clause/search counters, and (when tracing) a
    /// `solver-call` event recording CNF growth.
    fn timed_solve(&mut self, assumption: Option<Lit>, site: &str) -> SatResult {
        let started = Instant::now();
        let result = match assumption {
            Some(lit) => self.solver.solve_with(&[lit]),
            None => self.solver.solve(),
        };
        let dur = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut unsat_kind = None;
        if assumption.is_some() && result == SatResult::Unsat {
            let root = self.solver.failed_assumptions().is_empty();
            self.root_unsat = root;
            unsat_kind = Some(if root { "root" } else { "assumptions" });
        }
        let collector = obs::current();
        collector.counter(names::SAT_SOLVER_CALLS).incr();
        collector.hist(names::SAT_SOLVER_NS).observe(dur);
        let vars = u64::from(self.solver.num_vars());
        let clauses = self.solver.num_clauses() as u64;
        collector.gauge(names::SAT_VARS).set(vars as f64);
        collector.gauge(names::SAT_CLAUSES).set(clauses as f64);
        // Per-solve search-effort deltas under the sat.* namespace.
        let stats = self.solver.stats();
        let prev = self.last_stats;
        self.last_stats = stats;
        collector
            .counter(names::SAT_CONFLICTS)
            .add(stats.conflicts - prev.conflicts);
        collector
            .counter(names::SAT_PROPAGATIONS)
            .add(stats.propagations - prev.propagations);
        collector
            .counter(names::SAT_RESTARTS)
            .add(stats.restarts - prev.restarts);
        collector
            .counter(names::SAT_REDUCTIONS)
            .add(stats.reductions - prev.reductions);
        collector.gauge(names::SAT_LEARNT).set(stats.learnt as f64);
        collector
            .gauge(names::SAT_MEAN_LBD_MILLI)
            .set(stats.mean_lbd_milli() as f64);
        let mut event = obs::event("solver-call", site)
            .str(
                "result",
                if result == SatResult::Sat {
                    "sat"
                } else {
                    "unsat"
                },
            )
            .u64("vars", vars)
            .u64("clauses", clauses)
            .u64("conflicts", stats.conflicts - prev.conflicts)
            .u64("dur_ns", dur);
        if let Some(kind) = unsat_kind {
            event = event.str("unsat_kind", kind);
        }
        event.emit();
        result
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Data,
    Key,
    Ignored,
}

fn encode_xor(solver: &mut Solver, y: Var, a: Var, b: Var) {
    let (yp, yn) = (Lit::pos(y), Lit::neg(y));
    let (ap, an) = (Lit::pos(a), Lit::neg(a));
    let (bp, bn) = (Lit::pos(b), Lit::neg(b));
    solver.add_clause(&[yn, ap, bp]);
    solver.add_clause(&[yn, an, bn]);
    solver.add_clause(&[yp, an, bp]);
    solver.add_clause(&[yp, ap, bn]);
}

/// Checks a recovered key by exhaustive or sampled comparison of the locked
/// view against the oracle. Returns the match rate over the tried patterns.
///
/// Both netlists are compiled once and evaluated bit-parallel, 64 random
/// patterns per pass, with the key lanes splatted to constants.
pub fn key_match_rate(
    locked: &Netlist,
    key_inputs: &[NetId],
    key: &[bool],
    oracle: &Netlist,
    samples: usize,
    rng: &mut impl rand::Rng,
) -> f64 {
    let view = CombView::new(locked);
    let oracle_view = CombView::new(oracle);
    let locked_program = EvalProgram::compile(locked).expect("locked netlist is acyclic");
    let oracle_program = EvalProgram::compile(oracle).expect("oracle netlist is acyclic");
    let data_positions: Vec<usize> = view
        .input_nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| !key_inputs.contains(n))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(data_positions.len(), oracle_view.num_inputs());
    // One splatted constant word per locked view input that is a key pin.
    let key_words: Vec<Option<PackedLogic>> = view
        .input_nets()
        .iter()
        .map(|n| {
            key_inputs
                .iter()
                .position(|k| k == n)
                .map(|pos| PackedLogic::splat(Logic::from_bool(key[pos])))
        })
        .collect();
    let mut locked_buf = locked_program.scratch();
    let mut oracle_buf = oracle_program.scratch();
    let mut matches = 0usize;
    let mut done = 0usize;
    while done < samples {
        let lanes = LANES.min(samples - done);
        // Draw sample-major so the consumed RNG stream matches the scalar
        // one-pattern-at-a-time loop this replaces.
        let mut data_words = vec![PackedLogic::splat(Logic::Zero); data_positions.len()];
        for lane in 0..lanes {
            for w in data_words.iter_mut() {
                w.set(lane, Logic::from_bool(rng.gen()));
            }
        }
        let mut di = 0;
        let locked_words: Vec<PackedLogic> = key_words
            .iter()
            .map(|kw| {
                kw.unwrap_or_else(|| {
                    let w = data_words[di];
                    di += 1;
                    w
                })
            })
            .collect();
        let got = view.eval_packed_words(&locked_program, &locked_words, &mut locked_buf);
        let expect = oracle_view.eval_packed_words(&oracle_program, &data_words, &mut oracle_buf);
        for lane in 0..lanes {
            if got
                .iter()
                .zip(&expect)
                .all(|(g, e)| g.get(lane) == e.get(lane))
            {
                matches += 1;
            }
        }
        done += lanes;
    }
    matches as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_core::locking::{LockScheme, MuxLock, SarLock, XorLock};
    use glitchlock_netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_circuit() -> Netlist {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let w1 = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let w2 = nl.add_gate(GateKind::Nor, &[c, d]).unwrap();
        let w3 = nl.add_gate(GateKind::Xor, &[w1, w2]).unwrap();
        let w4 = nl.add_gate(GateKind::And, &[w1, c]).unwrap();
        let q = nl.add_dff(w3).unwrap();
        let y = nl.add_gate(GateKind::Or, &[q, w4]).unwrap();
        nl.mark_output(y, "y");
        nl.mark_output(w3, "z");
        nl
    }

    #[test]
    fn cracks_xor_locking() {
        let nl = test_circuit();
        let mut rng = StdRng::seed_from_u64(21);
        let locked = XorLock::new(5).lock(&nl, &mut rng).unwrap();
        let attack = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl);
        let result = attack.run();
        let key = result.key().expect("XOR locking must fall").to_vec();
        // The recovered key need not equal the inserted one bit-for-bit,
        // but it must make the circuit functionally correct.
        let rate = key_match_rate(
            &locked.netlist,
            &locked.key_inputs,
            &key,
            &nl,
            200,
            &mut rng,
        );
        assert_eq!(rate, 1.0, "recovered key must be functionally correct");
        assert!(result.iterations >= 1);
    }

    #[test]
    fn cracks_mux_locking() {
        let nl = test_circuit();
        let mut rng = StdRng::seed_from_u64(22);
        let locked = MuxLock::new(3).lock(&nl, &mut rng).unwrap();
        let attack = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl);
        let result = attack.run();
        let key = result.key().expect("MUX locking must fall").to_vec();
        let rate = key_match_rate(
            &locked.netlist,
            &locked.key_inputs,
            &key,
            &nl,
            200,
            &mut rng,
        );
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn sarlock_needs_many_dips() {
        // SARLock's whole point: each DIP kills one key. With n key bits
        // the attack needs ~2^n iterations (here n = 4 -> >= 8).
        let nl = test_circuit();
        let mut rng = StdRng::seed_from_u64(23);
        let locked = SarLock::new(4).lock(&nl, &mut rng).unwrap();
        let attack = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl);
        let result = attack.run();
        let key = result.key().expect("SARLock falls eventually").to_vec();
        assert!(
            result.iterations >= 8,
            "point function must drag out the attack: {} iterations",
            result.iterations
        );
        let rate = key_match_rate(
            &locked.netlist,
            &locked.key_inputs,
            &key,
            &nl,
            200,
            &mut rng,
        );
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn both_encoders_crack_xor_locking_identically() {
        let nl = test_circuit();
        let mut rng = StdRng::seed_from_u64(29);
        let locked = XorLock::new(5).lock(&nl, &mut rng).unwrap();
        for encoder in [EncoderKind::Flat, EncoderKind::Aig] {
            let mut attack = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl);
            attack.encoder = encoder;
            let result = attack.run();
            let key = result.key().unwrap_or_else(|| panic!("{encoder} must win"));
            let rate = key_match_rate(
                &locked.netlist,
                &locked.key_inputs,
                key,
                &nl,
                200,
                &mut StdRng::seed_from_u64(30),
            );
            assert_eq!(rate, 1.0, "{encoder} key must be functionally correct");
        }
    }

    #[test]
    fn aig_miter_is_smaller_than_flat() {
        // On a benchmark-scale netlist strash sharing between the two
        // miter copies dominates the AIG's XOR inflation; a four-gate toy
        // would not show the effect.
        let profile = glitchlock_circuits::profile_by_name("s1238").unwrap();
        let nl = glitchlock_circuits::generate(&profile);
        let mut rng = StdRng::seed_from_u64(31);
        let locked = XorLock::new(8).lock(&nl, &mut rng).unwrap();
        let size = |encoder| {
            let session = MiterSession::with_config(
                &locked.netlist,
                &locked.key_inputs,
                &[],
                &nl,
                SolverBackend::default(),
                encoder,
            );
            let (v, c) = session.cnf_size();
            v + c
        };
        let (flat, aig) = (size(EncoderKind::Flat), size(EncoderKind::Aig));
        assert!(
            (aig as f64) < 0.7 * flat as f64,
            "strash sharing must shrink the miter by >=30%: flat={flat} aig={aig}"
        );
    }

    #[test]
    fn unlockable_key_free_circuit_is_no_dip() {
        // A "locked" design with a key input that does not affect anything:
        // the miter is UNSAT at iteration 1, like a GK in the static view.
        let nl = test_circuit();
        let mut locked = nl.clone();
        let k = locked.add_input("key0");
        // Key feeds a gate whose output goes nowhere.
        let _dead = locked.add_gate(GateKind::Inv, &[k]).unwrap();
        let attack = SatAttack::new(&locked, vec![k], &nl);
        let result = attack.run();
        assert!(matches!(
            result.outcome,
            SatOutcome::NoDipAtFirstIteration { .. }
        ));
        assert_eq!(result.iterations, 0);
        assert!(result.dips.is_empty());
    }

    #[test]
    fn pre_cancelled_attack_returns_cancelled_without_solving() {
        let nl = test_circuit();
        let mut rng = StdRng::seed_from_u64(25);
        let locked = XorLock::new(4).lock(&nl, &mut rng).unwrap();
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let mut attack = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl);
        attack.cancel = Some(token);
        let result = attack.run();
        assert_eq!(result.outcome, SatOutcome::Cancelled);
        assert_eq!(result.iterations, 0);
        assert!(result.dips.is_empty());
    }

    #[test]
    fn iteration_limit_respected() {
        let nl = test_circuit();
        let mut rng = StdRng::seed_from_u64(24);
        let locked = SarLock::new(4).lock(&nl, &mut rng).unwrap();
        let mut attack = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl);
        attack.max_iterations = 2;
        let result = attack.run();
        assert_eq!(result.outcome, SatOutcome::IterationLimit);
        assert_eq!(result.iterations, 2);
    }
}
