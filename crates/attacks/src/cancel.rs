//! Cooperative cancellation for long-running attack loops.
//!
//! A [`CancelToken`] is a cheaply clonable flag plus an optional deadline.
//! The campaign orchestrator hands one to every job: the pool can flip the
//! flag from outside (campaign shutdown, per-job wall-clock timeout), and
//! the attack loops poll [`CancelToken::is_cancelled`] once per DIP
//! iteration — the natural quantum, since a single solver call cannot be
//! interrupted anyway. A cancelled attack returns a distinct `Cancelled`
//! outcome instead of fabricating a key.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation flag with an optional wall-clock deadline.
///
/// Clones share the flag: cancelling any clone cancels them all. The
/// deadline is fixed at construction and also trips
/// [`CancelToken::is_cancelled`] once passed, so a token doubles as a
/// per-job timeout without any watcher thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `timeout` has
    /// elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// Requests cancellation on this token and every clone of it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True when [`CancelToken::cancel`] was called or the deadline has
    /// passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_without_cancel() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
