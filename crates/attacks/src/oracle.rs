//! The attack oracle: a functionally correct chip with the right key.

use glitchlock_netlist::{CombView, Logic, Netlist};

/// An activated chip the attacker can query: combinational view of the
/// original design, scan access assumed (flip-flop Q pins drivable, D pins
/// observable), as in the paper's Sec. VI transformation.
#[derive(Debug)]
pub struct ComboOracle<'a> {
    netlist: &'a Netlist,
    view: CombView,
}

impl<'a> ComboOracle<'a> {
    /// Wraps the original design.
    pub fn new(netlist: &'a Netlist) -> Self {
        ComboOracle {
            view: CombView::new(netlist),
            netlist,
        }
    }

    /// Input width (primary + pseudo inputs).
    pub fn num_inputs(&self) -> usize {
        self.view.num_inputs()
    }

    /// Output width (primary + pseudo outputs).
    pub fn num_outputs(&self) -> usize {
        self.view.num_outputs()
    }

    /// Queries the chip with a full input assignment.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn query(&self, inputs: &[bool]) -> Vec<bool> {
        let logic: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        self.view
            .eval(self.netlist, &logic)
            .into_iter()
            .map(|v| v.to_bool().expect("oracle outputs are definite"))
            .collect()
    }

    /// The underlying combinational view.
    pub fn view(&self) -> &CombView {
        &self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    #[test]
    fn oracle_answers_combinationally_unfolded_queries() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[a, q]).unwrap();
        nl.mark_output(y, "y");
        let oracle = ComboOracle::new(&nl);
        assert_eq!(oracle.num_inputs(), 2, "a + pseudo q");
        assert_eq!(oracle.num_outputs(), 2, "y + pseudo d");
        // a=1, q=0 -> y=1, next q (= a) = 1.
        assert_eq!(oracle.query(&[true, false]), vec![true, true]);
        assert_eq!(oracle.query(&[true, true]), vec![false, true]);
    }
}
