//! The attack oracle: a functionally correct chip with the right key.

use glitchlock_netlist::{CombView, EvalProgram, Logic, Netlist, PackedLogic, LANES};
use glitchlock_obs::{self as obs, names};

/// An activated chip the attacker can query: combinational view of the
/// original design, scan access assumed (flip-flop Q pins drivable, D pins
/// observable), as in the paper's Sec. VI transformation.
///
/// The netlist is compiled once into a bit-parallel [`EvalProgram`];
/// [`ComboOracle::query_many`] answers 64 patterns per evaluation pass.
#[derive(Debug)]
pub struct ComboOracle<'a> {
    netlist: &'a Netlist,
    view: CombView,
    program: EvalProgram,
}

impl<'a> ComboOracle<'a> {
    /// Wraps the original design.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (use
    /// [`Netlist::validate`] first for untrusted circuits).
    pub fn new(netlist: &'a Netlist) -> Self {
        ComboOracle {
            view: CombView::new(netlist),
            program: EvalProgram::compile(netlist).expect("oracle netlist must be acyclic"),
            netlist,
        }
    }

    /// Input width (primary + pseudo inputs).
    pub fn num_inputs(&self) -> usize {
        self.view.num_inputs()
    }

    /// Output width (primary + pseudo outputs).
    pub fn num_outputs(&self) -> usize {
        self.view.num_outputs()
    }

    /// Queries the chip with a full input assignment.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn query(&self, inputs: &[bool]) -> Vec<bool> {
        obs::incr(names::ORACLE_QUERIES);
        let logic: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        self.view
            .eval(self.netlist, &logic)
            .into_iter()
            .map(|v| v.to_bool().expect("oracle outputs are definite"))
            .collect()
    }

    /// Queries the chip with a batch of input assignments, evaluating 64
    /// patterns per pass through the compiled program. Response rows are in
    /// pattern order, each exactly what [`ComboOracle::query`] would
    /// return.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn query_many(&self, patterns: &[impl AsRef<[bool]>]) -> Vec<Vec<bool>> {
        obs::add(names::ORACLE_QUERIES, patterns.len() as u64);
        let width = self.view.num_inputs();
        let mut buf = self.program.scratch();
        let mut results = Vec::with_capacity(patterns.len());
        for chunk in patterns.chunks(LANES) {
            let words: Vec<PackedLogic> = (0..width)
                .map(|i| {
                    let mut val = 0u64;
                    for (lane, p) in chunk.iter().enumerate() {
                        let p = p.as_ref();
                        assert_eq!(p.len(), width, "pattern width");
                        if p[i] {
                            val |= 1 << lane;
                        }
                    }
                    PackedLogic { val, known: !0 }
                })
                .collect();
            let outs = self.view.eval_packed_words(&self.program, &words, &mut buf);
            for lane in 0..chunk.len() {
                results.push(
                    outs.iter()
                        .map(|w| w.get(lane).to_bool().expect("oracle outputs are definite"))
                        .collect(),
                );
            }
        }
        results
    }

    /// The underlying combinational view.
    pub fn view(&self) -> &CombView {
        &self.view
    }

    /// The compiled bit-parallel program for the oracle netlist.
    pub fn program(&self) -> &EvalProgram {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    #[test]
    fn oracle_answers_combinationally_unfolded_queries() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[a, q]).unwrap();
        nl.mark_output(y, "y");
        let oracle = ComboOracle::new(&nl);
        assert_eq!(oracle.num_inputs(), 2, "a + pseudo q");
        assert_eq!(oracle.num_outputs(), 2, "y + pseudo d");
        // a=1, q=0 -> y=1, next q (= a) = 1.
        assert_eq!(oracle.query(&[true, false]), vec![true, true]);
        assert_eq!(oracle.query(&[true, true]), vec![false, true]);
    }

    #[test]
    fn query_many_matches_query() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let q = nl.add_dff(a).unwrap();
        let g = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g, q]).unwrap();
        nl.mark_output(y, "y");
        let oracle = ComboOracle::new(&nl);
        // All 8 assignments over (a, b, pseudo-q), plus repeats to cross
        // the 64-lane boundary.
        let mut patterns: Vec<Vec<bool>> = Vec::new();
        for i in 0..130u32 {
            let bits = i % 8;
            patterns.push(vec![bits & 1 != 0, bits & 2 != 0, bits & 4 != 0]);
        }
        let batch = oracle.query_many(&patterns);
        assert_eq!(batch.len(), patterns.len());
        for (p, got) in patterns.iter().zip(&batch) {
            assert_eq!(got, &oracle.query(p), "pattern {p:?}");
        }
    }
}
