//! AppSAT-style approximate deobfuscation (Shamsi et al. \[10\], cited by
//! the paper as the attack that cracks SAT-resistant schemes by exploiting
//! their reliance on conventional key-gates for corruptibility).
//!
//! The exact SAT attack must eliminate *every* wrong key — against a point
//! function (SARLock/Anti-SAT) that costs one DIP per key. AppSAT settles
//! for an **approximately correct** key: it interleaves DIP rounds with
//! random-pattern probes and stops once the candidate key's observed error
//! rate drops below a threshold. Against compound schemes
//! (point-function + XOR), it quickly recovers the XOR portion and returns
//! a key that is wrong only on the point function's single pattern.
//!
//! Against GK locking the DIP loop is empty (the miter is UNSAT
//! immediately), so AppSAT inherits the exact attack's failure: any key it
//! returns looks perfect in the static view — the probes measure zero
//! error — and is still useless on the timed chip.

use crate::cancel::CancelToken;
use crate::sat_attack::MiterSession;
use glitchlock_netlist::{NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_sat::{EncoderKind, SolverBackend};
use rand::Rng;

/// Result of an AppSAT run.
#[derive(Clone, Debug)]
pub struct AppSatResult {
    /// The candidate key.
    pub key: Vec<bool>,
    /// Observed error rate of the candidate on the final probe round
    /// (fraction of probed patterns whose outputs differ from the oracle).
    pub error_rate: f64,
    /// DIP iterations performed.
    pub dip_iterations: usize,
    /// True when the miter became UNSAT (exact convergence) rather than an
    /// early approximate settle.
    pub exact: bool,
    /// True when the run was stopped by a [`CancelToken`] before settling;
    /// `key` and `error_rate` then reflect the last completed round.
    pub cancelled: bool,
}

/// Configuration of the approximate attack.
#[derive(Clone, Copy, Debug)]
pub struct AppSat {
    /// DIP rounds between probe rounds.
    pub dips_per_round: usize,
    /// Random patterns per probe round.
    pub probes: usize,
    /// Settle threshold: stop when the observed error rate is at or below
    /// this value.
    pub settle_error_rate: f64,
    /// Hard cap on total DIP iterations.
    pub max_iterations: usize,
    /// Which CDCL strategy profile drives the miter solves.
    pub backend: SolverBackend,
    /// Which CNF encoder builds the miter.
    pub encoder: EncoderKind,
}

impl Default for AppSat {
    fn default() -> Self {
        AppSat {
            dips_per_round: 4,
            probes: 64,
            settle_error_rate: 0.01,
            max_iterations: 512,
            backend: SolverBackend::default(),
            encoder: EncoderKind::default(),
        }
    }
}

impl AppSat {
    /// Runs the approximate attack.
    ///
    /// # Panics
    ///
    /// Panics when the locked view's non-key inputs do not align with the
    /// oracle (same contract as [`crate::SatAttack`]).
    pub fn run<R: Rng>(
        &self,
        locked: &Netlist,
        key_inputs: &[NetId],
        oracle: &Netlist,
        rng: &mut R,
    ) -> AppSatResult {
        self.run_with_cancel(locked, key_inputs, oracle, rng, None)
    }

    /// [`AppSat::run`] with a cooperative [`CancelToken`], polled once per
    /// round (DIP burst + probe batch).
    ///
    /// # Panics
    ///
    /// Same contract as [`AppSat::run`].
    pub fn run_with_cancel<R: Rng>(
        &self,
        locked: &Netlist,
        key_inputs: &[NetId],
        oracle: &Netlist,
        rng: &mut R,
        cancel: Option<&CancelToken>,
    ) -> AppSatResult {
        let _span = obs::span("attack.appsat");
        let round_counter = obs::counter(names::APPSAT_ROUNDS);
        let dip_counter = obs::counter(names::APPSAT_DIPS);
        let probe_counter = obs::counter(names::APPSAT_PROBES);
        let mut session =
            MiterSession::with_config(locked, key_inputs, &[], oracle, self.backend, self.encoder);
        let mut dip_iterations = 0;
        loop {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                let key = session.extract_key().unwrap_or_default();
                obs::event("result", "appsat")
                    .str("outcome", "cancelled")
                    .u64("dip_iterations", dip_iterations as u64)
                    .emit();
                return AppSatResult {
                    key,
                    error_rate: 1.0,
                    dip_iterations,
                    exact: false,
                    cancelled: true,
                };
            }
            round_counter.incr();
            // A burst of exact DIP rounds.
            let mut exhausted = false;
            for _ in 0..self.dips_per_round {
                if dip_iterations >= self.max_iterations {
                    exhausted = true;
                    break;
                }
                match session.find_dip() {
                    None => {
                        exhausted = true;
                        break;
                    }
                    Some(dip) => {
                        dip_iterations += 1;
                        dip_counter.incr();
                        obs::event("dip", "appsat")
                            .u64("iter", dip_iterations as u64)
                            .str_with("pattern", || crate::sat_attack::bits(&dip))
                            .emit();
                        let response = session.query_oracle(&dip);
                        session.add_io_constraint(&dip, &response);
                    }
                }
            }
            let key = session.extract_key().unwrap_or_default();
            // Probe round: measure the candidate's error rate on random
            // patterns; failing patterns become extra IO constraints
            // (AppSAT's reinforcement step).
            let data_batch: Vec<Vec<bool>> = (0..self.probes)
                .map(|_| (0..session.data_width()).map(|_| rng.gen()).collect())
                .collect();
            let expect_batch = session.query_oracle_many(&data_batch);
            let got_batch = session.eval_locked_many(&data_batch, &key);
            let mut errors = 0usize;
            let mut failing: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
            for ((data, expect), got) in data_batch.into_iter().zip(expect_batch).zip(got_batch) {
                if got != expect {
                    errors += 1;
                    failing.push((data, expect));
                }
            }
            probe_counter.add(self.probes as u64);
            let error_rate = errors as f64 / self.probes as f64;
            if exhausted || error_rate <= self.settle_error_rate {
                obs::gauge_set("appsat.error_rate", error_rate);
                obs::event("result", "appsat")
                    .str("outcome", if exhausted { "exhausted" } else { "settled" })
                    .u64("dip_iterations", dip_iterations as u64)
                    .f64("error_rate", error_rate)
                    .emit();
                return AppSatResult {
                    key,
                    error_rate,
                    dip_iterations,
                    exact: exhausted && error_rate == 0.0,
                    cancelled: false,
                };
            }
            for (data, expect) in failing {
                session.add_io_constraint(&data, &expect);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_core::locking::{LockScheme, SarLock, XorLock};
    use glitchlock_netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn circuit() -> Netlist {
        let mut nl = Netlist::new("c");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(format!("i{i}"))).collect();
        let w1 = nl.add_gate(GateKind::Nand, &[ins[0], ins[1]]).unwrap();
        let w2 = nl.add_gate(GateKind::Nor, &[ins[2], ins[3]]).unwrap();
        let w3 = nl.add_gate(GateKind::Xor, &[w1, w2]).unwrap();
        let w4 = nl.add_gate(GateKind::And, &[ins[4], ins[5], w3]).unwrap();
        let w5 = nl.add_gate(GateKind::Or, &[w3, w4]).unwrap();
        nl.mark_output(w4, "y0");
        nl.mark_output(w5, "y1");
        nl
    }

    /// Compound locking: SARLock + XOR — the scenario AppSAT was built
    /// for. The approximate key must recover the XOR portion (near-zero
    /// error) in far fewer DIPs than the exact attack needs.
    #[test]
    fn appsat_approximately_cracks_sarlock_xor_compound() {
        let nl = circuit();
        let mut rng = StdRng::seed_from_u64(61);
        let xor_locked = XorLock::new(6).lock(&nl, &mut rng).unwrap();
        let compound = SarLock::new(6).lock(&xor_locked.netlist, &mut rng).unwrap();
        // Key layout in the compound netlist: XOR keys then SARLock keys.
        let mut all_keys = xor_locked.key_inputs.clone();
        all_keys.extend(compound.key_inputs.iter().copied());
        let cfg = AppSat {
            settle_error_rate: 0.02,
            max_iterations: 40,
            ..AppSat::default()
        };
        let result = cfg.run(&compound.netlist, &all_keys, &nl, &mut rng);
        assert!(
            result.error_rate <= 0.02,
            "approximate key must be almost always right (rate {})",
            result.error_rate
        );
        assert!(
            result.dip_iterations <= 40,
            "AppSAT must settle quickly; exact needs ~2^6 DIPs"
        );
    }

    #[test]
    fn appsat_converges_exactly_on_plain_xor() {
        let nl = circuit();
        let mut rng = StdRng::seed_from_u64(62);
        let locked = XorLock::new(5).lock(&nl, &mut rng).unwrap();
        // A large DIP burst exhausts the miter before the first probe
        // round, giving exact convergence.
        let cfg = AppSat {
            dips_per_round: 64,
            ..AppSat::default()
        };
        let result = cfg.run(&locked.netlist, &locked.key_inputs, &nl, &mut rng);
        assert!(result.exact, "plain XOR locking converges exactly");
        assert_eq!(result.error_rate, 0.0);

        // With small bursts it may settle early instead — still zero
        // observed error, flagged approximate.
        let mut rng = StdRng::seed_from_u64(62);
        let result = AppSat::default().run(&locked.netlist, &locked.key_inputs, &nl, &mut rng);
        assert_eq!(result.error_rate, 0.0);
    }

    #[test]
    fn appsat_is_blind_against_gk() {
        use glitchlock_core::GkEncryptor;
        use glitchlock_sta::ClockModel;
        use glitchlock_stdcell::{Library, Ps};
        let nl = glitchlock_circuits::generate(&glitchlock_circuits::tiny(63));
        let lib = Library::cl013g_like();
        let clock = ClockModel::new(Ps::from_ns(3));
        let mut rng = StdRng::seed_from_u64(63);
        let locked = GkEncryptor::new(3)
            .encrypt(&nl, &lib, &clock, &mut rng)
            .unwrap();
        let result = AppSat::default().run(
            &locked.attack_view,
            &locked.attack_key_inputs,
            &nl,
            &mut rng,
        );
        // No DIP ever exists (the miter is UNSAT at once), so AppSAT gets
        // zero leverage from the solver. Its probes *do* observe that the
        // static view disagrees with the chip at the GK-fed state bits —
        // but no key assignment explains the error, so the attack cannot
        // settle on anything useful. (Acting on that observation is the
        // enhanced removal attack, which the paper counters with
        // withholding.)
        assert_eq!(result.dip_iterations, 0);
        assert!(
            result.error_rate > 0.5,
            "probes expose unexplainable corruption: rate {}",
            result.error_rate
        );
        assert!(!result.exact);
    }
}
