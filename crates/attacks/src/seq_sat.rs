//! Sequential SAT attack (no scan access).
//!
//! The paper's experiment (and the classic attack \[11\]) assumes full scan:
//! flip-flops become pseudo-ports. Without scan, an attacker can still run
//! an *unrolled* variant: both keyed copies are expanded over `k` time
//! frames from the reset state, the miter compares only the primary
//! outputs, and a DIP becomes a distinguishing **input sequence**. The
//! oracle is queried by resetting the chip and clocking the sequence in.
//!
//! Result relevant to the paper: GK-locked designs are UNSAT at the first
//! iteration *here too* — the static key-independence of the GK holds in
//! every time frame, so removing the scan assumption does not revive the
//! attack.

use crate::cancel::CancelToken;
use crate::oracle::ComboOracle;
use glitchlock_netlist::{CombView, NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_sat::{encode_comb_with, EncoderKind, Lit, SatResult, Solver, SolverBackend, Var};

/// Outcome of the sequential attack.
#[derive(Clone, Debug, PartialEq)]
pub enum SeqSatOutcome {
    /// A key consistent with every queried sequence.
    KeyRecovered {
        /// The recovered key bits in `key_inputs` order.
        key: Vec<bool>,
    },
    /// No distinguishing input sequence exists within the unroll depth.
    NoDistinguishingSequence {
        /// Any surviving key (all equivalent to this attacker).
        arbitrary_key: Vec<bool>,
    },
    /// Iteration budget exhausted.
    IterationLimit,
    /// Stopped early by a [`CancelToken`] (campaign timeout or external
    /// shutdown).
    Cancelled,
}

/// Result of [`seq_sat_attack`].
#[derive(Clone, Debug)]
pub struct SeqSatResult {
    /// The outcome.
    pub outcome: SeqSatOutcome,
    /// Distinguishing sequences found (each `k` cycles of PI vectors).
    pub sequences: Vec<Vec<Vec<bool>>>,
    /// DIP-sequence iterations executed.
    pub iterations: usize,
}

/// Runs the unrolled sequential SAT attack with `depth` time frames.
///
/// `locked`'s primary inputs must be the oracle's primary inputs plus the
/// key inputs; both machines start from the all-zero state (the reset the
/// attacker can force on the chip).
///
/// # Panics
///
/// Panics on interface mismatches or cyclic netlists.
pub fn seq_sat_attack(
    locked: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    depth: usize,
    max_iterations: usize,
) -> SeqSatResult {
    seq_sat_attack_with_cancel(locked, key_inputs, oracle, depth, max_iterations, None)
}

/// [`seq_sat_attack`] with a cooperative [`CancelToken`], polled before
/// every distinguishing-sequence iteration.
///
/// # Panics
///
/// Same contract as [`seq_sat_attack`].
pub fn seq_sat_attack_with_cancel(
    locked: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    depth: usize,
    max_iterations: usize,
    cancel: Option<&CancelToken>,
) -> SeqSatResult {
    seq_sat_attack_with_backend(
        locked,
        key_inputs,
        oracle,
        depth,
        max_iterations,
        cancel,
        SolverBackend::default(),
    )
}

/// [`seq_sat_attack_with_cancel`] on an explicit solver backend, so
/// campaigns can A/B the CDCL strategy profiles.
///
/// # Panics
///
/// Same contract as [`seq_sat_attack`].
pub fn seq_sat_attack_with_backend(
    locked: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    depth: usize,
    max_iterations: usize,
    cancel: Option<&CancelToken>,
    backend: SolverBackend,
) -> SeqSatResult {
    seq_sat_attack_with_config(
        locked,
        key_inputs,
        oracle,
        depth,
        max_iterations,
        cancel,
        backend,
        EncoderKind::default(),
    )
}

/// [`seq_sat_attack_with_backend`] on an explicit CNF encoder as well —
/// every unrolled copy goes through the selected encoding, so the AIG
/// path strashes shared per-frame logic before any clause is emitted.
///
/// # Panics
///
/// Same contract as [`seq_sat_attack`].
#[allow(clippy::too_many_arguments)]
pub fn seq_sat_attack_with_config(
    locked: &Netlist,
    key_inputs: &[NetId],
    oracle: &Netlist,
    depth: usize,
    max_iterations: usize,
    cancel: Option<&CancelToken>,
    backend: SolverBackend,
    encoder: EncoderKind,
) -> SeqSatResult {
    let view = CombView::new(locked);
    let n_po = locked.output_ports().len();
    assert_eq!(
        n_po,
        oracle.output_ports().len(),
        "output widths must align"
    );
    // Partition locked PIs into data and key (pseudo inputs excluded: this
    // attacker has no scan access).
    let n_pi = locked.input_nets().len();
    let key_pos: Vec<usize> = (0..n_pi)
        .filter(|&i| key_inputs.contains(&locked.input_nets()[i]))
        .collect();
    let data_pos: Vec<usize> = (0..n_pi)
        .filter(|&i| !key_inputs.contains(&locked.input_nets()[i]))
        .collect();
    assert_eq!(
        data_pos.len(),
        oracle.input_nets().len(),
        "data inputs must align with the oracle"
    );

    let mut solver = Solver::with_backend(backend);
    // Key variables for the two copies (constant across time frames).
    let key1: Vec<Var> = key_pos.iter().map(|_| solver.new_var()).collect();
    let key2: Vec<Var> = key_pos.iter().map(|_| solver.new_var()).collect();
    // Shared data inputs per frame.
    let data: Vec<Vec<Var>> = (0..depth)
        .map(|_| data_pos.iter().map(|_| solver.new_var()).collect())
        .collect();

    let zero_state = |solver: &mut Solver, n: usize| -> Vec<Var> {
        (0..n)
            .map(|_| {
                let v = solver.new_var();
                solver.add_clause(&[Lit::neg(v)]);
                v
            })
            .collect()
    };
    let n_state = locked.dff_cells().len();
    let mut state1 = zero_state(&mut solver, n_state);
    let mut state2 = zero_state(&mut solver, n_state);

    // Unroll the two keyed copies and a diff var per PO per frame.
    let mut frame_pos: Vec<(Vec<Var>, Vec<Var>)> = Vec::with_capacity(depth);
    for frame_data in data.iter().take(depth) {
        let unroll = |solver: &mut Solver, key: &[Var], state: &[Var]| {
            let mut pinned: Vec<Option<Var>> = vec![None; view.num_inputs()];
            for (di, &p) in data_pos.iter().enumerate() {
                pinned[p] = Some(frame_data[di]);
            }
            for (ki, &p) in key_pos.iter().enumerate() {
                pinned[p] = Some(key[ki]);
            }
            for (si, sv) in state.iter().enumerate() {
                pinned[n_pi + si] = Some(*sv);
            }
            let ports = encode_comb_with(solver, locked, &view, &pinned, encoder);
            let pos = ports.output_vars[..n_po].to_vec();
            let next = ports.output_vars[n_po..].to_vec();
            (pos, next)
        };
        let (po1, next1) = unroll(&mut solver, &key1, &state1);
        let (po2, next2) = unroll(&mut solver, &key2, &state2);
        state1 = next1;
        state2 = next2;
        frame_pos.push((po1, po2));
    }
    let gate = solver.new_var();
    let mut diff_lits = vec![Lit::neg(gate)];
    for (po1, po2) in &frame_pos {
        for (o1, o2) in po1.iter().zip(po2) {
            let d = solver.new_var();
            solver.add_clause(&[Lit::neg(d), Lit::pos(*o1), Lit::pos(*o2)]);
            solver.add_clause(&[Lit::neg(d), Lit::neg(*o1), Lit::neg(*o2)]);
            solver.add_clause(&[Lit::pos(d), Lit::neg(*o1), Lit::pos(*o2)]);
            solver.add_clause(&[Lit::pos(d), Lit::pos(*o1), Lit::neg(*o2)]);
            diff_lits.push(Lit::pos(d));
        }
    }
    solver.add_clause(&diff_lits);

    // The oracle, queried by replaying sequences from reset.
    let oracle_comb = ComboOracle::new(oracle);
    let n_oracle_state = oracle.dff_cells().len();
    let query_sequence = |seq: &[Vec<bool>]| -> Vec<Vec<bool>> {
        let mut state = vec![false; n_oracle_state];
        let mut outs = Vec::with_capacity(seq.len());
        for frame in seq {
            let mut full = frame.clone();
            full.extend(state.iter().copied());
            let response = oracle_comb.query(&full);
            outs.push(response[..n_po].to_vec());
            state = response[n_po..].to_vec();
        }
        outs
    };

    let _span = obs::span("attack.seqsat");
    let iter_counter = obs::counter(names::SEQSAT_ITERATIONS);
    let call_counter = obs::counter(names::SEQSAT_SOLVER_CALLS);
    let mut sequences = Vec::new();
    let mut iterations = 0;
    loop {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            obs::event("result", "seq_sat")
                .str("outcome", "cancelled")
                .u64("iterations", iterations as u64)
                .emit();
            return SeqSatResult {
                outcome: SeqSatOutcome::Cancelled,
                sequences,
                iterations,
            };
        }
        call_counter.incr();
        match solver.solve_with(&[Lit::pos(gate)]) {
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                if iterations > max_iterations {
                    obs::event("result", "seq_sat")
                        .str("outcome", "iteration-limit")
                        .u64("iterations", max_iterations as u64)
                        .emit();
                    return SeqSatResult {
                        outcome: SeqSatOutcome::IterationLimit,
                        sequences,
                        iterations: max_iterations,
                    };
                }
                iter_counter.incr();
                obs::event("dip", "seq_sat")
                    .u64("iter", iterations as u64)
                    .u64("frames", data.len() as u64)
                    .emit();
                let seq: Vec<Vec<bool>> = data
                    .iter()
                    .map(|frame| {
                        frame
                            .iter()
                            .map(|&v| solver.value(v).unwrap_or(false))
                            .collect()
                    })
                    .collect();
                let responses = query_sequence(&seq);
                // Constrain both keys: fresh unrollings pinned to the
                // sequence with outputs forced to the oracle responses.
                for key in [&key1, &key2] {
                    let mut state = zero_state(&mut solver, n_state);
                    for (t, frame) in seq.iter().enumerate() {
                        let mut pinned: Vec<Option<Var>> = vec![None; view.num_inputs()];
                        for (di, &p) in data_pos.iter().enumerate() {
                            let v = solver.new_var();
                            solver.add_clause(&[Lit::with_sign(v, !frame[di])]);
                            pinned[p] = Some(v);
                        }
                        for (ki, &p) in key_pos.iter().enumerate() {
                            pinned[p] = Some(key[ki]);
                        }
                        for (si, sv) in state.iter().enumerate() {
                            pinned[n_pi + si] = Some(*sv);
                        }
                        let ports = encode_comb_with(&mut solver, locked, &view, &pinned, encoder);
                        for (j, &ov) in ports.output_vars[..n_po].iter().enumerate() {
                            solver.add_clause(&[Lit::with_sign(ov, !responses[t][j])]);
                        }
                        state = ports.output_vars[n_po..].to_vec();
                    }
                }
                sequences.push(seq);
            }
        }
    }
    call_counter.incr();
    let outcome = match solver.solve() {
        SatResult::Unsat => SeqSatOutcome::IterationLimit,
        SatResult::Sat => {
            let key: Vec<bool> = key1
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect();
            if iterations == 0 {
                SeqSatOutcome::NoDistinguishingSequence { arbitrary_key: key }
            } else {
                SeqSatOutcome::KeyRecovered { key }
            }
        }
    };
    obs::event("result", "seq_sat")
        .str(
            "outcome",
            match &outcome {
                SeqSatOutcome::KeyRecovered { .. } => "key-recovered",
                SeqSatOutcome::NoDistinguishingSequence { .. } => "no-distinguishing-sequence",
                SeqSatOutcome::IterationLimit => "iteration-limit",
                SeqSatOutcome::Cancelled => "cancelled",
            },
        )
        .u64("iterations", iterations as u64)
        .emit();
    SeqSatResult {
        outcome,
        sequences,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_core::locking::{LockScheme, XorLock};
    use glitchlock_core::GkEncryptor;
    use glitchlock_netlist::{GateKind, Logic, SeqState};
    use glitchlock_sta::ClockModel;
    use glitchlock_stdcell::{Library, Ps};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_circuit() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let q = nl.add_dff(w).unwrap();
        let x = nl.add_gate(GateKind::Xor, &[q, a]).unwrap();
        let q2 = nl.add_dff(x).unwrap();
        let y = nl.add_gate(GateKind::Or, &[q2, b]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn cracks_xor_locking_without_scan() {
        let nl = seq_circuit();
        let mut rng = StdRng::seed_from_u64(81);
        let locked = XorLock::new(4).lock(&nl, &mut rng).unwrap();
        let result = seq_sat_attack(&locked.netlist, &locked.key_inputs, &nl, 4, 128);
        let SeqSatOutcome::KeyRecovered { key } = &result.outcome else {
            panic!("XOR locking must fall to the sequential attack: {result:?}");
        };
        // Verify: the recovered key makes the locked machine track the
        // oracle over random sequences.
        let mut lrng = StdRng::seed_from_u64(82);
        use rand::Rng;
        let mut s_orig = SeqState::reset(&nl);
        let mut s_lock = SeqState::reset(&locked.netlist);
        for _ in 0..32 {
            let data: Vec<Logic> = (0..2).map(|_| Logic::from_bool(lrng.gen())).collect();
            let mut full = Vec::new();
            let mut di = 0;
            for &net in locked.netlist.input_nets() {
                if let Some(ki) = locked.key_inputs.iter().position(|&k| k == net) {
                    full.push(Logic::from_bool(key[ki]));
                } else {
                    full.push(data[di]);
                    di += 1;
                }
            }
            assert_eq!(s_lock.step(&locked.netlist, &full), s_orig.step(&nl, &data));
        }
    }

    #[test]
    fn gk_resists_even_without_the_scan_assumption() {
        let nl = glitchlock_circuits::generate(&glitchlock_circuits::tiny(83));
        let lib = Library::cl013g_like();
        let clock = ClockModel::new(Ps::from_ns(3));
        let mut rng = StdRng::seed_from_u64(83);
        let locked = GkEncryptor::new(2)
            .encrypt(&nl, &lib, &clock, &mut rng)
            .unwrap();
        let result = seq_sat_attack(&locked.attack_view, &locked.attack_key_inputs, &nl, 3, 64);
        assert_eq!(result.iterations, 0);
        assert!(matches!(
            result.outcome,
            SeqSatOutcome::NoDistinguishingSequence { .. }
        ));
    }

    #[test]
    fn depth_matters_for_state_buried_keys() {
        // A key-gate *behind* a flip-flop needs >= 2 frames for its effect
        // to reach the output.
        let mut nl = Netlist::new("deep");
        let a = nl.add_input("a");
        let q = nl.add_dff(a).unwrap();
        let y = nl.add_gate(GateKind::Buf, &[q]).unwrap();
        nl.mark_output(y, "y");
        // Lock the D pin (pre-state).
        let mut locked = nl.clone();
        let k = locked.add_input("key0");
        let ff = locked.dff_cells()[0];
        let gate = locked.add_gate(GateKind::Xor, &[a, k]).unwrap();
        locked.rewire_input(ff, 0, gate).unwrap();
        // Depth 1: the PO only shows the reset state — no sequence can
        // distinguish keys.
        let r1 = seq_sat_attack(&locked, &[k], &nl, 1, 16);
        assert!(matches!(
            r1.outcome,
            SeqSatOutcome::NoDistinguishingSequence { .. }
        ));
        // Depth 2: cracked.
        let r2 = seq_sat_attack(&locked, &[k], &nl, 2, 16);
        let SeqSatOutcome::KeyRecovered { key } = r2.outcome else {
            panic!("depth-2 unrolling must crack the buried XOR");
        };
        assert_eq!(key, vec![false], "XOR is transparent at key 0");
    }
}
