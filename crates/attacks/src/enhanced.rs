//! The enhanced removal attack (paper Sec. V-D) and its withholding
//! countermeasure.
//!
//! Scenario: (1) locate the security structures; (2) replace each by an
//! XOR key-gate (or a MUX over candidate behaviours) with a fresh key
//! input; (3) SAT-attack the modelled netlist against the oracle. The
//! paper concedes this works when the structure is locatable — and shows
//! that withholding the GK's neighbourhood into a LUT explodes the
//! modelling space to `2^(2^k)` candidate functions, stopping step (2).

use crate::removal::{locate_gk_candidates, GkSite};
use crate::sat_attack::{SatAttack, SatAttackResult};
use glitchlock_core::withholding::{Lut, OpaqueRegion};
use glitchlock_netlist::{CellId, GateKind, NetId, Netlist};
use glitchlock_obs::{self as obs, names};
use std::collections::HashSet;

/// Result of the enhanced removal attack.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Modelled carries the full transcript by design
pub enum EnhancedOutcome {
    /// The GKs were located, modelled as XOR key-gates, and the SAT attack
    /// ran on the modelled netlist.
    Modelled {
        /// The SAT attack transcript on the modelled netlist.
        sat: SatAttackResult,
        /// The modelled netlist (GKs replaced by XORs).
        modelled: Netlist,
        /// The fresh key inputs of the model.
        model_keys: Vec<NetId>,
    },
    /// No GK-shaped structure was found to replace.
    NothingLocated,
    /// A located GK reads an opaque withheld region: modelling it would
    /// require enumerating `candidate_functions` Boolean functions —
    /// infeasible (Sec. V-D with Fig. 10's GK+LUT combination).
    Infeasible {
        /// Number of candidate functions for the withheld region.
        candidate_functions: f64,
        /// Arity of the opaque LUT.
        lut_arity: usize,
    },
}

/// Replaces each located GK by `y = XOR(x, k̂)` with a fresh key input and
/// returns the rebuilt netlist, the fresh key inputs, and the old
/// (now-dangling) GK key inputs.
pub fn replace_gks_with_xor(
    netlist: &Netlist,
    sites: &[GkSite],
) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    // Cells to skip: each site's MUX and its two branch gates (the delay
    // chains feeding them become dead and are swept).
    let mut skip: HashSet<CellId> = HashSet::new();
    for site in sites {
        skip.insert(site.mux);
        for &branch in &netlist.cell(site.mux).inputs()[..2] {
            if let Some(d) = netlist.net(branch).driver() {
                skip.insert(d);
            }
        }
    }

    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &pi in netlist.input_nets() {
        map[pi.index()] = Some(out.add_input(netlist.net(pi).name()));
    }
    let mut model_keys = Vec::with_capacity(sites.len());
    let mut ff_map = Vec::new();
    for &ff in netlist.dff_cells() {
        let cell = netlist.cell(ff);
        let placeholder = out.add_net(format!("{}_d", cell.name()));
        let q = out
            .add_dff_named(placeholder, cell.name())
            .expect("placeholder valid");
        map[cell.output().index()] = Some(q);
        ff_map.push((ff, out.net(q).driver().expect("dff drives q")));
    }
    for cell_id in netlist.topo_order().expect("acyclic") {
        let cell = netlist.cell(cell_id);
        if map[cell.output().index()].is_some() {
            continue;
        }
        // A replaced MUX becomes XOR(x, fresh key).
        if let Some(site) = sites.iter().find(|s| s.mux == cell_id) {
            let x = map[site.x.index()].expect("x precedes the GK in topo order");
            let k = out.add_input(format!("model_key{}", model_keys.len()));
            let y = out.add_gate(GateKind::Xor, &[x, k]).expect("xor arity");
            map[cell.output().index()] = Some(y);
            model_keys.push(k);
            continue;
        }
        if skip.contains(&cell_id) {
            continue;
        }
        let Some(ins) = cell
            .inputs()
            .iter()
            .map(|n| map[n.index()])
            .collect::<Option<Vec<NetId>>>()
        else {
            continue; // inside a skipped cone
        };
        let y = out
            .add_gate_named(cell.kind(), &ins, cell.name())
            .expect("copied gate valid");
        map[cell.output().index()] = Some(y);
    }
    for (old_ff, new_ff) in ff_map {
        let d = map[netlist.cell(old_ff).inputs()[0].index()].expect("live d");
        out.rewire_input(new_ff, 0, d).expect("pin 0");
    }
    for (po, name) in netlist.output_ports() {
        out.mark_output(map[po.index()].expect("live po"), name.clone());
    }
    let swept = glitchlock_synth::sweep_sequential(&out).expect("valid sweep");
    // Re-find nets by name after sweeping.
    let model_keys: Vec<NetId> = (0..model_keys.len())
        .map(|i| {
            swept
                .net_by_name(&format!("model_key{i}"))
                .expect("model key survives sweep")
        })
        .collect();
    let stale: Vec<NetId> = sites
        .iter()
        .filter_map(|s| swept.net_by_name(netlist.net(s.key).name()))
        .collect();
    (swept, model_keys, stale)
}

/// Runs the Sec. V-D enhanced removal attack against a GK attacker-view
/// netlist. `opaque` lists the withheld regions visible in the view (from
/// [`glitchlock_core::withholding::withhold_gk_inputs`] or hand-built via
/// [`glitchlock_core::withholding::absorb_cone`]); a located GK whose `x`
/// is an opaque LUT output stops the attack.
pub fn enhanced_removal_attack(
    attack_view: &Netlist,
    oracle: &Netlist,
    opaque: &[OpaqueRegion],
    max_iterations: usize,
) -> EnhancedOutcome {
    let _span = obs::span("attack.enhanced");
    obs::incr(names::ENHANCED_RUNS);
    let sites = locate_gk_candidates(attack_view);
    if sites.is_empty() {
        obs::event("result", "enhanced_removal")
            .str("outcome", "nothing-located")
            .emit();
        return EnhancedOutcome::NothingLocated;
    }
    // Withholding check: is any located GK fed by an opaque region?
    for site in &sites {
        for region in opaque {
            if region.input == site.x {
                obs::event("result", "enhanced_removal")
                    .str("outcome", "infeasible-withheld")
                    .u64("lut_arity", region.arity as u64)
                    .emit();
                return EnhancedOutcome::Infeasible {
                    candidate_functions: Lut::candidate_function_count(region.arity),
                    lut_arity: region.arity,
                };
            }
        }
    }
    let (modelled, model_keys, stale) = replace_gks_with_xor(attack_view, &sites);
    let mut attack = SatAttack::new(&modelled, model_keys.clone(), oracle);
    attack.ignored_inputs = stale;
    attack.max_iterations = max_iterations;
    let sat = attack.run();
    obs::event("result", "enhanced_removal")
        .str("outcome", "modelled")
        .u64("sites", sites.len() as u64)
        .emit();
    EnhancedOutcome::Modelled {
        sat,
        modelled,
        model_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat_attack::{key_match_rate, SatOutcome};
    use glitchlock_core::gk::{build_gk, GkDesign};
    use glitchlock_stdcell::Library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small sequential design with a GK on a flip-flop D pin, as the
    /// attacker's view shows it (key as a primary input, no KEYGEN).
    fn gk_view() -> (Netlist, Netlist) {
        let mut original = Netlist::new("o");
        let a = original.add_input("a");
        let b = original.add_input("b");
        let w = original.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let q = original.add_dff(w).unwrap();
        let y = original.add_gate(GateKind::Xor, &[q, a]).unwrap();
        original.mark_output(y, "y");

        // Attacker view: same netlist + GK of scheme BufferSteady (so the
        // static function stays NAND — the oracle matches; the security
        // would come from glitches in the real chip).
        let lib = Library::cl013g_like();
        let mut view = original.clone();
        let key = view.add_input("gk0_key");
        let d_net = view.cell(view.dff_cells()[0]).inputs()[0];
        let design = GkDesign {
            scheme: glitchlock_core::gk::GkScheme::BufferSteady,
            ..GkDesign::paper_default()
        };
        let gk = build_gk(&mut view, &lib, d_net, key, &design).unwrap();
        let ff = view.dff_cells()[0];
        view.rewire_input(ff, 0, gk.y).unwrap();
        (view, original)
    }

    #[test]
    fn bare_gk_falls_to_enhanced_removal() {
        let (view, original) = gk_view();
        let outcome = enhanced_removal_attack(&view, &original, &[], 256);
        let EnhancedOutcome::Modelled {
            sat,
            modelled,
            model_keys,
        } = outcome
        else {
            panic!("expected the GK to be located and modelled");
        };
        // The XOR model admits the correct behaviour (k=0 = buffer), so
        // the SAT attack recovers a working key.
        let key = match &sat.outcome {
            SatOutcome::KeyRecovered { key } => key.clone(),
            SatOutcome::NoDipAtFirstIteration { arbitrary_key } => arbitrary_key.clone(),
            other => panic!("unexpected outcome {other:?}"),
        };
        let mut rng = StdRng::seed_from_u64(41);
        let mut all_keys = model_keys.clone();
        let mut vals = key;
        // Stale GK key pins may survive sweeping; fold them in at 0.
        for (i, n) in modelled.input_nets().iter().enumerate() {
            let name = modelled.net(*n).name().to_string();
            let _ = i;
            if name.starts_with("gk") && !all_keys.contains(n) {
                all_keys.push(*n);
                vals.push(false);
            }
        }
        let rate = key_match_rate(&modelled, &all_keys, &vals, &original, 200, &mut rng);
        assert_eq!(rate, 1.0, "bare GK is decrypted once located (Sec. V-D)");
    }

    #[test]
    fn withholding_stops_the_enhanced_attack() {
        use glitchlock_core::withholding::absorb_cone;
        let (view, _original) = gk_view();
        // Withhold the cone feeding the GK's x input (the NAND region),
        // per Fig. 10. The attacker's view then reads an opaque input.
        let sites = locate_gk_candidates(&view);
        assert_eq!(sites.len(), 1);
        let x = sites[0].x;
        let (attacker_view, lut) = absorb_cone(&view, x, 4).unwrap();
        let opaque_name = format!("lut_{}", view.net(x).name());
        let region = OpaqueRegion {
            input: attacker_view.net_by_name(&opaque_name).unwrap(),
            name: opaque_name,
            arity: lut.arity(),
        };
        let outcome =
            enhanced_removal_attack(&attacker_view, &view, std::slice::from_ref(&region), 64);
        match outcome {
            EnhancedOutcome::Infeasible {
                candidate_functions,
                lut_arity,
            } => {
                assert_eq!(lut_arity, lut.arity());
                assert!(candidate_functions >= 16.0);
            }
            other => panic!("withholding must stop the attack, got {other:?}"),
        }
    }

    #[test]
    fn nothing_located_on_plain_designs() {
        let (_, original) = gk_view();
        let outcome = enhanced_removal_attack(&original, &original, &[], 16);
        assert!(matches!(outcome, EnhancedOutcome::NothingLocated));
    }
}
