//! Attacks on logic locking, as analyzed in the paper's Sec. V:
//!
//! * [`sat_attack`] — the oracle-guided SAT attack (Subramanyan et al.
//!   \[11\]): miter over two keyed copies, iterative distinguishing-input
//!   search. Cracks XOR/MUX locking; reports **UNSAT at the first
//!   iteration** against GK-locked designs (Sec. V-A/VI).
//! * [`removal`] — signal-probability-skew removal attacks (Yasin et al.
//!   \[15\]\[16\]): locate and bypass SARLock/Anti-SAT point functions; strip
//!   TDK delay buffers and re-synthesize. Includes the structural GK
//!   locator used by the enhanced attack.
//! * [`tcf`] — the timed-characteristic-function SAT formulation (Ho et
//!   al. \[3\], paper Sec. V-B): models stable values plus arrival times. It
//!   detects delay-locking violations, but a glitch-latched capture is
//!   *undefined* in the abstraction, so the enhanced SAT attack cannot
//!   constrain GK behaviour.
//! * [`appsat`] — the approximate (AppSAT-style \[10\]) attack: settles for
//!   a low-error key, cracking point-function + XOR compounds quickly; the
//!   key-independent GK static view leaves it equally blind.
//! * [`seq_sat`] — the unrolled sequential SAT attack (no scan access):
//!   distinguishing input *sequences* over k time frames. GK stays UNSAT
//!   at iteration 1 here too — the defense does not rest on the scan
//!   assumption.
//! * [`scan`] — the scan-chain/BIST hypothesis test of Sec. VI's caveat:
//!   with full scan access a bare GK's buffer/inverter ambiguity is
//!   testable; the hybrid GK+XOR encryption restores it.
//! * [`enhanced`] — the enhanced removal attack of Sec. V-D: locate the
//!   security structure, replace it by a keyed XOR/MUX model, SAT-attack
//!   the result. Succeeds on bare GKs; defeated by GK + withholding.

//! # Example: the headline result
//!
//! ```rust
//! use glitchlock_attacks::{SatAttack, SatOutcome};
//! use glitchlock_core::locking::{LockScheme, XorLock};
//! use glitchlock_netlist::{GateKind, Netlist};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), glitchlock_core::CoreError> {
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_gate(GateKind::Nand, &[a, b])?;
//! nl.mark_output(y, "y");
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let locked = XorLock::new(2).lock(&nl, &mut rng)?;
//! let result = SatAttack::new(&locked.netlist, locked.key_inputs.clone(), &nl).run();
//! assert!(matches!(result.outcome, SatOutcome::KeyRecovered { .. }));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod appsat;
pub mod cancel;
pub mod enhanced;
pub mod oracle;
pub mod removal;
pub mod sat_attack;
pub mod scan;
pub mod seq_sat;
pub mod tcf;

pub use cancel::CancelToken;
pub use enhanced::{enhanced_removal_attack, EnhancedOutcome};
pub use oracle::ComboOracle;
pub use sat_attack::{SatAttack, SatAttackResult, SatOutcome};
