//! Timed Characteristic Functions (Ho et al. \[3\]; paper Sec. V-B).
//!
//! TCF extends the Boolean abstraction with timing: each signal carries its
//! settled value *and* a conservative latest-arrival time, so a SAT
//! formulation over TCF can generate two-pattern tests for delay defects —
//! and, in the locking context, can reason about delay keys (TDK).
//!
//! The paper's point: TCF still cannot model a **glitch-latched** value.
//! The abstraction only knows the final stable level and when it settles;
//! the momentary level of a glitch that deliberately straddles the capture
//! window exists in neither CNF nor TCF. This module implements the TCF
//! abstraction and shows both halves: it *detects* TDK-style delay
//! violations, and it reports GK-fed captures as **undefined**, so an
//! enhanced (timing-aware) SAT attack has no constraint to learn from.

use glitchlock_netlist::{CellId, Logic, Netlist};
use glitchlock_obs::{self as obs, names};
use glitchlock_sta::ClockModel;
use glitchlock_stdcell::{Library, Ps};

/// A signal in the TCF abstraction: settled value plus latest arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcfSignal {
    /// The settled (zero-delay) logic value.
    pub stable: Logic,
    /// Conservative latest arrival time of that value.
    pub arrival: Ps,
}

/// What the TCF abstraction predicts a flip-flop captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcfCapture {
    /// The settled value arrives before the setup deadline: the capture is
    /// the stable value — a usable SAT constraint.
    Defined(Logic),
    /// The last transition lands inside or beyond the capture window; the
    /// latched level is not derivable from (value, arrival) — no constraint
    /// exists. This is every GK-fed flip-flop under a transitional key.
    Undefined,
}

/// Per-flip-flop TCF capture analysis for one input frame.
#[derive(Clone, Debug)]
pub struct TcfFrame {
    /// `(flip-flop, predicted capture)` pairs in [`Netlist::dff_cells`]
    /// order.
    pub captures: Vec<(CellId, TcfCapture)>,
}

impl TcfFrame {
    /// Number of captures the abstraction cannot define.
    pub fn undefined_count(&self) -> usize {
        self.captures
            .iter()
            .filter(|(_, c)| *c == TcfCapture::Undefined)
            .count()
    }
}

/// Evaluates the TCF abstraction: settled values from the zero-delay
/// evaluator, arrivals from an STA forward pass, captures checked against
/// each flip-flop's setup deadline.
pub fn tcf_frame(
    netlist: &Netlist,
    library: &Library,
    clock: &ClockModel,
    inputs: &[Logic],
    dff_q: &[Logic],
) -> TcfFrame {
    let values = netlist.eval_nets(inputs, Some(dff_q));
    let sta = glitchlock_sta::analyze(netlist, library, clock);
    let captures = netlist
        .dff_cells()
        .iter()
        .map(|&ff| {
            let d = netlist.cell(ff).inputs()[0];
            let check = sta.check_of(ff).expect("dff has a check");
            let capture = if sta.arrival_max(d) <= check.ub {
                TcfCapture::Defined(values[d.index()])
            } else {
                TcfCapture::Undefined
            };
            (ff, capture)
        })
        .collect();
    let frame = TcfFrame { captures };
    obs::incr(names::TCF_FRAMES);
    obs::add(names::TCF_UNDEFINED, frame.undefined_count() as u64);
    frame
}

/// Outcome of attempting a TCF-based (timing-aware) SAT attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcfAttackOutcome {
    /// Every capture is defined: the attack degenerates to the plain SAT
    /// attack (which then fails against GK for the Sec. V-A reason).
    ReducesToPlainSat,
    /// Some captures are undefined: TCF cannot produce constraints for
    /// them, so the formulation cannot model the locked design at all.
    CannotModel {
        /// How many flip-flop captures are outside the abstraction.
        undefined_captures: usize,
    },
}

/// The Sec. V-B argument, executable: runs the TCF frame analysis on the
/// (fully keyed, KEYGEN-included) locked netlist and reports whether a
/// TCF-SAT formulation could even express its behaviour.
pub fn tcf_attack_feasibility(
    netlist: &Netlist,
    library: &Library,
    clock: &ClockModel,
    inputs: &[Logic],
    dff_q: &[Logic],
) -> TcfAttackOutcome {
    let frame = tcf_frame(netlist, library, clock, inputs, dff_q);
    let undefined = frame.undefined_count();
    obs::event("result", "tcf_feasibility")
        .str(
            "outcome",
            if undefined == 0 {
                "reduces-to-plain-sat"
            } else {
                "cannot-model"
            },
        )
        .u64("undefined_captures", undefined as u64)
        .emit();
    if undefined == 0 {
        TcfAttackOutcome::ReducesToPlainSat
    } else {
        TcfAttackOutcome::CannotModel {
            undefined_captures: undefined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_netlist::GateKind;

    fn lib() -> Library {
        Library::cl013g_like()
    }

    #[test]
    fn clean_pipeline_is_fully_defined() {
        let lib = lib();
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let q = nl.add_dff(g).unwrap();
        nl.mark_output(q, "y");
        let clock = ClockModel::new(Ps::from_ns(2));
        let frame = tcf_frame(&nl, &lib, &clock, &[Logic::One], &[Logic::Zero]);
        assert_eq!(frame.undefined_count(), 0);
        assert_eq!(frame.captures[0].1, TcfCapture::Defined(Logic::Zero));
        assert_eq!(
            tcf_attack_feasibility(&nl, &lib, &clock, &[Logic::One], &[Logic::Zero]),
            TcfAttackOutcome::ReducesToPlainSat
        );
    }

    #[test]
    fn tcf_detects_tdk_style_delay_violation() {
        // A slow deliberate delay chain past the deadline: TCF flags it —
        // exactly the delay-defect detection [3] was built for.
        let lib = lib();
        let mut nl = Netlist::new("slow");
        let a = nl.add_input("a");
        let mut n = a;
        for _ in 0..2 {
            n = nl.add_gate(GateKind::Buf, &[n]).unwrap();
            let c = nl.net(n).driver().unwrap();
            nl.bind_lib(c, lib.by_name("DLY8X1").unwrap()).unwrap();
        }
        let q = nl.add_dff(n).unwrap();
        nl.mark_output(q, "y");
        let clock = ClockModel::new(Ps::from_ns(2)); // 4ns path vs 2ns clock
        let frame = tcf_frame(&nl, &lib, &clock, &[Logic::One], &[Logic::Zero]);
        assert_eq!(frame.captures[0].1, TcfCapture::Undefined);
    }

    #[test]
    fn gk_locked_ff_is_undefined_under_tcf() {
        // Build a GK + KEYGEN in front of a flip-flop, exactly as the
        // insertion flow does, and show the TCF abstraction cannot define
        // the capture: the KEYGEN's deliberate delay pushes the last
        // arrival past the setup deadline (the glitch straddles capture).
        use glitchlock_core::gk::{build_gk, GkDesign};
        use glitchlock_core::keygen::build_keygen;
        use glitchlock_stdcell::Ps;
        let lib = lib();
        let mut nl = Netlist::new("gk");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Inv, &[a]).unwrap();
        let q = nl.add_dff(g).unwrap();
        let ff = nl.dff_cells()[0];
        nl.mark_output(q, "y");
        let k1 = nl.add_input("k1");
        let k2 = nl.add_input("k2");
        // Correct trigger near the end of a 3ns cycle (on-glitch window).
        let kg = build_keygen(&mut nl, &lib, k1, k2, Ps(2400), Ps(1000), Ps(40)).unwrap();
        let gk = build_gk(&mut nl, &lib, g, kg.key_out, &GkDesign::paper_default()).unwrap();
        nl.rewire_input(ff, 0, gk.y).unwrap();

        let clock = ClockModel::new(Ps::from_ns(3));
        let inputs = vec![Logic::One, Logic::One, Logic::Zero]; // a, k1, k2
        let qs = vec![Logic::Zero, Logic::Zero]; // data FF, toggle FF
        let out = tcf_attack_feasibility(&nl, &lib, &clock, &inputs, &qs);
        assert!(
            matches!(out, TcfAttackOutcome::CannotModel { undefined_captures } if undefined_captures >= 1),
            "GK capture must be outside the TCF abstraction: {out:?}"
        );
    }
}
