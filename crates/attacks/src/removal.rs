//! Removal attacks (Yasin et al. \[15\]\[16\]; paper Secs. I, V-C).
//!
//! Point-function defenses (SARLock, Anti-SAT) leave a tell-tale trace:
//! the flip signal their comparator produces is almost always 0. Signal
//! probability analysis locates such nets; bypassing them (tying the flip
//! to its skewed value) restores the original function without any key.
//!
//! For TDK delay locking the attack is structural: strip the tunable delay
//! buffer, re-synthesize, and hand the remaining functional key-gates to
//! the SAT attack (paper Sec. I).
//!
//! Against conventional key-gates and GKs, locating the gate is not enough:
//! the attacker must still guess buffer-vs-inverter per gate — `2^n`
//! possibilities (Sec. V-C). [`locate_gk_candidates`] provides the
//! structural locator the enhanced attack builds on.

use glitchlock_core::locking::TdkLocked;
use glitchlock_netlist::{
    fanout_cone, Aig, CellId, CombView, EvalProgram, GateKind, Logic, NetId, Netlist, PackedLogic,
    LANES,
};
use glitchlock_obs::{self as obs, names};
use rand::Rng;
use std::collections::HashSet;

/// Estimated signal probabilities from random simulation of the
/// combinational view (random data *and* key inputs, the removal-attack
/// setting).
#[derive(Clone, Debug)]
pub struct SkewReport {
    probs: Vec<f64>,
    samples: usize,
}

impl SkewReport {
    /// Probability that `net` is 1.
    pub fn prob_one(&self, net: NetId) -> f64 {
        self.probs[net.index()]
    }

    /// Number of random patterns simulated.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Nets with `P(1) <= threshold` or `P(1) >= 1 - threshold`.
    pub fn skewed_nets(&self, threshold: f64) -> Vec<NetId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p <= threshold || p >= 1.0 - threshold)
            .map(|(i, _)| NetId::from_index(i))
            .collect()
    }
}

/// Estimates per-net signal probabilities over `samples` random patterns,
/// evaluated bit-parallel (64 patterns per pass through the compiled
/// program). Per-net `1` counts fall out of a single popcount per word.
pub fn signal_skew<R: Rng>(netlist: &Netlist, samples: usize, rng: &mut R) -> SkewReport {
    let view = CombView::new(netlist);
    let program = EvalProgram::compile(netlist).expect("netlist is acyclic");
    let mut buf = program.scratch();
    let mut ones = vec![0usize; netlist.net_count()];
    let mut done = 0usize;
    while done < samples {
        let lanes = LANES.min(samples - done);
        let mask: u64 = if lanes == LANES { !0 } else { (1 << lanes) - 1 };
        // Sample-major draws keep the RNG stream identical to the scalar
        // one-pattern-at-a-time loop this replaces.
        let mut words = vec![PackedLogic::splat(Logic::Zero); view.num_inputs()];
        for lane in 0..lanes {
            for w in words.iter_mut() {
                w.set(lane, Logic::from_bool(rng.gen()));
            }
        }
        let (pi, qs) = words.split_at(netlist.input_nets().len());
        program.eval(pi, Some(qs), &mut buf);
        for (i, count) in ones.iter_mut().enumerate() {
            *count += (buf.net(NetId::from_index(i)).val & mask).count_ones() as usize;
        }
        done += lanes;
    }
    obs::add(names::REMOVAL_SKEW_SAMPLES, samples as u64);
    SkewReport {
        probs: ones.iter().map(|&o| o as f64 / samples as f64).collect(),
        samples,
    }
}

/// The skew-plus-structure scan shared by the two point-function
/// locators: heavily skewed nets that feed an XOR/XNOR sitting directly
/// on a primary output.
fn skewed_output_xor_feeds(netlist: &Netlist, skew: &SkewReport, threshold: f64) -> Vec<NetId> {
    let po_nets: HashSet<NetId> = netlist.output_nets().into_iter().collect();
    let mut found = Vec::new();
    for (net_id, net) in netlist.nets() {
        let p = skew.prob_one(net_id);
        if p > threshold && p < 1.0 - threshold {
            continue;
        }
        // Must feed an XOR/XNOR that drives a primary output.
        let feeds_output_xor = net.fanout().iter().any(|&(sink, _)| {
            let cell = netlist.cell(sink);
            matches!(cell.kind(), GateKind::Xor | GateKind::Xnor)
                && po_nets.contains(&cell.output())
        });
        // Exclude trivial constants and the PO itself.
        let driver_is_const = net
            .driver()
            .map(|d| {
                matches!(
                    netlist.cell(d).kind(),
                    GateKind::Const0 | GateKind::Const1 | GateKind::Input
                )
            })
            .unwrap_or(true);
        if feeds_output_xor && !driver_is_const {
            found.push(net_id);
        }
    }
    found
}

/// Locates point-function flip signals: heavily skewed nets that feed an
/// XOR/XNOR sitting directly on a primary output — the SARLock/Anti-SAT
/// signature (the SPS heuristic).
pub fn locate_point_function<R: Rng>(
    netlist: &Netlist,
    samples: usize,
    threshold: f64,
    rng: &mut R,
) -> Vec<NetId> {
    let skew = signal_skew(netlist, samples, rng);
    let found = skewed_output_xor_feeds(netlist, &skew, threshold);
    obs::add(names::REMOVAL_CANDIDATES, found.len() as u64);
    obs::event("result", "locate_point_function")
        .u64("candidates", found.len() as u64)
        .u64("samples", samples as u64)
        .emit();
    found
}

/// [`locate_point_function`] sharpened with the key-taint dataflow
/// domain: a flip signal is by construction a function of the key
/// comparator, so any skewed net whose raw key-taint set is empty is a
/// sampling artifact and is pruned before the expensive bypass-and-verify
/// loop. Raw sequential taint is a sound over-approximation — pruning
/// only discards nets that provably carry no key influence at all.
pub fn locate_point_function_tainted<R: Rng>(
    netlist: &Netlist,
    key_inputs: &[NetId],
    samples: usize,
    threshold: f64,
    rng: &mut R,
) -> Vec<NetId> {
    let skew = signal_skew(netlist, samples, rng);
    let all = skewed_output_xor_feeds(netlist, &skew, threshold);
    let taint = glitchlock_dataflow::taint_facts(
        netlist,
        key_inputs,
        glitchlock_dataflow::TaintMode::Raw,
        true,
    );
    let before = all.len();
    let found: Vec<NetId> = all
        .into_iter()
        .filter(|&n| !taint.net(n).is_empty())
        .collect();
    let pruned = (before - found.len()) as u64;
    obs::add(names::REMOVAL_TAINT_PRUNED, pruned);
    obs::add(names::REMOVAL_CANDIDATES, found.len() as u64);
    obs::event("result", "locate_point_function_tainted")
        .u64("candidates", found.len() as u64)
        .u64("pruned", pruned)
        .u64("samples", samples as u64)
        .emit();
    found
}

/// Bypasses a located security signal: rebuilds the netlist with `net`
/// replaced by the constant `value` everywhere it is read, then sweeps the
/// dead security logic.
///
/// # Panics
///
/// Panics if the netlist is invalid.
pub fn bypass_net(netlist: &Netlist, net: NetId, value: bool) -> Netlist {
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &pi in netlist.input_nets() {
        map[pi.index()] = Some(out.add_input(netlist.net(pi).name()));
    }
    let tied = out.add_const(value);
    map[net.index()] = Some(tied);
    let mut ff_map = Vec::new();
    for &ff in netlist.dff_cells() {
        let cell = netlist.cell(ff);
        if map[cell.output().index()].is_some() {
            continue;
        }
        let placeholder = out.add_net(format!("{}_d", cell.name()));
        let q = out
            .add_dff_named(placeholder, cell.name())
            .expect("placeholder is valid");
        map[cell.output().index()] = Some(q);
        ff_map.push((ff, out.net(q).driver().expect("dff drives q")));
    }
    for cell_id in netlist.topo_order().expect("acyclic") {
        let cell = netlist.cell(cell_id);
        if map[cell.output().index()].is_some() {
            continue;
        }
        let ins: Vec<NetId> = cell
            .inputs()
            .iter()
            .map(|n| map[n.index()].expect("topo order"))
            .collect();
        let y = out
            .add_gate_named(cell.kind(), &ins, cell.name())
            .expect("copied gate is valid");
        if let Some(lib) = cell.lib() {
            let c = out.net(y).driver().expect("gate drives net");
            out.bind_lib(c, lib).expect("cell exists");
        }
        map[cell.output().index()] = Some(y);
    }
    for (old_ff, new_ff) in ff_map {
        let d = map[netlist.cell(old_ff).inputs()[0].index()].expect("live");
        out.rewire_input(new_ff, 0, d).expect("pin 0 exists");
    }
    for (po, name) in netlist.output_ports() {
        out.mark_output(map[po.index()].expect("live"), name.clone());
    }
    glitchlock_synth::sweep_sequential(&out).expect("swept netlist is valid")
}

/// The combinational-view output indices (primary outputs first, then
/// flip-flop D pseudo-outputs) reachable from `net` without crossing a
/// flip-flop — the outputs a bypass of `net` can possibly change.
pub fn reachable_view_outputs(netlist: &Netlist, net: NetId) -> Vec<usize> {
    let cone = fanout_cone(netlist, net, false);
    let mut cone_nets: HashSet<NetId> = cone.iter().map(|&c| netlist.cell(c).output()).collect();
    cone_nets.insert(net);
    let n_po = netlist.output_ports().len();
    let mut keep: Vec<usize> = netlist
        .output_ports()
        .iter()
        .enumerate()
        .filter(|(_, (n, _))| cone_nets.contains(n))
        .map(|(j, _)| j)
        .collect();
    for (si, &ff) in netlist.dff_cells().iter().enumerate() {
        if cone_nets.contains(&netlist.cell(ff).inputs()[0]) {
            keep.push(n_po + si);
        }
    }
    keep
}

/// Verifies a bypass on the extracted cone: compares only the view
/// outputs in `keep_outputs` (as from [`reachable_view_outputs`]) between
/// the bypassed netlist under `key` and the oracle, over random patterns.
///
/// A bypass can only change the outputs its net reaches, yet full-design
/// verification also demands every *other* output match — which fails
/// whenever key-gates elsewhere corrupt them under the all-zero key. The
/// cone restriction answers the question the removal attack actually
/// asks: did the bypass restore the logic it touched? Both sides are
/// evaluated through AIG cone extraction, which is also far cheaper than
/// a full-netlist comparison on benchmark-scale designs.
///
/// # Panics
///
/// Panics when the bypassed view's non-key inputs do not align with the
/// oracle's view inputs, or an index in `keep_outputs` is out of range.
pub fn cone_bypass_match_rate<R: Rng>(
    bypassed: &Netlist,
    key_inputs: &[NetId],
    key: &[bool],
    oracle: &Netlist,
    keep_outputs: &[usize],
    samples: usize,
    rng: &mut R,
) -> f64 {
    let lv = CombView::new(bypassed);
    let ov = CombView::new(oracle);
    let data_positions: Vec<usize> = lv
        .input_nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| !key_inputs.contains(n))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        data_positions.len(),
        ov.num_inputs(),
        "bypassed data inputs must align with the oracle view"
    );
    let key_values: Vec<(usize, bool)> = lv
        .input_nets()
        .iter()
        .enumerate()
        .filter_map(|(i, n)| {
            key_inputs
                .iter()
                .position(|k| k == n)
                .map(|pos| (i, key[pos]))
        })
        .collect();
    let lcone = Aig::from_comb(bypassed, &lv).extract_cone(keep_outputs);
    let ocone = Aig::from_comb(oracle, &ov).extract_cone(keep_outputs);
    let mut matches = 0usize;
    for _ in 0..samples {
        let data: Vec<bool> = (0..ov.num_inputs()).map(|_| rng.gen()).collect();
        let mut lin = vec![false; lv.num_inputs()];
        for (di, &p) in data_positions.iter().enumerate() {
            lin[p] = data[di];
        }
        for &(p, v) in &key_values {
            lin[p] = v;
        }
        let got_in: Vec<bool> = lcone.support.iter().map(|&k| lin[k]).collect();
        let expect_in: Vec<bool> = ocone.support.iter().map(|&k| data[k]).collect();
        if lcone.aig.eval(&got_in) == ocone.aig.eval(&expect_in) {
            matches += 1;
        }
    }
    matches as f64 / samples as f64
}

/// A located GK-shaped structure: a 2:1 MUX whose select is a primary
/// input and whose two data branches are an XNOR/XOR pair sharing a data
/// net — the pattern the enhanced removal attack replaces (Sec. V-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GkSite {
    /// The MUX cell.
    pub mux: CellId,
    /// The key net (MUX select, a primary input).
    pub key: NetId,
    /// The shared data input `x`.
    pub x: NetId,
    /// The GK output net.
    pub y: NetId,
}

/// Structurally locates GK candidates in an attacker's netlist view.
pub fn locate_gk_candidates(netlist: &Netlist) -> Vec<GkSite> {
    let input_set: HashSet<NetId> = netlist.input_nets().iter().copied().collect();
    let mut sites = Vec::new();
    for (cell_id, cell) in netlist.cells() {
        if cell.kind() != GateKind::Mux2 {
            continue;
        }
        let ins = cell.inputs();
        let (in0, in1, sel) = (ins[0], ins[1], ins[2]);
        if !input_set.contains(&sel) {
            continue;
        }
        let branch = |n: NetId| -> Option<(GateKind, Vec<NetId>)> {
            let d = netlist.net(n).driver()?;
            let c = netlist.cell(d);
            matches!(c.kind(), GateKind::Xor | GateKind::Xnor)
                .then(|| (c.kind(), c.inputs().to_vec()))
        };
        let (Some((k0, i0)), Some((k1, i1))) = (branch(in0), branch(in1)) else {
            continue;
        };
        // One XNOR + one XOR, sharing a data net.
        if k0 == k1 {
            continue;
        }
        let shared: Vec<NetId> = i0.iter().copied().filter(|n| i1.contains(n)).collect();
        let Some(&x) = shared.first() else { continue };
        sites.push(GkSite {
            mux: cell_id,
            key: sel,
            x,
            y: cell.output(),
        });
    }
    obs::add(names::REMOVAL_GK_SITES, sites.len() as u64);
    obs::event("result", "locate_gk_candidates")
        .u64("sites", sites.len() as u64)
        .emit();
    sites
}

/// The buffer-vs-inverter guessing space after locating `n` conventional
/// key-gates or GKs (Sec. V-C): `2^n`.
pub fn guessing_space(n: usize) -> f64 {
    2f64.powi(n as i32)
}

/// TDK removal: strips every tunable delay buffer (keeps the fast branch
/// *function*: both TDB branches compute the same Boolean value, so routing
/// through either preserves logic), drops the delay keys, re-synthesizes,
/// and returns `(netlist, functional keys, stale delay-key inputs)` — ready
/// for the SAT attack (paper Sec. I's critique of \[12\]). The stale delay
/// keys remain as dangling primary inputs; pass them as the attack's
/// ignored inputs.
pub fn strip_tdk_delay_buffers(tdk: &TdkLocked) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    let netlist = &tdk.locked.netlist;
    let mut out = netlist.clone();
    for info in &tdk.tdks {
        // Re-route the TDB mux's readers straight to its in0 branch data
        // source: both branches carry the same value, in0 is as good as
        // either. The attacker needs no key knowledge for this.
        let mux_cell = info.tdb_mux;
        let branch = out.cell(mux_cell).inputs()[0];
        let readers: Vec<(CellId, usize)> = out.net(out.cell(mux_cell).output()).fanout().to_vec();
        for (cell, pin) in readers {
            out.rewire_input(cell, pin, branch).expect("valid pin");
        }
        let y = out.cell(mux_cell).output();
        out.rewire_output_po(y, branch);
    }
    obs::add(names::REMOVAL_TDK_STRIPPED, tdk.tdks.len() as u64);
    // Re-synthesize: dead muxes and slow chains disappear; the delay-key
    // inputs survive as dangling primary inputs.
    let resynth = glitchlock_synth::optimize_sequential(&out).expect("optimize succeeds");
    // Key order is [k1, k2] per TDK: k1 functional, k2 delay.
    let map_key = |n: &NetId| resynth.net_by_name(netlist.net(*n).name());
    let keys: Vec<NetId> = tdk
        .locked
        .key_inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .filter_map(|(_, n)| map_key(n))
        .collect();
    let stale: Vec<NetId> = tdk
        .locked
        .key_inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .filter_map(|(_, n)| map_key(n))
        .collect();
    (resynth, keys, stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitchlock_core::locking::{LockScheme, SarLock, Tdk};
    use glitchlock_netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let w = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let v = nl.add_gate(GateKind::Or, &[c, d]).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[w, v]).unwrap();
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn sarlock_flip_signal_is_located_and_bypassed() {
        let nl = toy();
        let mut rng = StdRng::seed_from_u64(31);
        let locked = SarLock::new(4).lock(&nl, &mut rng).unwrap();
        let candidates = locate_point_function(&locked.netlist, 2000, 0.1, &mut rng);
        assert!(
            !candidates.is_empty(),
            "the flip signal's skew must betray it"
        );
        // Bypass each candidate at its skewed value and check function
        // restoration against the original.
        let restored = candidates.iter().any(|&flip| {
            let skew = signal_skew(&locked.netlist, 500, &mut rng);
            let tie = skew.prob_one(flip) >= 0.5;
            let fixed = bypass_net(&locked.netlist, flip, tie);
            // The rebuild renumbers nets: re-find the key inputs by name.
            let keys_fixed: Vec<NetId> = locked
                .key_inputs
                .iter()
                .map(|&n| {
                    fixed
                        .net_by_name(locked.netlist.net(n).name())
                        .expect("key input survives the rebuild")
                })
                .collect();
            // Compare over random data patterns with keys at arbitrary
            // values: a successful bypass makes the keys irrelevant.
            let rate = crate::sat_attack::key_match_rate(
                &fixed,
                &keys_fixed,
                &vec![false; keys_fixed.len()],
                &nl,
                100,
                &mut rng,
            );
            rate == 1.0
        });
        assert!(restored, "bypassing the flip net must restore the function");
    }

    #[test]
    fn taint_prune_keeps_real_flip_signals_and_drops_untainted_skew() {
        let nl = toy();
        let mut rng = StdRng::seed_from_u64(31);
        let locked = SarLock::new(4).lock(&nl, &mut rng).unwrap();
        let plain =
            locate_point_function(&locked.netlist, 2000, 0.1, &mut StdRng::seed_from_u64(8));
        let tainted = locate_point_function_tainted(
            &locked.netlist,
            &locked.key_inputs,
            2000,
            0.1,
            &mut StdRng::seed_from_u64(8),
        );
        assert!(!tainted.is_empty(), "the flip signal is key-tainted");
        assert!(
            tainted.iter().all(|n| plain.contains(n)),
            "pruning only ever removes candidates"
        );
        // With an empty key set every candidate is provably untainted and
        // the prune removes the lot.
        let none = locate_point_function_tainted(
            &locked.netlist,
            &[],
            2000,
            0.1,
            &mut StdRng::seed_from_u64(8),
        );
        assert!(none.is_empty(), "no keys, no key-tainted candidates");
    }

    #[test]
    fn cone_verification_passes_where_full_verification_cannot() {
        // Two independent output cones: a point-function flip on y1, and
        // an XNOR key-gate on y2 that inverts it under the all-zero key.
        // Bypassing the flip restores y1 exactly, but full-design
        // verification still fails on y2 — the case the cone retry exists
        // for.
        let mut original = Netlist::new("o");
        let a = original.add_input("a");
        let b = original.add_input("b");
        let c = original.add_input("c");
        let d = original.add_input("d");
        let y1 = original.add_gate(GateKind::And, &[a, b]).unwrap();
        let y2 = original.add_gate(GateKind::Or, &[c, d]).unwrap();
        original.mark_output(y1, "y1");
        original.mark_output(y2, "y2");

        let mut locked = Netlist::new("o");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let c = locked.add_input("c");
        let d = locked.add_input("d");
        let k = locked.add_input("k0");
        let y1 = locked.add_gate(GateKind::And, &[a, b]).unwrap();
        let flip = locked.add_gate(GateKind::And, &[c, d, k]).unwrap();
        let y1f = locked.add_gate(GateKind::Xor, &[y1, flip]).unwrap();
        let y2 = locked.add_gate(GateKind::Or, &[c, d]).unwrap();
        let y2k = locked.add_gate(GateKind::Xnor, &[y2, k]).unwrap();
        locked.mark_output(y1f, "y1");
        locked.mark_output(y2k, "y2");

        let mut rng = StdRng::seed_from_u64(35);
        let bypassed = bypass_net(&locked, flip, false);
        let keys: Vec<NetId> = bypassed.net_by_name("k0").into_iter().collect();
        let full_rate = crate::sat_attack::key_match_rate(
            &bypassed,
            &keys,
            &vec![false; keys.len()],
            &original,
            256,
            &mut rng,
        );
        assert!(full_rate < 0.999, "the y2 key-gate must fail full verify");
        let keep = reachable_view_outputs(&locked, flip);
        assert_eq!(keep, vec![0], "the flip reaches only y1");
        let cone_rate = cone_bypass_match_rate(
            &bypassed,
            &keys,
            &vec![false; keys.len()],
            &original,
            &keep,
            256,
            &mut rng,
        );
        assert_eq!(cone_rate, 1.0, "the bypass restores its own cone exactly");
    }

    #[test]
    fn gk_shaped_structure_is_locatable_but_ambiguous() {
        use glitchlock_core::gk::{build_gk, GkDesign};
        use glitchlock_stdcell::Library;
        let lib = Library::cl013g_like();
        let mut nl = Netlist::new("g");
        let x_in = nl.add_input("x");
        let key = nl.add_input("gk_key");
        let gk = build_gk(&mut nl, &lib, x_in, key, &GkDesign::paper_default()).unwrap();
        nl.mark_output(gk.y, "y");
        let sites = locate_gk_candidates(&nl);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].key, key);
        assert_eq!(sites[0].x, x_in);
        assert_eq!(sites[0].y, gk.y);
        // Locating is not decrypting: 16 GKs leave 2^16 guesses.
        assert_eq!(guessing_space(16), 65536.0);
    }

    #[test]
    fn gk_netlist_shows_no_pointfunction_skew() {
        use glitchlock_core::gk::{build_gk, GkDesign};
        use glitchlock_stdcell::Library;
        let lib = Library::cl013g_like();
        let mut nl = toy();
        let y = nl.output_nets()[0];
        let key = nl.add_input("gk_key");
        let gk = build_gk(&mut nl, &lib, y, key, &GkDesign::paper_default()).unwrap();
        nl.rewire_output_po(y, gk.y);
        let mut rng = StdRng::seed_from_u64(33);
        let candidates = locate_point_function(&nl, 2000, 0.05, &mut rng);
        assert!(
            candidates.is_empty(),
            "GK signals are not probability-skewed: {candidates:?}"
        );
    }

    #[test]
    fn tdk_strip_then_sat_attack_succeeds() {
        use crate::sat_attack::SatAttack;
        use glitchlock_stdcell::Library;
        // Sequential circuit for TDK.
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let q = nl.add_dff(w).unwrap();
        let y = nl.add_gate(GateKind::Xor, &[q, a]).unwrap();
        let q2 = nl.add_dff(y).unwrap();
        nl.mark_output(q2, "y");

        let lib = Library::cl013g_like();
        let mut rng = StdRng::seed_from_u64(34);
        let tdk = Tdk::new(2).lock_with_library(&nl, &lib, &mut rng).unwrap();
        let (stripped, keys, stale) = strip_tdk_delay_buffers(&tdk);
        assert_eq!(keys.len(), 2, "functional keys survive the strip");
        assert_eq!(stale.len(), 2, "delay keys dangle");
        // The delay chains are gone after re-synthesis.
        assert!(
            stripped.stats().cells < tdk.locked.netlist.stats().cells,
            "resynthesis removes TDB logic"
        );
        let mut attack = SatAttack::new(&stripped, keys.clone(), &nl);
        attack.ignored_inputs = stale;
        let result = attack.run();
        let key = result.key().expect("stripped TDK falls to SAT").to_vec();
        // Verify with the stale delay keys treated as extra key inputs held
        // at 0 (they are functionally dangling).
        let mut all_keys = keys.clone();
        all_keys.extend(attack.ignored_inputs.iter().copied());
        let mut all_vals = key.clone();
        all_vals.extend(std::iter::repeat_n(false, attack.ignored_inputs.len()));
        let rate =
            crate::sat_attack::key_match_rate(&stripped, &all_keys, &all_vals, &nl, 200, &mut rng);
        assert_eq!(rate, 1.0);
    }
}
