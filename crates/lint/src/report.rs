//! Human-readable and JSON renderers for lint reports.

use crate::{LintReport, Severity};
use std::fmt::Write as _;

/// Renders a report the way a compiler prints diagnostics: one line per
/// finding, indented hints, and a summary line.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(
            out,
            "{}[{}] at {}: {}",
            d.severity, d.code, d.location, d.message
        );
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "    hint: {s}");
        }
    }
    let _ = writeln!(
        out,
        "lint: {} error(s), {} warning(s)",
        report.denied(),
        report.warnings()
    );
    out
}

/// Renders a report as a JSON object:
///
/// ```json
/// {"errors": 1, "warnings": 0, "diagnostics": [
///   {"code": "...", "severity": "error", "cell": null, "net": "n1",
///    "message": "...", "suggestion": null}
/// ]}
/// ```
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"errors\": {}, \"warnings\": {}, \"diagnostics\": [",
        report.denied(),
        report.warnings()
    ));
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let severity = match d.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        let _ = write!(
            out,
            "{{\"code\": {}, \"severity\": {}, \"cell\": {}, \"net\": {}, \"message\": {}, \"suggestion\": {}}}",
            json_str(d.code),
            json_str(severity),
            json_opt(&d.location.cell),
            json_opt(&d.location.net),
            json_str(&d.message),
            json_opt(&d.suggestion),
        );
    }
    out.push_str("]}");
    out
}

fn json_opt(s: &Option<String>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diagnostic, Diagnostic, Location};

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic::new(
                    diagnostic::UNDRIVEN_NET,
                    Severity::Error,
                    Location::net("n\"1"),
                    "net has no driver",
                )
                .with_suggestion("drive it"),
                Diagnostic::new(
                    diagnostic::DUPLICATE_GATE,
                    Severity::Warning,
                    Location::cell_net("g3", "w7"),
                    "same function as g2",
                ),
            ],
        }
    }

    #[test]
    fn text_report_lists_findings_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("error[undriven-net]"));
        assert!(text.contains("hint: drive it"));
        assert!(text.contains("warning[duplicate-gate]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let json = render_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 1"));
        // The quote inside the net name must be escaped.
        assert!(json.contains("n\\\"1"));
        assert!(json.contains("\"suggestion\": null"));
        // Balanced braces/brackets (cheap well-formedness proxy given no
        // string contains structural characters once escaped).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
    }
}
